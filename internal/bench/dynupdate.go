package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

// The dynupdate experiment measures the incremental scene-maintenance
// machinery (DESIGN.md §15) on a seeded insert/delete/move workload:
// ApplyOps evolves the tree batch by batch, the three V-page schemes are
// re-laid over the new visibility data after each batch (what DB.Update
// does), and three locality figures are recorded:
//
//	touched-cell fraction — viewing cells whose DoV field was re-cast,
//	                        over the grid size; the rest answered from
//	                        the retained raw field
//	LoD reuse rate        — internal-LoD chains adopted from the previous
//	                        epoch, over all internal nodes visited
//	pages per batch       — simulated-disk pages appended per batch,
//	                        V-page rebuilds included
//
// The headline is the write-cost comparison against the rebuild
// reference of the differential gate: replaying the whole op log from
// scratch (same deterministic R-tree evolution, everything downstream
// rebuilt fresh) costs RebuildPages; the incremental path pays
// PagesPerBatch per batch instead. Their ratio is WriteSavings — the
// figure that justifies maintaining the tree online at all. The
// committed reference lives in BENCH_dynupdate.json.

// The workload shape and the gates the experiment must hold: updates
// must localize (most cells untouched, most LoD chains reused) and a
// batch must cost well under a from-scratch rebuild.
const (
	dynBatches     = 8
	dynOpsPerBatch = 6
	dynSeedOffset  = 300

	dynTouchedGate = 0.90 // mean touched-cell fraction stays below
	dynReuseGate   = 0.50 // mean LoD reuse rate stays above
	dynSavingsGate = 2.0  // rebuild pages / pages per batch stays above
)

// DynBatch is one batch's locality record.
type DynBatch struct {
	Ops           int   `json:"ops"`
	TouchedCells  int   `json:"touched_cells"`
	TotalCells    int   `json:"total_cells"`
	LoDReused     int   `json:"lod_reused"`
	LoDRebuilt    int   `json:"lod_rebuilt"`
	PagesAppended int64 `json:"pages_appended"`
}

// DynUpdate is the committed reference format (BENCH_dynupdate.json).
type DynUpdate struct {
	Workload string     `json:"workload"`
	Batches  []DynBatch `json:"batches"`
	// TouchedCellFrac / LoDReuseRate are means over the batches.
	TouchedCellFrac float64 `json:"touched_cell_frac"`
	LoDReuseRate    float64 `json:"lod_reuse_rate"`
	// PagesPerBatch is the mean simulated-disk pages appended per batch,
	// scheme rebuilds included; RebuildPages is what a from-scratch
	// rebuild over the final op log costs on a fresh disk.
	PagesPerBatch float64 `json:"pages_per_batch"`
	RebuildPages  int64   `json:"rebuild_pages"`
	// WriteSavings is RebuildPages / PagesPerBatch.
	WriteSavings float64 `json:"write_savings"`
}

var (
	dynMu    sync.Mutex
	dynCache = map[string]*DynUpdate{}
)

// dynWorkloadTag extends the dataset tag with the update-workload shape.
func dynWorkloadTag(p Params) string {
	return fmt.Sprintf("%s-dynb%d-ops%d", workloadTag(p), dynBatches, dynOpsPerBatch)
}

// genDynOps generates the seeded update workload: ~35% inserts
// (procedural blobs dropped inside the view region), ~25% deletes and
// ~40% moves of live objects, with alive-set bookkeeping so every op is
// valid when applied in order (the same mix the differential suite
// replays).
func genDynOps(seed int64, sc *scene.Scene, n int) []scene.Op {
	rng := rand.New(rand.NewSource(seed))
	alive := make([]int64, 0, len(sc.Objects))
	for _, o := range sc.Objects {
		if !o.Dead {
			alive = append(alive, o.ID)
		}
	}
	nextID := int64(len(sc.Objects))
	lo, hi := sc.ViewRegion.Min, sc.ViewRegion.Max
	ops := make([]scene.Op, 0, n)
	for len(ops) < n {
		r := rng.Float64()
		switch {
		case r < 0.35 || len(alive) <= 4:
			ops = append(ops, scene.Op{Kind: scene.OpInsert, Insert: &scene.InsertSpec{
				Seed:   rng.Int63(),
				X:      lo.X + 2 + rng.Float64()*(hi.X-lo.X-4),
				Y:      lo.Y + 2 + rng.Float64()*(hi.Y-lo.Y-4),
				Radius: 1 + 2*rng.Float64(),
			}})
			alive = append(alive, nextID)
			nextID++
		case r < 0.60:
			i := rng.Intn(len(alive))
			ops = append(ops, scene.Op{Kind: scene.OpDelete, ID: alive[i]})
			alive[i] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		default:
			dx := (rng.Float64()*2 - 1) * 8
			dy := (rng.Float64()*2 - 1) * 8
			if dx == 0 && dy == 0 {
				dx = 1
			}
			ops = append(ops, scene.Op{Kind: scene.OpMove, ID: alive[rng.Intn(len(alive))], DX: dx, DY: dy})
		}
	}
	return ops
}

// dynSchemes lays the three raw-layout schemes over vis on d — the
// per-epoch republish work DB.Update performs — and returns the
// indexed-vertical store for the tree to answer from.
func dynSchemes(d *storage.Disk, vis *core.VisData) (*vstore.IndexedVertical, error) {
	if _, err := vstore.BuildHorizontalOpts(d, vis, vstore.Options{}); err != nil {
		return nil, err
	}
	if _, err := vstore.BuildVerticalOpts(d, vis, vstore.Options{}); err != nil {
		return nil, err
	}
	return vstore.BuildIndexedVerticalOpts(d, vis, vstore.Options{})
}

// dynRebuildPages prices the alternative to incremental maintenance:
// replay the op log from scratch — same deterministic R-tree evolution
// as the incremental path, everything downstream rebuilt fresh on a
// fresh disk — and return the pages written.
func dynRebuildPages(baseSc *scene.Scene, bp core.BuildParams, ops []scene.Op) (int64, error) {
	sc2 := baseSc.CloneShell()
	rt := rtree.New(bp.FanoutMin, bp.FanoutMax)
	for _, o := range baseSc.Objects {
		if !o.Dead {
			rt.Insert(o.MBR, o.ID)
		}
	}
	for i, op := range ops {
		eff, err := sc2.ApplyOp(op)
		if err != nil {
			return 0, fmt.Errorf("replay op %d: %w", i, err)
		}
		switch eff.Kind {
		case scene.OpInsert:
			rt.Insert(eff.NewMBR, eff.ObjectID)
		case scene.OpDelete:
			if !rt.Delete(eff.OldMBR, eff.ObjectID) {
				return 0, fmt.Errorf("replay op %d: object %d not in R-tree", i, eff.ObjectID)
			}
		case scene.OpMove:
			if !rt.Delete(eff.OldMBR, eff.ObjectID) {
				return 0, fmt.Errorf("replay op %d: object %d not in R-tree", i, eff.ObjectID)
			}
			rt.Insert(eff.NewMBR, eff.ObjectID)
		}
	}
	d2 := storage.NewDisk(0, storage.DefaultCostModel())
	_, vis2, err := core.BuildFromRTree(sc2, d2, bp, rt)
	if err != nil {
		return 0, err
	}
	if _, err := dynSchemes(d2, vis2); err != nil {
		return 0, err
	}
	return d2.NumPages(), nil
}

// CollectDynUpdate builds a dedicated database (updates consume the
// tree's backbone, so the shared Env cache is off limits), evolves it
// through the seeded workload batch by batch, and prices the rebuild
// alternative. Results are cached per workload tag: the run and guard
// paths share one measurement.
func CollectDynUpdate(p Params) (*DynUpdate, error) {
	tag := dynWorkloadTag(p)
	dynMu.Lock()
	defer dynMu.Unlock()
	if du, ok := dynCache[tag]; ok {
		return du, nil
	}

	cp := scene.DefaultCityParams()
	cp.Seed = p.Seed
	cp.BlocksX, cp.BlocksY = p.CityBlocks, p.CityBlocks
	cp.BlobDetail = 10
	cp.NominalBytes = p.NominalBytes
	sc := scene.Generate(cp)

	d := storage.NewDisk(0, storage.DefaultCostModel())
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, p.GridCells, p.GridCells)
	bp.DirsPerViewpoint = p.Dirs
	bp.SamplesPerCell = p.Samples
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		return nil, fmt.Errorf("bench: dynupdate build: %w", err)
	}

	ops := genDynOps(p.Seed+dynSeedOffset, sc, dynBatches*dynOpsPerBatch)
	du := &DynUpdate{Workload: tag}
	var touched, reuse float64
	var pages int64
	for b := 0; b < dynBatches; b++ {
		batch := ops[b*dynOpsPerBatch : (b+1)*dynOpsPerBatch]
		before := d.NumPages()
		var st *core.UpdateStats
		tr, vis, _, st, err = core.ApplyOps(tr, vis, batch)
		if err != nil {
			return nil, fmt.Errorf("bench: dynupdate batch %d: %w", b, err)
		}
		iv, err := dynSchemes(d, vis)
		if err != nil {
			return nil, fmt.Errorf("bench: dynupdate batch %d schemes: %w", b, err)
		}
		tr.SetVStore(iv)
		rec := DynBatch{
			Ops:           st.Ops,
			TouchedCells:  st.TouchedCells,
			TotalCells:    st.TotalCells,
			LoDReused:     st.LoDReused,
			LoDRebuilt:    st.LoDRebuilt,
			PagesAppended: d.NumPages() - before,
		}
		du.Batches = append(du.Batches, rec)
		touched += float64(rec.TouchedCells) / float64(rec.TotalCells)
		if n := rec.LoDReused + rec.LoDRebuilt; n > 0 {
			reuse += float64(rec.LoDReused) / float64(n)
		}
		pages += rec.PagesAppended
	}
	du.TouchedCellFrac = touched / dynBatches
	du.LoDReuseRate = reuse / dynBatches
	du.PagesPerBatch = float64(pages) / dynBatches

	if du.RebuildPages, err = dynRebuildPages(sc, bp, ops); err != nil {
		return nil, fmt.Errorf("bench: dynupdate rebuild reference: %w", err)
	}
	if du.PagesPerBatch > 0 {
		du.WriteSavings = float64(du.RebuildPages) / du.PagesPerBatch
	}
	dynCache[tag] = du
	return du, nil
}

// RunDynUpdate prints the per-batch locality table and verdicts the
// three gates: updates localize in the viewing grid, reuse dominates
// LoD work, and a batch costs well under a from-scratch rebuild.
func RunDynUpdate(w io.Writer, p Params) error {
	du, err := CollectDynUpdate(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d batches x %d ops (insert/delete/move), schemes re-laid per batch\n\n",
		dynBatches, dynOpsPerBatch)
	fmt.Fprintf(w, "%-7s %-6s %-14s %-16s %-10s\n",
		"batch", "ops", "cells touched", "LoD reuse/total", "pages")
	for i, b := range du.Batches {
		fmt.Fprintf(w, "%-7d %-6d %3d / %-8d %5d / %-8d %-10d\n",
			i+1, b.Ops, b.TouchedCells, b.TotalCells,
			b.LoDReused, b.LoDReused+b.LoDRebuilt, b.PagesAppended)
	}
	fmt.Fprintf(w, "\nmean touched-cell fraction: %.2f  mean LoD reuse rate: %.2f\n",
		du.TouchedCellFrac, du.LoDReuseRate)
	fmt.Fprintf(w, "pages per batch: %.0f  from-scratch rebuild: %d  write savings: %.1fx\n",
		du.PagesPerBatch, du.RebuildPages, du.WriteSavings)

	pass := true
	verdict := func(ok bool, format string, args ...interface{}) {
		v := "PASS"
		if !ok {
			v = "FAIL"
			pass = false
		}
		fmt.Fprintf(w, format+" %s\n", append(args, v)...)
	}
	verdict(du.TouchedCellFrac < dynTouchedGate,
		"touched-cell fraction %.2f (claim: < %.2f)", du.TouchedCellFrac, dynTouchedGate)
	verdict(du.LoDReuseRate > dynReuseGate,
		"LoD reuse rate %.2f (claim: > %.2f)", du.LoDReuseRate, dynReuseGate)
	verdict(du.WriteSavings > dynSavingsGate,
		"write savings %.1fx (claim: > %.1fx)", du.WriteSavings, dynSavingsGate)
	if !pass {
		return fmt.Errorf("bench: dynupdate: incremental maintenance missed a locality gate")
	}
	return nil
}

// CompareDynUpdate checks fresh metrics against the committed reference
// and returns one line per violation. The three gates are re-checked as
// hard invariants; the locality figures and the write-savings ratio may
// drift only within tol (a growing touched fraction or shrinking reuse
// rate means the localization machinery regressed — exactly the failure
// the incremental path exists to avoid).
func CompareDynUpdate(ref, cur *DynUpdate, tol float64) []string {
	var bad []string
	if ref.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: reference %q vs current %q (regenerate the reference)",
			ref.Workload, cur.Workload)}
	}
	if cur.TouchedCellFrac >= dynTouchedGate {
		bad = append(bad, fmt.Sprintf("touched-cell fraction %.2f broke the < %.2f locality gate",
			cur.TouchedCellFrac, dynTouchedGate))
	}
	if cur.LoDReuseRate <= dynReuseGate {
		bad = append(bad, fmt.Sprintf("LoD reuse rate %.2f broke the > %.2f gate",
			cur.LoDReuseRate, dynReuseGate))
	}
	if cur.WriteSavings <= dynSavingsGate {
		bad = append(bad, fmt.Sprintf("write savings %.1fx broke the > %.1fx gate",
			cur.WriteSavings, dynSavingsGate))
	}
	if cur.TouchedCellFrac > ref.TouchedCellFrac*(1+tol) {
		bad = append(bad, fmt.Sprintf("touched-cell fraction %.2f, reference %.2f (tolerance %.0f%%)",
			cur.TouchedCellFrac, ref.TouchedCellFrac, 100*tol))
	}
	if cur.LoDReuseRate < ref.LoDReuseRate*(1-tol) {
		bad = append(bad, fmt.Sprintf("LoD reuse rate %.2f, reference %.2f (tolerance %.0f%%)",
			cur.LoDReuseRate, ref.LoDReuseRate, 100*tol))
	}
	if cur.WriteSavings < ref.WriteSavings*(1-tol) {
		bad = append(bad, fmt.Sprintf("write savings %.1fx, reference %.1fx (tolerance %.0f%%)",
			cur.WriteSavings, ref.WriteSavings, 100*tol))
	}
	return bad
}

// LoadDynUpdate reads a committed dynupdate reference.
func LoadDynUpdate(path string) (*DynUpdate, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var du DynUpdate
	if err := json.Unmarshal(raw, &du); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &du, nil
}

// WriteDynUpdate writes the reference in the committed format.
func WriteDynUpdate(path string, du *DynUpdate) error {
	raw, err := json.MarshalIndent(du, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
