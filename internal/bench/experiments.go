package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
)

// RunTable2 reproduces Table 2: the storage space of the three schemes.
// Paper: horizontal 4 GB, vertical 267 MB, indexed-vertical 152.8 MB — the
// shapes to reproduce are horizontal ≫ vertical > indexed-vertical, with
// horizontal roughly an order of magnitude beyond the others.
func RunTable2(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	fmt.Fprintf(w, "dataset: %d objects, %d nodes, %d cells, nominal raw size %s\n",
		len(e.Scene.Objects), e.Tree.NumNodes(), e.Tree.Grid.NumCells(), mb(e.Scene.NominalRawBytes()))
	fmt.Fprintf(w, "avg visible nodes per cell (N_vnode): %.1f of %d (N_node)\n\n",
		e.Vis.AvgVisibleNodes(), e.Tree.NumNodes())
	fmt.Fprintf(w, "%-18s %-14s\n", "Storage Scheme", "Size")
	fmt.Fprintf(w, "%-18s %-14s\n", "Horizontal", mb(e.H.SizeBytes()))
	fmt.Fprintf(w, "%-18s %-14s\n", "Vertical", mb(e.V.SizeBytes()))
	fmt.Fprintf(w, "%-18s %-14s\n", "Indexed-vertical", mb(e.IV.SizeBytes()))
	fmt.Fprintf(w, "\nhorizontal / indexed-vertical ratio: %.1fx (paper: ~26x)\n",
		float64(e.H.SizeBytes())/float64(e.IV.SizeBytes()))
	return nil
}

// queryWorkload returns a deterministic sequence of query cells emulating
// "random viewpoint positions obtained from the precomputed cells".
func queryWorkload(e *Env, n int, seed int64) []cells.CellID {
	rng := rand.New(rand.NewSource(seed))
	out := make([]cells.CellID, n)
	for i := range out {
		out[i] = cells.CellID(rng.Intn(e.Tree.Grid.NumCells()))
	}
	return out
}

// sweepResult is one (scheme, eta) measurement of Figures 7 and 8.
type sweepResult struct {
	avgTimeMS  float64
	avgTotalIO float64
	avgLightIO float64
}

// runHDoVSweep measures the HDoV-tree under one scheme for each eta,
// including payload retrieval ("the loading time of these objects"), which
// is what makes Figure 7 fall with eta.
func runHDoVSweep(e *Env, scheme core.VStore, etas []float64, workload []cells.CellID) ([]sweepResult, error) {
	e.Tree.SetVStore(scheme)
	out := make([]sweepResult, len(etas))
	for i, eta := range etas {
		var simTime time.Duration
		var total, light int64
		for _, cell := range workload {
			before := e.Disk.Stats()
			res, err := e.Tree.Query(cell, eta)
			if err != nil {
				return nil, err
			}
			if _, err := e.Tree.FetchPayloads(res, nil); err != nil {
				return nil, err
			}
			d := e.Disk.Stats().Sub(before)
			simTime += d.SimTime
			total += d.LightReads + d.HeavyReads
			light += d.LightReads
		}
		n := float64(len(workload))
		out[i] = sweepResult{
			avgTimeMS:  float64(simTime) / float64(time.Millisecond) / n,
			avgTotalIO: float64(total) / n,
			avgLightIO: float64(light) / n,
		}
	}
	return out, nil
}

// runNaiveSweep measures the naive baseline (constant in eta).
func runNaiveSweep(e *Env, workload []cells.CellID) (sweepResult, error) {
	var simTime time.Duration
	var total, light int64
	for _, cell := range workload {
		before := e.Disk.Stats()
		res, err := e.Naive.Query(cell)
		if err != nil {
			return sweepResult{}, err
		}
		if _, err := e.Naive.FetchPayloads(res, nil); err != nil {
			return sweepResult{}, err
		}
		d := e.Disk.Stats().Sub(before)
		simTime += d.SimTime
		total += d.LightReads + d.HeavyReads
		light += d.LightReads
	}
	n := float64(len(workload))
	return sweepResult{
		avgTimeMS:  float64(simTime) / float64(time.Millisecond) / n,
		avgTotalIO: float64(total) / n,
		avgLightIO: float64(light) / n,
	}, nil
}

// RunFig7 reproduces Figure 7: average search time (query + model loading)
// per visibility query as eta varies, for the three storage schemes and
// the naive method. Shapes: all HDoV curves fall with eta; horizontal is
// the slowest scheme; vertical ≈ indexed-vertical (indexed marginally
// better); eta=0 ≈ naive.
func RunFig7(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	workload := queryWorkload(e, p.Queries, p.Seed+100)
	hres, err := runHDoVSweep(e, e.H, p.Etas, workload)
	if err != nil {
		return err
	}
	vres, err := runHDoVSweep(e, e.V, p.Etas, workload)
	if err != nil {
		return err
	}
	ivres, err := runHDoVSweep(e, e.IV, p.Etas, workload)
	if err != nil {
		return err
	}
	nres, err := runNaiveSweep(e, workload)
	if err != nil {
		return err
	}
	e.Tree.SetVStore(e.IV)
	fmt.Fprintf(w, "%d visibility queries at random viewpoints; avg search time (ms)\n\n", p.Queries)
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s %-12s\n", "eta", "horizontal", "vertical", "indexed-v", "naive")
	for i, eta := range p.Etas {
		fmt.Fprintf(w, "%-10g %-12.2f %-12.2f %-12.2f %-12.2f\n",
			eta, hres[i].avgTimeMS, vres[i].avgTimeMS, ivres[i].avgTimeMS, nres.avgTimeMS)
	}
	return nil
}

// RunFig8a reproduces Figure 8(a): average number of disk I/Os per query
// including model data, for the indexed-vertical scheme vs naive. HDoV
// falls with eta and stays below naive.
func RunFig8a(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	workload := queryWorkload(e, p.Queries, p.Seed+100)
	ivres, err := runHDoVSweep(e, e.IV, p.Etas, workload)
	if err != nil {
		return err
	}
	nres, err := runNaiveSweep(e, workload)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "avg disk I/Os per query (nodes + V-pages + model data)\n\n")
	fmt.Fprintf(w, "%-10s %-14s %-14s\n", "eta", "HDoV(idx-v)", "naive")
	for i, eta := range p.Etas {
		fmt.Fprintf(w, "%-10g %-14.1f %-14.1f\n", eta, ivres[i].avgTotalIO, nres.avgTotalIO)
	}
	return nil
}

// RunFig8b reproduces Figure 8(b): light-weight I/O (nodes and V-pages
// only). At very small eta HDoV pays extra internal-node I/O and sits
// above naive; the curves cross as eta grows.
func RunFig8b(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	workload := queryWorkload(e, p.Queries, p.Seed+100)
	ivres, err := runHDoVSweep(e, e.IV, p.Etas, workload)
	if err != nil {
		return err
	}
	nres, err := runNaiveSweep(e, workload)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "avg light-weight I/Os per query (tree nodes + V-pages, no model data)\n\n")
	fmt.Fprintf(w, "%-10s %-14s %-14s\n", "eta", "HDoV(idx-v)", "naive")
	for i, eta := range p.Etas {
		fmt.Fprintf(w, "%-10g %-14.1f %-14.1f\n", eta, ivres[i].avgLightIO, nres.avgLightIO)
	}
	return nil
}

// fig9Datasets defines the Figure 9 dataset series: the paper's 400 MB to
// 1.6 GB axis, realized as cities whose object count grows with the
// nominal size (object count scales with blocks squared). The viewing-cell
// grid scales with the city so cell size — and hence the per-cell visible
// set — stays constant, as with the paper's fixed, pre-determined cells.
func fig9Datasets(p Params) []struct {
	label   string
	blocks  int
	grid    int
	nominal int64
} {
	base := p.CityBlocks
	g := func(blocks int) int { return p.GridCells * blocks / base }
	return []struct {
		label   string
		blocks  int
		grid    int
		nominal int64
	}{
		{"400MB", base, g(base), 400 << 20},
		{"800MB", base * 4 / 3, g(base * 4 / 3), 800 << 20},
		{"1.2GB", base * 5 / 3, g(base * 5 / 3), 1200 << 20},
		{"1.6GB", base * 2, g(base * 2), 1600 << 20},
	}
}

// RunFig9 reproduces Figure 9: traversal-only search time and I/O per
// query over growing datasets. The paper reports near-flat curves: "the
// average response time and I/O cost increases only marginally with
// increasing dataset sizes."
func RunFig9(w io.Writer, p Params) error {
	fmt.Fprintf(w, "%d traversal-only queries per dataset (model retrieval excluded)\n\n", p.ScalQueries)
	fmt.Fprintf(w, "%-8s %-9s %-8s %-14s %-12s\n", "dataset", "objects", "nodes", "avg time (ms)", "avg I/Os")
	eta := 0.001
	for _, ds := range fig9Datasets(p) {
		e := BuildEnv(p, ds.blocks, ds.grid, ds.nominal)
		e.Tree.SetVStore(e.IV)
		workload := queryWorkload(e, p.ScalQueries, p.Seed+200)
		var simTime time.Duration
		var io64 int64
		for _, cell := range workload {
			before := e.Disk.Stats()
			if _, err := e.Tree.Query(cell, eta); err != nil {
				return err
			}
			d := e.Disk.Stats().Sub(before)
			simTime += d.SimTime
			io64 += d.LightReads
		}
		n := float64(p.ScalQueries)
		fmt.Fprintf(w, "%-8s %-9d %-8d %-14.2f %-12.1f\n",
			ds.label, len(e.Scene.Objects), e.Tree.NumNodes(),
			float64(simTime)/float64(time.Millisecond)/n, float64(io64)/n)
	}
	return nil
}
