package bench

import (
	"fmt"
	"io"

	"repro/internal/cells"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/review"
	"repro/internal/walkthrough"
)

// RunSummary is the conformance digest: it evaluates every headline shape
// claim of the paper's evaluation on the current build and prints a
// PASS/FAIL verdict per claim. It is what a reviewer would run first.
func RunSummary(w io.Writer, p Params) error {
	e := DefaultEnv(p)
	e.Tree.SetVStore(e.IV)
	type check struct {
		id, claim string
		pass      bool
		detail    string
	}
	var checks []check
	add := func(id, claim string, pass bool, detail string, args ...interface{}) {
		checks = append(checks, check{id, claim, pass, fmt.Sprintf(detail, args...)})
	}

	// Table 2: storage ordering.
	h, v, iv := e.H.SizeBytes(), e.V.SizeBytes(), e.IV.SizeBytes()
	add("table2", "horizontal >> vertical > indexed-vertical",
		h > 3*iv && v > iv,
		"%.1f / %.2f / %.2f MB", float64(h)/(1<<20), float64(v)/(1<<20), float64(iv)/(1<<20))

	// Figures 7/8: eta sweeps.
	workload := queryWorkload(e, maxi(p.Queries/10, 200), p.Seed+100)
	ivSweep, err := runHDoVSweep(e, e.IV, p.Etas, workload)
	if err != nil {
		return err
	}
	hSweep, err := runHDoVSweep(e, e.H, p.Etas, workload)
	if err != nil {
		return err
	}
	nres, err := runNaiveSweep(e, workload)
	if err != nil {
		return err
	}
	e.Tree.SetVStore(e.IV)
	first, last := ivSweep[0], ivSweep[len(ivSweep)-1]
	add("fig7", "search time falls with eta",
		last.avgTimeMS < first.avgTimeMS,
		"%.1f -> %.1f ms", first.avgTimeMS, last.avgTimeMS)
	add("fig7", "horizontal scheme slowest",
		hSweep[0].avgTimeMS > first.avgTimeMS,
		"horizontal %.1f vs indexed %.1f ms", hSweep[0].avgTimeMS, first.avgTimeMS)
	add("fig8a", "total I/O ends below naive",
		last.avgTotalIO < nres.avgTotalIO,
		"HDoV %.1f vs naive %.1f pages", last.avgTotalIO, nres.avgTotalIO)
	add("fig8b", "light I/O above naive at eta=0, falls with eta",
		first.avgLightIO > nres.avgLightIO && last.avgLightIO < first.avgLightIO,
		"%.1f -> %.1f pages (naive %.1f)", first.avgLightIO, last.avgLightIO, nres.avgLightIO)

	// Figure 9: sub-linear scalability (first vs last dataset).
	ds := fig9Datasets(p)
	small := BuildEnv(p, ds[0].blocks, ds[0].grid, ds[0].nominal)
	big := BuildEnv(p, ds[len(ds)-1].blocks, ds[len(ds)-1].grid, ds[len(ds)-1].nominal)
	smallCost, err := traversalCost(small, p)
	if err != nil {
		return err
	}
	bigCost, err := traversalCost(big, p)
	if err != nil {
		return err
	}
	sizeRatio := float64(len(big.Scene.Objects)) / float64(len(small.Scene.Objects))
	costRatio := bigCost / smallCost
	add("fig9", "traversal cost grows sub-linearly with dataset size",
		costRatio < sizeRatio/2,
		"%.1fx objects -> %.2fx cost", sizeRatio, costRatio)

	// Figures 10/12, Table 3: walkthroughs.
	s1 := walkthrough.RecordNormal(e.Scene, p.Frames, p.Seed)
	vres, err := visualPlayer(e, 0.001).Play(s1)
	if err != nil {
		return err
	}
	rres, err := reviewPlayer(e, 400).Play(s1)
	if err != nil {
		return err
	}
	add("fig10a", "VISUAL faster than REVIEW",
		vres.AvgFrameTime() < rres.AvgFrameTime(),
		"%.2f vs %.2f ms/frame", vres.AvgFrameTime(), rres.AvgFrameTime())
	add("fig10a", "VISUAL smoother than REVIEW",
		vres.VarFrameTime() < rres.VarFrameTime(),
		"variance %.0f vs %.0f", vres.VarFrameTime(), rres.VarFrameTime())
	add("table3", "VISUAL uses less memory than REVIEW",
		vres.PeakBytes < rres.PeakBytes,
		"%s vs %s", mb(vres.PeakBytes), mb(rres.PeakBytes))
	fine, err := visualPlayer(e, 0.0003).Play(s1)
	if err != nil {
		return err
	}
	add("fig10b", "eta=0.001 at least as fast as eta=0.0003",
		vres.AvgFrameTime() <= fine.AvgFrameTime(),
		"%.2f vs %.2f ms/frame", vres.AvgFrameTime(), fine.AvgFrameTime())
	zres, err := visualPlayer(e, 0).Play(s1)
	if err != nil {
		return err
	}
	maxRes, err := visualPlayer(e, 0.004).Play(s1)
	if err != nil {
		return err
	}
	add("table3", "frame time falls across the eta ladder",
		maxRes.AvgFrameTime() < zres.AvgFrameTime(),
		"%.2f (eta=0) -> %.2f (eta=0.004) ms", zres.AvgFrameTime(), maxRes.AvgFrameTime())

	// Figure 11: fidelity.
	sys := review.New(e.Tree, func() review.Config {
		cfg := review.DefaultConfig()
		cfg.QueryBoxDepth = 200
		return cfg
	}())
	cell := cells.CellID(e.Tree.Grid.NumCells() / 3)
	eye := e.Tree.Grid.SamplePoints(cell, 1)[0]
	truth := e.Engine.PointDoV(eye)
	rq, err := sys.Query(eye, geom.V(1, 0, 0))
	if err != nil {
		return err
	}
	hq, err := e.Tree.Query(cell, 0.001)
	if err != nil {
		return err
	}
	rf := render.Evaluate(e.Tree, rq.Items, truth)
	hf := render.Evaluate(e.Tree, hq.Items, truth)
	add("fig11", "REVIEW misses visible objects; VISUAL misses none",
		rf.MissedObjects > 0 && hf.MissedObjects == 0,
		"REVIEW missed %d, VISUAL missed %d", rf.MissedObjects, hf.MissedObjects)

	// Print.
	pass := 0
	fmt.Fprintf(w, "%-8s %-52s %-6s %s\n", "source", "claim", "shape", "measured")
	for _, c := range checks {
		verdict := "FAIL"
		if c.pass {
			verdict = "pass"
			pass++
		}
		fmt.Fprintf(w, "%-8s %-52s %-6s %s\n", c.id, c.claim, verdict, c.detail)
	}
	fmt.Fprintf(w, "\n%d of %d shape claims reproduced\n", pass, len(checks))
	return nil
}

// traversalCost measures mean traversal-only simulated time (ms/query).
func traversalCost(e *Env, p Params) (float64, error) {
	e.Tree.SetVStore(e.IV)
	workload := queryWorkload(e, maxi(p.ScalQueries/2, 100), p.Seed+200)
	before := e.Disk.Stats()
	for _, cell := range workload {
		if _, err := e.Tree.Query(cell, 0.001); err != nil {
			return 0, err
		}
	}
	d := e.Disk.Stats().Sub(before)
	return d.SimTime.Seconds() * 1000 / float64(len(workload)), nil
}
