package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsRun smoke-runs every experiment at Quick scale and
// checks each produces non-empty, well-formed output.
func TestAllExperimentsRun(t *testing.T) {
	p := Quick()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, p); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
			if strings.Contains(buf.String(), "NaN") {
				t.Fatalf("output contains NaN:\n%s", buf.String())
			}
		})
	}
}

func TestLookup(t *testing.T) {
	for _, e := range All() {
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("lookup %q failed", e.ID)
		}
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestEnvCaching(t *testing.T) {
	p := Quick()
	a := DefaultEnv(p)
	b := DefaultEnv(p)
	if a != b {
		t.Fatal("environment not cached")
	}
	c := BuildEnv(p, p.CityBlocks+1, p.GridCells, p.NominalBytes)
	if c == a {
		t.Fatal("different configs share an environment")
	}
}

// TestTable2Shapes verifies the Table 2 orderings at Quick scale.
func TestTable2Shapes(t *testing.T) {
	e := DefaultEnv(Quick())
	h, v, iv := e.H.SizeBytes(), e.V.SizeBytes(), e.IV.SizeBytes()
	if !(h > v && v > iv) {
		t.Fatalf("ordering violated: h=%d v=%d iv=%d", h, v, iv)
	}
}

// TestFig8Shapes verifies the paper's qualitative claims for Figure 8 at
// Quick scale: light I/O falls with eta and naive sits below HDoV at
// eta=0 in light I/O while HDoV's total I/O ends below or near naive's.
func TestFig8Shapes(t *testing.T) {
	p := Quick()
	e := DefaultEnv(p)
	workload := queryWorkload(e, p.Queries, p.Seed+100)
	res, err := runHDoVSweep(e, e.IV, p.Etas, workload)
	if err != nil {
		t.Fatal(err)
	}
	n, err := runNaiveSweep(e, workload)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res[0], res[len(res)-1]
	if last.avgLightIO >= first.avgLightIO {
		t.Fatalf("light I/O did not fall: %v -> %v", first.avgLightIO, last.avgLightIO)
	}
	if first.avgLightIO <= n.avgLightIO {
		t.Fatalf("eta=0 light I/O %v should exceed naive %v", first.avgLightIO, n.avgLightIO)
	}
	if last.avgTotalIO >= first.avgTotalIO {
		t.Fatalf("total I/O did not fall: %v -> %v", first.avgTotalIO, last.avgTotalIO)
	}
}

func TestMB(t *testing.T) {
	if mb(1<<20) != "1.0 MB" {
		t.Fatalf("mb: %q", mb(1<<20))
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
