package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/storage/filestore"
	"repro/internal/vstore"
)

// The hwcalib experiment puts real hardware in the loop (DESIGN.md §17):
// it measures the file backend's seek/transfer behavior on this host,
// fits the simulator's CostModel to it, builds the standard dataset on
// the file backend under the fitted model, and re-runs the headline
// workloads with simulated and measured wall-clock time side by side:
//
//	baseline — the three schemes' uncached query cost, sim vs measured
//	codec    — raw vs compressed V-pages, measured wall-clock speedup
//	warm     — cold vs pool-warmed serving, measured wall-clock speedup
//
// Absolute wall-clock numbers are host properties, so the committed
// reference (BENCH_hwcalib.json) pins only the workload and the two
// ratio gates; the guard re-runs the experiment and re-checks the gates
// rather than diffing times across machines.

// The headline gates: on the real file backend, the codec layout and
// the warmed pool must each show a measured wall-clock improvement over
// their raw/cold leg. The gates are deliberately generous: on a
// page-cache-resident file the seek savings the simulator prices at 9ms
// apiece cost almost nothing, so the codec's measured win shrinks to
// its read-op reduction (~8% on the quick workload, deterministic for a
// seeded dataset) — the vpagecodec guard keeps enforcing the larger
// structural claims on the simulated side. The warm pool eliminates
// demand media reads outright, so its measured ratio is large on any
// host.
const (
	hwCodecGate = 1.02
	hwWarmGate  = 1.20
)

// hwCalibPages sizes the scratch file the calibration pass reads: large
// enough that per-call overhead amortizes, small enough to stay cheap.
const hwCalibPages = 2048

// hwMeasureReps repeats each measured leg and keeps the fastest run —
// the usual minimum-of-N defense against scheduler noise. Simulated
// costs are deterministic, so one rep of those suffices.
const hwMeasureReps = 3

// HWSchemeMetric is one scheme's per-query cost on the file backend:
// the fitted model's prediction next to the hardware's answer.
type HWSchemeMetric struct {
	LightIOPerQuery        float64 `json:"light_io_per_query"`
	SimMicrosPerQuery      float64 `json:"sim_micros_per_query"`
	MeasuredMicrosPerQuery float64 `json:"measured_micros_per_query"`
}

// HWCalib is the committed reference format (BENCH_hwcalib.json).
type HWCalib struct {
	Workload string `json:"workload"`
	PageSize int    `json:"page_size"`
	// FittedSeekMicros/FittedTransferMicros is the cost model fitted to
	// this host's file backend (page-cache resident, so both are orders
	// of magnitude below the paper's 2003 disk).
	FittedSeekMicros     float64 `json:"fitted_seek_micros"`
	FittedTransferMicros float64 `json:"fitted_transfer_micros"`
	// Schemes is the baseline leg: uncached per-query cost per scheme.
	Schemes map[string]HWSchemeMetric `json:"schemes"`
	// CodecRawMicros/CodecEncMicros is the codec leg on the
	// indexed-vertical scheme; CodecSpeedup their ratio.
	CodecRawMicros float64 `json:"codec_raw_micros_per_query"`
	CodecEncMicros float64 `json:"codec_enc_micros_per_query"`
	CodecSpeedup   float64 `json:"codec_speedup"`
	// ColdMicros/WarmMicros is the warm-pool leg; WarmSpeedup their
	// ratio (warm demand reads are pool hits, so it is usually large).
	ColdMicros  float64 `json:"cold_micros_per_query"`
	WarmMicros  float64 `json:"warm_micros_per_query"`
	WarmSpeedup float64 `json:"warm_speedup"`
}

// calibrateFileBackend profiles a scratch file store: a sequential
// vectored pass fits the per-page transfer cost, a strided single-page
// pass fits the per-access (seek) cost, and the pair becomes the
// simulator's CostModel for the file-backed runs.
func calibrateFileBackend(dir string) (storage.CostModel, error) {
	fs, err := filestore.Create(filepath.Join(dir, "calib.dat"), 0, filestore.Options{})
	if err != nil {
		return storage.CostModel{}, err
	}
	defer fs.Close()
	ps := fs.PageSize()
	for i := 0; i < hwCalibPages; i++ {
		page := make([]byte, ps)
		for j := range page {
			page[j] = byte(i + j)
		}
		if err := fs.WritePage(storage.PageID(i), page); err != nil {
			return storage.CostModel{}, err
		}
	}
	if err := fs.Sync(); err != nil {
		return storage.CostModel{}, err
	}

	// Sequential: vectored runs of 64 pages, minimum over reps.
	const run = 64
	dst := make([]byte, run*ps)
	seq := time.Duration(1 << 62)
	for rep := 0; rep < hwMeasureReps; rep++ {
		t0 := time.Now()
		for off := 0; off+run <= hwCalibPages; off += run {
			if err := fs.ReadPages(storage.PageID(off), run, dst); err != nil {
				return storage.CostModel{}, err
			}
		}
		if d := time.Since(t0); d < seq {
			seq = d
		}
	}
	transfer := seq / time.Duration((hwCalibPages/run)*run)
	if transfer <= 0 {
		transfer = time.Nanosecond
	}

	// Strided: single-page reads on a 769-page stride (coprime with the
	// file size, so every page is hit once, never sequentially).
	one := make([]byte, ps)
	rnd := time.Duration(1 << 62)
	for rep := 0; rep < hwMeasureReps; rep++ {
		idx := 1
		t0 := time.Now()
		for i := 0; i < hwCalibPages; i++ {
			idx = (idx + 769) % hwCalibPages
			if err := fs.ReadPage(storage.PageID(idx), one); err != nil {
				return storage.CostModel{}, err
			}
		}
		if d := time.Since(t0); d < rnd {
			rnd = d
		}
	}
	seek := rnd/hwCalibPages - transfer
	if seek < 0 {
		seek = 0
	}
	return storage.CostModel{Seek: seek, TransferPage: transfer}, nil
}

// hwLeg runs the standard uncached workload against one store on the
// file-backed env and reports per-query light reads, fitted-simulated
// time, and measured wall-clock (minimum over hwMeasureReps).
func hwLeg(e *Env, store core.VStore, ws []cells.CellID, queries int) (HWSchemeMetric, error) {
	var m HWSchemeMetric
	e.Tree.SetVStore(store)
	defer e.Tree.SetVStore(e.IV)
	n := float64(queries)
	best := time.Duration(1 << 62)
	for rep := 0; rep < hwMeasureReps; rep++ {
		s := e.Tree.Session()
		before := s.IO.Stats()
		for q := 0; q < queries; q++ {
			if _, err := s.Query(ws[q%len(ws)], 0.001); err != nil {
				return m, err
			}
		}
		d := s.IO.Stats().Sub(before)
		if rep == 0 {
			m.SimMicrosPerQuery = float64(d.SimTime.Nanoseconds()) / 1e3 / n
			m.LightIOPerQuery = float64(d.LightReads) / n
		}
		if d.MeasuredTime < best {
			best = d.MeasuredTime
		}
	}
	m.MeasuredMicrosPerQuery = float64(best.Nanoseconds()) / 1e3 / n
	return m, nil
}

// hwRatio is a/b with b floored at a nanosecond-scale epsilon, so a
// fully pool-absorbed warm leg (measured ~0) stays JSON-encodable
// instead of dividing to +Inf.
func hwRatio(a, b float64) float64 {
	const eps = 1e-3 // µs
	if b < eps {
		b = eps
	}
	return a / b
}

// CollectHWCalib calibrates the file backend, builds the dataset on it
// under the fitted cost model, and measures every leg.
func CollectHWCalib(p Params) (*HWCalib, error) {
	dir, err := os.MkdirTemp("", "hdov-hwcalib-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	fitted, err := calibrateFileBackend(dir)
	if err != nil {
		return nil, fmt.Errorf("bench: hwcalib calibrate: %w", err)
	}

	fs, err := filestore.Create(filepath.Join(dir, "pages.dat"), 0, filestore.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: hwcalib store: %w", err)
	}
	d := storage.NewDiskOn(fs, fitted)
	defer d.Close()
	e := buildEnvOn(p, p.CityBlocks, p.GridCells, p.NominalBytes, d)

	out := &HWCalib{
		Workload:             workloadTag(p),
		PageSize:             fs.PageSize(),
		FittedSeekMicros:     float64(fitted.Seek.Nanoseconds()) / 1e3,
		FittedTransferMicros: float64(fitted.TransferPage.Nanoseconds()) / 1e3,
		Schemes:              map[string]HWSchemeMetric{},
	}
	ws := workingSet(e.Tree, 32)

	// Baseline leg: every scheme, uncached, sim vs measured.
	for _, sc := range []struct {
		name  string
		store core.VStore
	}{
		{"horizontal", e.H},
		{"vertical", e.V},
		{"indexed-vertical", e.IV},
	} {
		m, err := hwLeg(e, sc.store, ws, p.ScalQueries)
		if err != nil {
			return nil, fmt.Errorf("bench: hwcalib %s: %w", sc.name, err)
		}
		out.Schemes[sc.name] = m
	}

	// Codec leg: the compressed V-page layout on the same disk, against
	// the raw indexed-vertical numbers just measured.
	ivCodec, err := vstore.BuildIndexedVerticalOpts(e.Disk, e.Vis, vstore.Options{Codec: true})
	if err != nil {
		return nil, fmt.Errorf("bench: hwcalib codec build: %w", err)
	}
	enc, err := hwLeg(e, ivCodec, ws, p.ScalQueries)
	if err != nil {
		return nil, fmt.Errorf("bench: hwcalib codec: %w", err)
	}
	out.CodecRawMicros = out.Schemes["indexed-vertical"].MeasuredMicrosPerQuery
	out.CodecEncMicros = enc.MeasuredMicrosPerQuery
	out.CodecSpeedup = hwRatio(out.CodecRawMicros, out.CodecEncMicros)

	// Warm leg: the same workload with the shared buffer pool holding
	// the working set — demand reads become pool hits, so the measured
	// wall-clock collapses against the cold (raw indexed-vertical) leg.
	e.Disk.SetCacheSize(walkCoherencePool)
	defer e.Disk.SetCacheSize(0)
	warmup := e.Tree.Session()
	for _, c := range ws {
		if _, err := warmup.Query(c, 0.001); err != nil {
			return nil, fmt.Errorf("bench: hwcalib warmup: %w", err)
		}
	}
	warm, err := hwLeg(e, e.IV, ws, p.ScalQueries)
	if err != nil {
		return nil, fmt.Errorf("bench: hwcalib warm: %w", err)
	}
	out.ColdMicros = out.CodecRawMicros
	out.WarmMicros = warm.MeasuredMicrosPerQuery
	out.WarmSpeedup = hwRatio(out.ColdMicros, out.WarmMicros)
	return out, nil
}

// RunHWCalib prints the fitted cost model, the sim-vs-measured table,
// and the two wall-clock gates.
func RunHWCalib(w io.Writer, p Params) error {
	hc, err := CollectHWCalib(p)
	if err != nil {
		return err
	}
	def := storage.DefaultCostModel()
	fmt.Fprintf(w, "file backend calibration (%d x %d B scratch pages, min of %d reps)\n",
		hwCalibPages, hc.PageSize, hwMeasureReps)
	fmt.Fprintf(w, "%-14s %-16s %s\n", "cost model", "seek", "transfer/page")
	fmt.Fprintf(w, "%-14s %-16v %v\n", "paper (2003)", def.Seek, def.TransferPage)
	fmt.Fprintf(w, "%-14s %-16s %s\n\n", "fitted (host)",
		fmt.Sprintf("%.3fµs", hc.FittedSeekMicros),
		fmt.Sprintf("%.3fµs", hc.FittedTransferMicros))

	fmt.Fprintf(w, "uncached workload on the file backend, %d queries over 32 cells, eta=0.001\n", p.ScalQueries)
	fmt.Fprintf(w, "%-18s %-14s %-18s %s\n",
		"scheme", "lightIO/query", "fitted-simµs/query", "measuredµs/query")
	for _, name := range []string{"horizontal", "vertical", "indexed-vertical"} {
		m := hc.Schemes[name]
		fmt.Fprintf(w, "%-18s %-14.2f %-18.2f %.2f\n",
			name, m.LightIOPerQuery, m.SimMicrosPerQuery, m.MeasuredMicrosPerQuery)
	}
	fmt.Fprintln(w)

	pass := true
	codecVerdict := "PASS"
	if hc.CodecSpeedup < hwCodecGate {
		codecVerdict = "FAIL"
		pass = false
	}
	fmt.Fprintf(w, "codec leg (indexed-vertical): raw %.2fµs/query, codec %.2fµs/query — %.2fx measured speedup (claim: >= %.2fx) %s\n",
		hc.CodecRawMicros, hc.CodecEncMicros, hc.CodecSpeedup, hwCodecGate, codecVerdict)
	warmVerdict := "PASS"
	if hc.WarmSpeedup < hwWarmGate {
		warmVerdict = "FAIL"
		pass = false
	}
	fmt.Fprintf(w, "warm leg (pool %d pages): cold %.2fµs/query, warm %.2fµs/query — %.2fx measured speedup (claim: >= %.2fx) %s\n",
		walkCoherencePool, hc.ColdMicros, hc.WarmMicros, hc.WarmSpeedup, hwWarmGate, warmVerdict)
	if !pass {
		return fmt.Errorf("bench: hwcalib: a measured wall-clock gate failed on the file backend")
	}
	return nil
}

// CompareHWCalib checks a fresh run against the committed reference.
// Wall-clock absolutes are host properties, so unlike the simulated
// guards it never diffs times across runs: it pins the workload tag and
// re-checks the ratio gates and calibration sanity on the fresh run.
func CompareHWCalib(ref, cur *HWCalib) []string {
	var bad []string
	if ref.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: reference %q vs current %q (regenerate the reference)",
			ref.Workload, cur.Workload)}
	}
	for _, name := range []string{"horizontal", "vertical", "indexed-vertical"} {
		if _, ok := cur.Schemes[name]; !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from current run", name))
		}
	}
	if cur.FittedTransferMicros <= 0 {
		bad = append(bad, "calibration fitted a non-positive transfer cost")
	}
	if cur.CodecSpeedup < hwCodecGate {
		bad = append(bad, fmt.Sprintf(
			"codec measured speedup %.2fx on the file backend, gate %.2fx",
			cur.CodecSpeedup, hwCodecGate))
	}
	if cur.WarmSpeedup < hwWarmGate {
		bad = append(bad, fmt.Sprintf(
			"warm-pool measured speedup %.2fx on the file backend, gate %.2fx",
			cur.WarmSpeedup, hwWarmGate))
	}
	return bad
}

// LoadHWCalib reads a committed hwcalib reference.
func LoadHWCalib(path string) (*HWCalib, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var hc HWCalib
	if err := json.Unmarshal(raw, &hc); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &hc, nil
}

// WriteHWCalib writes the reference in the committed format.
func WriteHWCalib(path string, hc *HWCalib) error {
	raw, err := json.MarshalIndent(hc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
