package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/shard"
)

// The shardscale experiment measures what the shard router buys: N
// contiguous cell-range shards give the workload N independent simulated
// disk arms, so the aggregate throughput of a multi-client workload is
// bounded by the *busiest* spindle rather than the only one. The metric
// is deterministic — simulated disk time for a seeded dataset and a
// fixed workload — so the guard catches routing regressions (work
// collapsing back onto one store, broken trimming, a merge that
// re-serializes shards) without depending on host speed. Every routed
// answer is also checked byte-identical to the unsharded baseline.

// ShardScaleLeg is one shard-count measurement.
type ShardScaleLeg struct {
	Shards  int `json:"shards"`
	Queries int `json:"queries"`
	// MaxShardSimMicros is the busiest store's simulated disk time — the
	// spindle that bounds wall clock on real hardware.
	MaxShardSimMicros float64 `json:"max_shard_sim_micros"`
	// TotalSimMicros sums simulated time across stores (constant across
	// shard counts up to boundary effects: sharding splits work, it does
	// not shrink it).
	TotalSimMicros float64 `json:"total_sim_micros"`
	// ThroughputQPS is Queries / MaxShardSimMicros in queries per
	// simulated second.
	ThroughputQPS float64 `json:"throughput_qps"`
	// Identical reports that every routed answer matched the unsharded
	// baseline byte for byte.
	Identical bool `json:"identical"`
}

// ShardScale is the committed shardscale reference (BENCH_shardscale.json).
type ShardScale struct {
	Workload string          `json:"workload"`
	Clients  int             `json:"clients"`
	Legs     []ShardScaleLeg `json:"legs"`
	// SpeedupAt8 is the 8-shard leg's throughput over the 1-shard leg's.
	SpeedupAt8 float64 `json:"speedup_at_8"`
	// ReplicaSpeedup is the skewed-workload gain from mirroring the hot
	// shard onto a replica store (sessions split across the two arms).
	ReplicaSpeedup float64 `json:"replica_speedup"`
}

// shardManifests adapts a built Env to the shard layer's reopen set.
func shardManifests(e *Env) shard.Manifests {
	return shard.Manifests{
		Tree:  e.Tree.Manifest(),
		H:     e.H.Manifest(),
		V:     e.V.Manifest(),
		IV:    e.IV.Manifest(),
		Naive: e.Naive.Manifest(),
	}
}

// shardFingerprint renders the bytes that define an answer.
func shardFingerprint(r *core.QueryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell=%d eta=%g\n", r.Cell, r.Eta)
	for _, it := range r.Items {
		fmt.Fprintf(&b, "%d %d %x %x %d %x %d+%d/%d\n",
			it.ObjectID, it.NodeID, it.DoV, it.Detail, it.Level, it.Polygons,
			it.Extent.Start, it.Extent.NominalBytes, it.Extent.RealBytes)
	}
	for _, dg := range r.Degradations {
		fmt.Fprintf(&b, "deg %d %d %d %d\n", dg.Cell, dg.Node, dg.Object, dg.Cause)
	}
	return b.String()
}

const shardScaleEta = 0.001

// shardScaleClients is the fixed harness width (the -clients default).
const shardScaleClients = 8

// runShardLeg drives the clients×perClient workload through a fresh
// router at the given shard count and returns the leg plus the router
// (heat populated, for the replica follow-on). Clients run one after
// another — the cost is simulated, so concurrency would only add
// scheduling noise; each client still has its own routed session and its
// own ring offset, exactly like RunServeClients.
func runShardLeg(e *Env, shards int, ws []cells.CellID, perClient int, baseline map[cells.CellID]string) (ShardScaleLeg, *shard.Router, error) {
	r, err := shard.NewRouter(e.Scene, e.Disk, shardManifests(e), shard.Config{
		Shards: shards,
		Scheme: shard.SchemeIndexedVertical,
	})
	if err != nil {
		return ShardScaleLeg{}, nil, err
	}
	leg, err := driveRouter(r, ws, perClient, baseline)
	return leg, r, err
}

// driveRouter runs the standard workload against an existing topology
// and measures the busiest-spindle throughput of that pass alone.
func driveRouter(r *shard.Router, ws []cells.CellID, perClient int, baseline map[cells.CellID]string) (ShardScaleLeg, error) {
	r.ResetStats()
	leg := ShardScaleLeg{
		Shards:    r.Shards(),
		Queries:   shardScaleClients * perClient,
		Identical: true,
	}
	for i := 0; i < shardScaleClients; i++ {
		s := r.Session()
		for q := 0; q < perClient; q++ {
			c := ws[(i+q)%len(ws)]
			res, err := s.QueryCell(c, shardScaleEta)
			if err != nil {
				return leg, fmt.Errorf("client %d cell %d: %w", i, c, err)
			}
			if shardFingerprint(res) != baseline[c] {
				leg.Identical = false
			}
		}
	}
	// The spindle that bounds the run is the busiest single store:
	// a shard's primary and each of its replicas are independent arms.
	var maxSim, totalSim time.Duration
	for _, st := range r.ShardStats() {
		totalSim += st.SimTime
		if st.SimTime > maxSim {
			maxSim = st.SimTime
		}
	}
	for _, st := range r.ReplicaStats() {
		// ReplicaStats sums a shard's mirrors; with the single replica
		// this experiment promotes, the sum is that store's own time.
		totalSim += st.SimTime
		if st.SimTime > maxSim {
			maxSim = st.SimTime
		}
	}
	leg.MaxShardSimMicros = float64(maxSim.Microseconds())
	leg.TotalSimMicros = float64(totalSim.Microseconds())
	if maxSim > 0 {
		leg.ThroughputQPS = float64(leg.Queries) / maxSim.Seconds()
	}
	return leg, nil
}

// CollectShardScale measures the shardscale reference for p: the shard
// sweep at 1/2/4/8 shards under the 8-client harness, plus the
// skewed-workload replica leg.
func CollectShardScale(p Params) (*ShardScale, error) {
	e := DefaultEnv(p)
	ws := workingSet(e.Tree, 32)
	perClient := p.ScalQueries
	if perClient > 200 {
		perClient = 200
	}
	if perClient < 1 {
		perClient = 1
	}

	// Unsharded baseline answers, one per distinct working-set cell.
	e.Tree.SetVStore(e.IV)
	baseTree := e.Tree.Session()
	baseline := make(map[cells.CellID]string, len(ws))
	for _, c := range ws {
		res, err := baseTree.Query(c, shardScaleEta)
		if err != nil {
			return nil, fmt.Errorf("bench: shardscale baseline: %w", err)
		}
		baseline[c] = shardFingerprint(res)
	}

	out := &ShardScale{Workload: workloadTag(p), Clients: shardScaleClients}
	for _, shards := range []int{1, 2, 4, 8} {
		leg, _, err := runShardLeg(e, shards, ws, perClient, baseline)
		if err != nil {
			return nil, fmt.Errorf("bench: shardscale %d shards: %w", shards, err)
		}
		out.Legs = append(out.Legs, leg)
	}
	if base := out.Legs[0].ThroughputQPS; base > 0 {
		out.SpeedupAt8 = out.Legs[len(out.Legs)-1].ThroughputQPS / base
	}

	// Replica leg: every client hammers shard 0's range (a hot district).
	// The first pass feeds the heat EMAs and sets the unreplicated
	// reference; PromoteHot then mirrors the hot shard, and the rerun's
	// sessions split round-robin across primary and replica.
	hot := hotWorkload(e, 4)
	for _, c := range hot {
		if _, ok := baseline[c]; ok {
			continue
		}
		res, err := baseTree.Query(c, shardScaleEta)
		if err != nil {
			return nil, fmt.Errorf("bench: shardscale baseline: %w", err)
		}
		baseline[c] = shardFingerprint(res)
	}
	if len(hot) > 0 {
		_, r, err := runShardLeg(e, 4, hot, perClient, baseline)
		if err != nil {
			return nil, fmt.Errorf("bench: shardscale hot: %w", err)
		}
		before, err := driveRouter(r, hot, perClient, baseline)
		if err != nil {
			return nil, fmt.Errorf("bench: shardscale hot rerun: %w", err)
		}
		if _, err := r.PromoteHot(1); err != nil {
			return nil, fmt.Errorf("bench: shardscale promote: %w", err)
		}
		after, err := driveRouter(r, hot, perClient, baseline)
		if err != nil {
			return nil, fmt.Errorf("bench: shardscale replicated: %w", err)
		}
		if !before.Identical || !after.Identical {
			return nil, fmt.Errorf("bench: shardscale replica leg diverged from baseline")
		}
		if before.ThroughputQPS > 0 {
			out.ReplicaSpeedup = after.ThroughputQPS / before.ThroughputQPS
		}
	}
	return out, nil
}

// hotWorkload returns the cells of shard 0's range under an n-shard
// partition — the skewed workload that makes one shard hot.
func hotWorkload(e *Env, shards int) []cells.CellID {
	m, err := shard.NewMap(e.Tree.Grid.NumCells(), shards)
	if err != nil {
		return nil
	}
	lo, hi := m.Range(0)
	out := make([]cells.CellID, 0, hi-lo)
	for c := lo; c < hi; c++ {
		out = append(out, c)
	}
	return out
}

// CompareShardScale checks a fresh run against the committed reference.
// Two gates are absolute — every leg byte-identical, and ≥3x aggregate
// throughput at 8 shards — and the rest are relative drift bounds.
func CompareShardScale(ref, cur *ShardScale, tol float64) []string {
	var bad []string
	if ref.Workload != cur.Workload {
		return []string{fmt.Sprintf("workload mismatch: reference %q vs current %q (regenerate the reference)",
			ref.Workload, cur.Workload)}
	}
	for _, leg := range cur.Legs {
		if !leg.Identical {
			bad = append(bad, fmt.Sprintf("%d shards: routed answers diverged from the unsharded baseline", leg.Shards))
		}
	}
	if cur.SpeedupAt8 < 3.0 {
		bad = append(bad, fmt.Sprintf("8-shard speedup %.2fx, gate 3.00x", cur.SpeedupAt8))
	}
	if ref.SpeedupAt8 > 0 && cur.SpeedupAt8 < ref.SpeedupAt8*(1-tol) {
		bad = append(bad, fmt.Sprintf("8-shard speedup %.2fx, reference %.2fx (tolerance %.0f%%)",
			cur.SpeedupAt8, ref.SpeedupAt8, 100*tol))
	}
	if ref.ReplicaSpeedup > 0 && cur.ReplicaSpeedup < ref.ReplicaSpeedup*(1-tol) {
		bad = append(bad, fmt.Sprintf("replica speedup %.2fx, reference %.2fx (tolerance %.0f%%)",
			cur.ReplicaSpeedup, ref.ReplicaSpeedup, 100*tol))
	}
	for i, want := range ref.Legs {
		if i >= len(cur.Legs) {
			bad = append(bad, fmt.Sprintf("%d shards: missing from current run", want.Shards))
			continue
		}
		got := cur.Legs[i]
		if got.ThroughputQPS < want.ThroughputQPS*(1-tol) {
			bad = append(bad, fmt.Sprintf(
				"%d shards: simulated throughput %.0f q/s, reference %.0f q/s (-%.0f%%, tolerance %.0f%%)",
				got.Shards, got.ThroughputQPS, want.ThroughputQPS,
				100*(1-got.ThroughputQPS/want.ThroughputQPS), 100*tol))
		}
	}
	return bad
}

// LoadShardScale reads a committed reference file.
func LoadShardScale(path string) (*ShardScale, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s ShardScale
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &s, nil
}

// WriteShardScale writes s to path in the committed format.
func WriteShardScale(path string, s *ShardScale) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// RunShardScale is the "shardscale" experiment: the shard-count sweep
// under the fixed 8-client harness, reporting busiest-spindle simulated
// throughput, scaling, and answer fidelity, plus the hot-range replica
// gain.
func RunShardScale(w io.Writer, p Params) error {
	s, err := CollectShardScale(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d clients round-robin over 32 cells, indexed-vertical, uncached; throughput = queries / busiest-spindle simulated time\n\n", s.Clients)
	fmt.Fprintf(w, "%-8s %-9s %-16s %-16s %-10s %s\n",
		"shards", "queries", "busiest (ms)", "throughput", "speedup", "identical")
	base := 0.0
	for _, leg := range s.Legs {
		if base == 0 {
			base = leg.ThroughputQPS
		}
		speedup := 0.0
		if base > 0 {
			speedup = leg.ThroughputQPS / base
		}
		fmt.Fprintf(w, "%-8d %-9d %-16.1f %-16s %-10s %v\n",
			leg.Shards, leg.Queries, leg.MaxShardSimMicros/1e3,
			fmt.Sprintf("%.0f q/s", leg.ThroughputQPS),
			fmt.Sprintf("%.2fx", speedup), leg.Identical)
	}
	fmt.Fprintf(w, "\nhot-range replica: skewed workload on one shard, %.2fx after PromoteHot (two arms serve the hot range)\n",
		s.ReplicaSpeedup)
	if s.SpeedupAt8 < 3.0 {
		fmt.Fprintf(w, "WARNING: 8-shard speedup %.2fx below the 3x gate\n", s.SpeedupAt8)
	}
	return nil
}
