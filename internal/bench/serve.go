package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cells"
	"repro/internal/core"
)

// The serve experiment measures the concurrent-serving regime the paper's
// single-walker prototype never faces: N clients, each with its own
// session on one open tree, hammering a shared working set through the
// shared buffer pool. Aggregate wall-clock throughput should scale with
// clients once the working set is pool-resident, because pool hits charge
// no simulated seek/transfer and take no exclusive disk-wide lock.

// ServeConfig sizes one multi-client serving run.
type ServeConfig struct {
	// Clients is the number of concurrent sessions.
	Clients int
	// PerClient is the query count each client issues.
	PerClient int
	// CachePages sizes the shared buffer pool (0 = no pool).
	CachePages int
	// Cells bounds the shared working set (distinct viewing cells).
	Cells int
	// Eta is the DoV threshold.
	Eta float64
	// Think is each client's pause between queries — the frame-render
	// interval of a closed-loop walkthrough client (§5.4's players query
	// once per frame and render in between). It is what makes serving a
	// concurrency problem: one client leaves the engine idle during every
	// render, so adding clients raises aggregate throughput until the
	// engine saturates.
	Think time.Duration
}

// DefaultServeConfig returns the standard serving workload for p.
func DefaultServeConfig(p Params) ServeConfig {
	perClient := p.ScalQueries
	if perClient > 200 {
		perClient = 200
	}
	return ServeConfig{
		Clients:    8,
		PerClient:  perClient,
		CachePages: 1 << 16,
		Cells:      32,
		Eta:        0.001,
		Think:      10 * time.Millisecond,
	}
}

// ServeResult is the outcome of one serving run.
type ServeResult struct {
	Clients    int
	Queries    int
	Elapsed    time.Duration
	Throughput float64 // queries per wall-clock second
	// SimTime is the summed simulated disk time charged across clients
	// (pool hits charge none, so a cached working set drives this to ~0).
	SimTime              time.Duration
	PoolHits, PoolMisses int64
}

// workingSet picks cfg.Cells distinct viewing cells spread evenly over
// the grid.
func workingSet(tree *core.Tree, n int) []cells.CellID {
	total := tree.Grid.NumCells()
	if n <= 0 || n > total {
		n = total
	}
	out := make([]cells.CellID, n)
	for i := range out {
		out[i] = cells.CellID(i * total / n)
	}
	return out
}

// RunServeClients runs one multi-client serving workload against the
// default dataset of p and reports aggregate throughput. The pool is
// warmed with one pass over the working set before timing starts, so the
// measured regime is the cached one; the pool is removed again before
// returning (other experiments expect the paper's uncached accounting).
func RunServeClients(p Params, cfg ServeConfig) (ServeResult, error) {
	e := DefaultEnv(p)
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.PerClient < 1 {
		cfg.PerClient = 1
	}
	if cfg.Eta <= 0 {
		cfg.Eta = 0.001
	}
	ws := workingSet(e.Tree, cfg.Cells)

	e.Disk.SetCacheSize(cfg.CachePages)
	defer e.Disk.SetCacheSize(0)

	// Warm-up pass: fault in the working set once so the timed run
	// measures cached serving, not cold misses.
	warm := e.Tree.Session()
	for _, c := range ws {
		if _, err := warm.Query(c, cfg.Eta); err != nil {
			return ServeResult{}, err
		}
	}

	type clientOut struct {
		sim time.Duration
		err error
	}
	outs := make([]clientOut, cfg.Clients)
	start := time.Now()
	done := make(chan int, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		go func(i int) {
			defer func() { done <- i }()
			s := e.Tree.Session()
			for q := 0; q < cfg.PerClient; q++ {
				// Each client walks the shared ring from its own offset.
				c := ws[(i+q)%len(ws)]
				if _, err := s.Query(c, cfg.Eta); err != nil {
					outs[i].err = err
					return
				}
				if cfg.Think > 0 && q+1 < cfg.PerClient {
					time.Sleep(cfg.Think)
				}
			}
			outs[i].sim = s.IO.Stats().SimTime
		}(i)
	}
	for i := 0; i < cfg.Clients; i++ {
		<-done
	}
	elapsed := time.Since(start)

	res := ServeResult{
		Clients: cfg.Clients,
		Queries: cfg.Clients * cfg.PerClient,
		Elapsed: elapsed,
	}
	for _, o := range outs {
		if o.err != nil {
			return ServeResult{}, o.err
		}
		res.SimTime += o.sim
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Queries) / elapsed.Seconds()
	}
	ps := e.Disk.PoolStats()
	res.PoolHits = ps.Hits()
	res.PoolMisses = ps.Misses()
	return res, nil
}

// RunServe is the "serve" experiment: the client-count sweep, reporting
// aggregate throughput and pool behavior at each width.
func RunServe(w io.Writer, p Params) error {
	cfg := DefaultServeConfig(p)
	fmt.Fprintf(w, "multi-client serving, %d queries/client over %d cached cells (pool %d pages, %v render interval)\n",
		cfg.PerClient, cfg.Cells, cfg.CachePages, cfg.Think)
	fmt.Fprintf(w, "%-8s %-9s %-11s %-14s %-10s %s\n",
		"clients", "queries", "elapsed", "throughput", "speedup", "pool hit rate")
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		c := cfg
		c.Clients = n
		r, err := RunServeClients(p, c)
		if err != nil {
			return err
		}
		if n == 1 {
			base = r.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = r.Throughput / base
		}
		hitRate := 0.0
		if r.PoolHits+r.PoolMisses > 0 {
			hitRate = float64(r.PoolHits) / float64(r.PoolHits+r.PoolMisses)
		}
		fmt.Fprintf(w, "%-8d %-9d %-11v %-10.0f q/s %-10.2fx %.1f%%\n",
			r.Clients, r.Queries, r.Elapsed.Round(time.Millisecond),
			r.Throughput, speedup, 100*hitRate)
	}
	return nil
}

// queryCost is the simulated per-query cost of one scheme on the standard
// uncached workload — the deterministic quantity the regression guard
// tracks (wall-clock throughput depends on the host; simulated cost does
// not).
func queryCost(e *Env, store core.VStore, ws []cells.CellID, queries int, eta float64) (simMicros, lightIO float64, err error) {
	e.Tree.SetVStore(store)
	defer e.Tree.SetVStore(e.IV)
	s := e.Tree.Session()
	before := s.IO.Stats()
	for q := 0; q < queries; q++ {
		if _, err := s.Query(ws[q%len(ws)], eta); err != nil {
			return 0, 0, err
		}
	}
	d := s.IO.Stats().Sub(before)
	n := float64(queries)
	return float64(d.SimTime.Microseconds()) / n, float64(d.LightReads) / n, nil
}
