// Package bench is the experiment harness: it rebuilds every table and
// figure of the paper's evaluation (§5) on the simulated substrate and
// prints the same rows/series the paper reports. Each experiment is
// addressable by its paper label (table2, fig7, ... table3) from both the
// hdovbench command and the root-level Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/naive"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/visibility"
	"repro/internal/vstore"
)

// Params scales the experiments. Defaults reproduce the paper's shapes at
// laptop cost; Quick shrinks everything for smoke tests.
type Params struct {
	// CityBlocks is the default dataset's city size (blocks per side).
	CityBlocks int
	// GridCells is the viewing-cell grid resolution per side.
	GridCells int
	// Dirs is the DoV ray count per sample viewpoint.
	Dirs int
	// Samples is the per-axis region-DoV sample density.
	Samples int
	// NominalBytes is the default dataset's raw size (Table 2, Figs 7-8).
	NominalBytes int64
	// Queries is the visibility-query count for Figures 7 and 8 (the
	// paper uses 10 000).
	Queries int
	// ScalQueries is the query count for Figure 9 (the paper uses 1000).
	ScalQueries int
	// Frames is the walkthrough session length for Figures 10/12, Table 3.
	Frames int
	// Etas is the threshold sweep of Figures 7/8.
	Etas []float64
	Seed int64
	// ImageDir, when non-empty, makes Figure 11 also write PGM renderings
	// of the three systems' answer sets (the artifact form of the paper's
	// screenshots).
	ImageDir string
}

// Default returns the full-scale parameter set.
func Default() Params {
	return Params{
		CityBlocks: 8,
		GridCells:  24,
		// 4096 rays resolve DoV down to 2.4e-4, enough to separate the
		// paper's eta=0.0003 and eta=0.001 operating points (its GPU item
		// buffers resolved ~1e-6; below 2e-4 our rows tie, like the
		// paper's own near-identical rows at eta <= 1e-4).
		Dirs:         4096,
		Samples:      1,
		NominalBytes: 400 << 20,
		Queries:      10000,
		ScalQueries:  1000,
		Frames:       1200,
		Etas:         []float64{0, 0.0005, 0.001, 0.002, 0.004, 0.008},
		Seed:         1,
	}
}

// Quick returns a smoke-test parameter set (seconds, not minutes).
func Quick() Params {
	return Params{
		CityBlocks:   3,
		GridCells:    8,
		Dirs:         256,
		Samples:      1,
		NominalBytes: 64 << 20,
		Queries:      500,
		ScalQueries:  200,
		Frames:       300,
		Etas:         []float64{0, 0.001, 0.004, 0.008},
		Seed:         1,
	}
}

// Env is one fully built database under test.
type Env struct {
	Scene  *scene.Scene
	Disk   *storage.Disk
	Tree   *core.Tree
	Vis    *core.VisData
	H      *vstore.Horizontal
	V      *vstore.Vertical
	IV     *vstore.IndexedVertical
	Naive  *naive.Store
	Engine *visibility.Engine
}

type envKey struct {
	blocks    int
	cells     int
	dirs      int
	samples   int
	nominal   int64
	seed      int64
	buildings int
	blobs     int
}

var (
	envMu    sync.Mutex
	envCache = map[envKey]*Env{}
)

// BuildEnv constructs (or returns the cached) environment for the given
// dataset scale. blocks/nominal vary for the Figure 9 dataset series;
// everything else comes from p.
func BuildEnv(p Params, blocks int, gridCells int, nominal int64) *Env {
	key := envKey{
		blocks: blocks, cells: gridCells, dirs: p.Dirs, samples: p.Samples,
		nominal: nominal, seed: p.Seed, buildings: 8, blobs: 4,
	}
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[key]; ok {
		return e
	}
	e := buildEnvOn(p, blocks, gridCells, nominal,
		storage.NewDisk(0, storage.DefaultCostModel()))
	envCache[key] = e
	return e
}

// buildEnvOn builds the dataset of the given scale onto a caller-supplied
// disk. The hardware-calibration experiment uses it to build on the real
// file backend under a fitted cost model; results are never cached, so
// the caller owns the disk's lifetime.
func buildEnvOn(p Params, blocks int, gridCells int, nominal int64, d *storage.Disk) *Env {
	cp := scene.DefaultCityParams()
	cp.Seed = p.Seed
	cp.BlocksX, cp.BlocksY = blocks, blocks
	cp.BlobDetail = 10
	cp.NominalBytes = nominal
	sc := scene.Generate(cp)

	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, gridCells, gridCells)
	bp.DirsPerViewpoint = p.Dirs
	bp.SamplesPerCell = p.Samples
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		panic("bench: " + err.Error())
	}
	h, err := vstore.BuildHorizontal(d, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	v, err := vstore.BuildVertical(d, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	iv, err := vstore.BuildIndexedVertical(d, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	nv, err := naive.Build(tr, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	tr.SetVStore(iv)
	return &Env{
		Scene: sc, Disk: d, Tree: tr, Vis: vis,
		H: h, V: v, IV: iv, Naive: nv,
		Engine: visibility.NewEngine(sc, p.Dirs),
	}
}

// DefaultEnv builds the default dataset of p.
func DefaultEnv(p Params) *Env {
	return BuildEnv(p, p.CityBlocks, p.GridCells, p.NominalBytes)
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string // paper label: "table2", "fig7", ...
	Title string
	Run   func(w io.Writer, p Params) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table 2: storage space required by the schemes", Run: RunTable2},
		{ID: "fig7", Title: "Figure 7: search time with different eta values", Run: RunFig7},
		{ID: "fig8a", Title: "Figure 8(a): total disk I/Os vs eta", Run: RunFig8a},
		{ID: "fig8b", Title: "Figure 8(b): light-weight I/O cost vs eta", Run: RunFig8b},
		{ID: "fig9", Title: "Figure 9: scalability over dataset sizes", Run: RunFig9},
		{ID: "fig10a", Title: "Figure 10(a): frame time, VISUAL vs REVIEW", Run: RunFig10a},
		{ID: "fig10b", Title: "Figure 10(b): frame time, eta=0.001 vs eta=0.0003", Run: RunFig10b},
		{ID: "fig11", Title: "Figure 11: visual fidelity comparison", Run: RunFig11},
		{ID: "fig12", Title: "Figure 12: search performance across sessions", Run: RunFig12},
		{ID: "table3", Title: "Table 3: frame time and variance vs eta", Run: RunTable3},
		{ID: "ablation", Title: "Ablations: D1-D8 design-choice studies", Run: RunAblations},
		{ID: "museum", Title: "Extension: indoor extreme-occlusion regime (hidden-object waste)", Run: RunMuseum},
		{ID: "serve", Title: "Extension: multi-client serving throughput with the shared buffer pool", Run: RunServe},
		{ID: "walkcoherence", Title: "Extension: frame-coherent traversal with predictive V-page prefetching", Run: RunWalkCoherence},
		{ID: "vpagecodec", Title: "Extension: compressed V-page layout, bytes and light-I/O cost vs raw", Run: RunVPageCodec},
		{ID: "overload", Title: "Extension: overload resilience — admission, shedding, breaker, cancellation", Run: RunOverload},
		{ID: "dynupdate", Title: "Extension: incremental updates — locality, LoD reuse, write cost vs rebuild", Run: RunDynUpdate},
		{ID: "shardscale", Title: "Extension: sharded stores — scatter-gather routing, near-linear scaling, hot-range replicas", Run: RunShardScale},
		{ID: "hwcalib", Title: "Extension: hardware in the loop — file-backend calibration, fitted cost model, sim vs measured", Run: RunHWCalib},
		{ID: "summary", Title: "Conformance digest: every headline shape claim, PASS/FAIL", Run: RunSummary},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// mb formats bytes as MB with the paper's precision.
func mb(b int64) string {
	return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
}
