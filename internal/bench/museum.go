package bench

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/naive"
	"repro/internal/review"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/visibility"
	"repro/internal/vstore"
	"repro/internal/walkthrough"
)

var (
	museumMu  sync.Mutex
	museumEnv *Env
)

// buildMuseumEnv constructs (once) the indoor environment for the museum
// experiment.
func buildMuseumEnv(p Params) *Env {
	museumMu.Lock()
	defer museumMu.Unlock()
	if museumEnv != nil {
		return museumEnv
	}
	mp := scene.DefaultMuseumParams()
	mp.Seed = p.Seed
	mp.NominalBytes = p.NominalBytes / 2
	sc := scene.GenerateMuseum(mp)

	d := storage.NewDisk(0, storage.DefaultCostModel())
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, p.GridCells/2, p.GridCells/2)
	bp.DirsPerViewpoint = p.Dirs
	bp.SamplesPerCell = p.Samples
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		panic("bench: " + err.Error())
	}
	h, err := vstore.BuildHorizontal(d, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	v, err := vstore.BuildVertical(d, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	iv, err := vstore.BuildIndexedVertical(d, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	nv, err := naive.Build(tr, vis, 0)
	if err != nil {
		panic("bench: " + err.Error())
	}
	tr.SetVStore(iv)
	museumEnv = &Env{
		Scene: sc, Disk: d, Tree: tr, Vis: vis,
		H: h, V: v, IV: iv, Naive: nv,
		Engine: visibility.NewEngine(sc, p.Dirs),
	}
	return museumEnv
}

// RunMuseum is an extension experiment: the paper's two spatial-method
// failure modes ("it may miss some visible objects ... it may waste I/O
// and memory resources by retrieving objects that are hidden", §2) in the
// regime where they are sharpest — an indoor gallery. It quantifies the
// hidden-object waste per query and runs the walkthrough comparison.
func RunMuseum(w io.Writer, p Params) error {
	e := buildMuseumEnv(p)
	fmt.Fprintf(w, "museum: %d objects, %d nodes, %d cells; avg N_vnode %.1f of %d\n\n",
		len(e.Scene.Objects), e.Tree.NumNodes(), e.Tree.Grid.NumCells(),
		e.Vis.AvgVisibleNodes(), e.Tree.NumNodes())

	// Per-query waste: objects REVIEW retrieves that have zero region DoV
	// (hidden from the whole cell), vs the HDoV answer.
	sys := review.New(e.Tree, func() review.Config {
		cfg := review.DefaultConfig()
		cfg.QueryBoxDepth = 60
		return cfg
	}())
	var hdovItems, revItems, revHidden, visibleSet float64
	n := 0
	for c := 0; c < e.Tree.Grid.NumCells(); c += 3 {
		cell := cells.CellID(c)
		eye := e.Tree.Grid.SamplePoints(cell, 1)[0]
		visible := make(map[int64]bool)
		perNode := e.Vis.PerCell[cell]
		for id, vd := range perNode {
			if vd == nil || !e.Tree.Nodes[id].Leaf {
				continue
			}
			for ei, v := range vd {
				if v.DoV > 0 {
					visible[e.Tree.Nodes[id].Entries[ei].ObjectID] = true
				}
			}
		}
		hres, err := e.Tree.Query(cell, 0.001)
		if err != nil {
			return err
		}
		rres, err := sys.Query(eye, pickLook(c))
		if err != nil {
			return err
		}
		hidden := 0
		for _, it := range rres.Items {
			if !visible[it.ObjectID] {
				hidden++
			}
		}
		hdovItems += float64(len(hres.Items))
		revItems += float64(len(rres.Items))
		revHidden += float64(hidden)
		visibleSet += float64(len(visible))
		n++
	}
	fn := float64(n)
	fmt.Fprintf(w, "per-cell averages over %d cells (REVIEW boxes 60m):\n", n)
	fmt.Fprintf(w, "  truly visible objects:        %6.1f\n", visibleSet/fn)
	fmt.Fprintf(w, "  HDoV answer items:            %6.1f\n", hdovItems/fn)
	fmt.Fprintf(w, "  REVIEW retrieved objects:     %6.1f\n", revItems/fn)
	fmt.Fprintf(w, "  ...of which completely hidden:%6.1f (%.0f%% of its retrieval)\n\n",
		revHidden/fn, 100*revHidden/revItems)

	// Walkthrough through the galleries.
	s := walkthrough.RecordNormal(e.Scene, p.Frames/2, p.Seed)
	vres, err := visualPlayer(e, 0.001).Play(s)
	if err != nil {
		return err
	}
	rp := reviewPlayer(e, 60)
	rres, err := rp.Play(s)
	if err != nil {
		return err
	}
	printTraceSummary(w, vres, rres)
	return nil
}

// pickLook varies gaze deterministically across cells.
func pickLook(c int) geom.Vec3 {
	switch c % 4 {
	case 0:
		return geom.V(1, 0, 0)
	case 1:
		return geom.V(-1, 0, 0)
	case 2:
		return geom.V(0, 1, 0)
	default:
		return geom.V(0, -1, 0)
	}
}
