package mesh

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestExportOBJ(t *testing.T) {
	a := NewBox(geom.BoxAt(geom.V(0, 0, 0), 1))
	b := NewSphere(geom.V(10, 0, 0), 2, 4, 8)
	var buf bytes.Buffer
	err := ExportOBJ(&buf, "test export", []OBJGroup{
		{Name: "box", Mesh: a},
		{Name: "skipped", Mesh: nil},
		{Name: "sphere", Mesh: b},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "# test export\n") {
		t.Fatal("comment missing")
	}
	var vCount, fCount, gCount int
	maxIdx := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, "v "):
			vCount++
			if len(strings.Fields(line)) != 4 {
				t.Fatalf("bad vertex line %q", line)
			}
		case strings.HasPrefix(line, "f "):
			fCount++
			for _, fld := range strings.Fields(line)[1:] {
				idx, err := strconv.Atoi(fld)
				if err != nil {
					t.Fatalf("bad face index in %q", line)
				}
				if idx < 1 {
					t.Fatalf("OBJ indices are 1-based, got %d", idx)
				}
				if idx > maxIdx {
					maxIdx = idx
				}
			}
		case strings.HasPrefix(line, "g "):
			gCount++
		}
	}
	if vCount != a.NumVerts()+b.NumVerts() {
		t.Fatalf("v lines = %d, want %d", vCount, a.NumVerts()+b.NumVerts())
	}
	if fCount != a.NumTriangles()+b.NumTriangles() {
		t.Fatalf("f lines = %d, want %d", fCount, a.NumTriangles()+b.NumTriangles())
	}
	if gCount != 2 {
		t.Fatalf("g lines = %d (nil group must be skipped)", gCount)
	}
	// Face indices must reference existing vertices only.
	if maxIdx > vCount {
		t.Fatalf("face index %d exceeds %d vertices", maxIdx, vCount)
	}
}

func TestExportOBJRejectsInvalid(t *testing.T) {
	bad := &Mesh{Verts: []geom.Vec3{{}}, Tris: []uint32{0, 0, 7}}
	var buf bytes.Buffer
	if err := ExportOBJ(&buf, "", []OBJGroup{{Name: "bad", Mesh: bad}}); err == nil {
		t.Fatal("invalid mesh exported")
	}
}

func TestExportOBJNoComment(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportOBJ(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty export wrote %q", buf.String())
	}
}
