package mesh

import (
	"errors"
	"fmt"
)

// LoDChain is a multi-resolution representation of one object or one
// internal-node aggregate: Levels[0] is the finest (highest-detail) mesh
// and each subsequent level is coarser. The paper's traversal selects a
// continuous detail value in [0, 1] (equations 5 and 6) which LevelFor maps
// onto the discrete chain.
type LoDChain struct {
	Levels []*Mesh
}

// NumLevels returns the number of discrete levels in the chain.
func (c *LoDChain) NumLevels() int { return len(c.Levels) }

// Finest returns the highest-detail mesh.
func (c *LoDChain) Finest() *Mesh { return c.Levels[0] }

// Coarsest returns the lowest-detail mesh.
func (c *LoDChain) Coarsest() *Mesh { return c.Levels[len(c.Levels)-1] }

// LevelFor maps a continuous detail value k in [0, 1] — 1 meaning full
// detail, 0 meaning coarsest — to a level index. The mapping is linear in
// level index, matching the linear interpolation of equations 5 and 6:
// k = 1 yields level 0, k = 0 yields the last level.
func (c *LoDChain) LevelFor(k float64) int {
	if len(c.Levels) == 0 {
		return 0
	}
	if k >= 1 {
		return 0
	}
	if k <= 0 {
		return len(c.Levels) - 1
	}
	idx := int((1 - k) * float64(len(c.Levels)))
	if idx >= len(c.Levels) {
		idx = len(c.Levels) - 1
	}
	return idx
}

// PolygonsFor returns the interpolated polygon count for a continuous
// detail value k in [0, 1]. The render cost model uses the continuous
// value so that frame-time curves vary smoothly with the DoV threshold η,
// as in the paper's Table 3.
func (c *LoDChain) PolygonsFor(k float64) float64 {
	if len(c.Levels) == 0 {
		return 0
	}
	hi := float64(c.Finest().NumTriangles())
	lo := float64(c.Coarsest().NumTriangles())
	if k >= 1 {
		return hi
	}
	if k <= 0 {
		return lo
	}
	return k*hi + (1-k)*lo
}

// TotalEncodedSize returns the byte size of all levels, the on-disk payload
// footprint of the chain.
func (c *LoDChain) TotalEncodedSize() int {
	var n int
	for _, m := range c.Levels {
		n += m.EncodedSize()
	}
	return n
}

// Validate checks that the chain is non-empty, every level is valid, and
// detail is non-increasing with level index.
func (c *LoDChain) Validate() error {
	if len(c.Levels) == 0 {
		return errors.New("lod: empty chain")
	}
	prev := -1
	for i, m := range c.Levels {
		if m == nil {
			return fmt.Errorf("lod: level %d is nil", i)
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("lod: level %d: %w", i, err)
		}
		if prev >= 0 && m.NumTriangles() > prev {
			return fmt.Errorf("lod: level %d has %d triangles, finer than level %d's %d",
				i, m.NumTriangles(), i-1, prev)
		}
		prev = m.NumTriangles()
	}
	return nil
}
