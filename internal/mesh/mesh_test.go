package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestBoxMesh(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(2, 3, 4))
	m := NewBox(b)
	if m.NumTriangles() != 12 {
		t.Fatalf("box has %d triangles", m.NumTriangles())
	}
	if m.NumVerts() != 8 {
		t.Fatalf("box has %d verts", m.NumVerts())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Bounds(); got != b {
		t.Fatalf("bounds = %v, want %v", got, b)
	}
	want := b.SurfaceArea()
	if got := m.SurfaceArea(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("area = %v, want %v", got, want)
	}
}

func TestMeshTriangleAccess(t *testing.T) {
	m := &Mesh{
		Verts: []geom.Vec3{{X: 0}, {X: 1}, {Y: 1}},
		Tris:  []uint32{0, 1, 2},
	}
	a, b, c := m.Triangle(0)
	if a.X != 0 || b.X != 1 || c.Y != 1 {
		t.Fatal("triangle access wrong")
	}
}

func TestMeshCloneIndependence(t *testing.T) {
	m := NewBox(geom.BoxAt(geom.V(0, 0, 0), 1))
	c := m.Clone()
	c.Verts[0] = geom.V(99, 99, 99)
	c.Tris[0] = 7
	if m.Verts[0] == c.Verts[0] || m.Tris[0] == c.Tris[0] {
		t.Fatal("clone shares storage")
	}
}

func TestMeshTranslateScale(t *testing.T) {
	m := NewBox(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)))
	m.Translate(geom.V(10, 0, 0))
	if got := m.Bounds(); got != geom.Box(geom.V(10, 0, 0), geom.V(11, 1, 1)) {
		t.Fatalf("translated bounds = %v", got)
	}
	m2 := NewBox(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)))
	m2.Scale(geom.V(2, 3, 4))
	if got := m2.Bounds(); got != geom.Box(geom.V(0, 0, 0), geom.V(2, 3, 4)) {
		t.Fatalf("scaled bounds = %v", got)
	}
}

func TestMeshValidateErrors(t *testing.T) {
	bad1 := &Mesh{Verts: []geom.Vec3{{}}, Tris: []uint32{0, 0}}
	if bad1.Validate() == nil {
		t.Fatal("arity error not caught")
	}
	bad2 := &Mesh{Verts: []geom.Vec3{{}}, Tris: []uint32{0, 0, 5}}
	if bad2.Validate() == nil {
		t.Fatal("range error not caught")
	}
	bad3 := &Mesh{Verts: []geom.Vec3{{X: math.NaN()}}, Tris: []uint32{0, 0, 0}}
	if bad3.Validate() == nil {
		t.Fatal("NaN vertex not caught")
	}
}

func TestMerge(t *testing.T) {
	a := NewBox(geom.BoxAt(geom.V(0, 0, 0), 1))
	b := NewBox(geom.BoxAt(geom.V(10, 0, 0), 1))
	m := Merge(a, nil, b)
	if m.NumTriangles() != 24 {
		t.Fatalf("merged triangles = %d", m.NumTriangles())
	}
	if m.NumVerts() != 16 {
		t.Fatalf("merged verts = %d", m.NumVerts())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	want := a.Bounds().Union(b.Bounds())
	if got := m.Bounds(); got != want {
		t.Fatalf("merged bounds = %v, want %v", got, want)
	}
	// Merging nothing yields an empty, valid-arity mesh.
	if e := Merge(); e.NumTriangles() != 0 || e.NumVerts() != 0 {
		t.Fatal("empty merge not empty")
	}
}

func TestRemoveUnusedVerts(t *testing.T) {
	m := &Mesh{
		Verts: []geom.Vec3{{X: 0}, {X: 1}, {X: 2}, {X: 3}, {X: 4}},
		Tris:  []uint32{0, 2, 4},
	}
	m.RemoveUnusedVerts()
	if m.NumVerts() != 3 {
		t.Fatalf("verts = %d", m.NumVerts())
	}
	a, b, c := m.Triangle(0)
	if a.X != 0 || b.X != 2 || c.X != 4 {
		t.Fatalf("remap wrong: %v %v %v", a, b, c)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := NewBlob(geom.V(1, 2, 3), 2.5, 8, 42)
	buf := m.Encode()
	if len(buf) != m.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), m.EncodedSize())
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVerts() != m.NumVerts() || got.NumTriangles() != m.NumTriangles() {
		t.Fatal("shape mismatch after round trip")
	}
	for i := range m.Verts {
		if m.Verts[i] != got.Verts[i] {
			t.Fatalf("vertex %d mismatch", i)
		}
	}
	for i := range m.Tris {
		if m.Tris[i] != got.Tris[i] {
			t.Fatalf("index %d mismatch", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	m := NewBox(geom.BoxAt(geom.V(0, 0, 0), 1))
	buf := m.Encode()

	if _, err := Decode(buf[:4]); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	badVer := append([]byte(nil), buf...)
	badVer[4] = 0xee
	if _, err := Decode(badVer); err == nil {
		t.Fatal("bad version accepted")
	}
	// Corrupt an index to go out of range.
	badIdx := append([]byte(nil), buf...)
	badIdx[len(badIdx)-1] = 0xff
	if _, err := Decode(badIdx); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestSphere(t *testing.T) {
	s := NewSphere(geom.V(0, 0, 0), 2, 8, 16)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All vertices on the sphere.
	for i, v := range s.Verts {
		if math.Abs(v.Len()-2) > 1e-9 {
			t.Fatalf("vertex %d at radius %v", i, v.Len())
		}
	}
	// Expected triangle count: 2*lon caps + 2*lon*(lat-2) bands.
	want := 2*16 + 2*16*(8-2)
	if got := s.NumTriangles(); got != want {
		t.Fatalf("triangles = %d, want %d", got, want)
	}
	// Area approaches 4*pi*r^2 from below.
	area := s.SurfaceArea()
	exact := 4 * math.Pi * 4
	if area > exact || area < 0.9*exact {
		t.Fatalf("area = %v, exact %v", area, exact)
	}
	// Degenerate params clamp.
	if NewSphere(geom.V(0, 0, 0), 1, 0, 0).NumTriangles() == 0 {
		t.Fatal("clamped sphere empty")
	}
}

func TestBlobDeterministic(t *testing.T) {
	a := NewBlob(geom.V(0, 0, 0), 1, 10, 7)
	b := NewBlob(geom.V(0, 0, 0), 1, 10, 7)
	if a.NumVerts() != b.NumVerts() {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Verts {
		if a.Verts[i] != b.Verts[i] {
			t.Fatal("same seed produced different vertices")
		}
	}
	c := NewBlob(geom.V(0, 0, 0), 1, 10, 8)
	same := true
	for i := range a.Verts {
		if i < len(c.Verts) && a.Verts[i] != c.Verts[i] {
			same = false
			break
		}
	}
	if same && a.NumVerts() == c.NumVerts() {
		t.Fatal("different seeds produced identical blobs")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := geom.Box(geom.V(0, 0, 0), geom.V(20, 30, 0))
	b := NewBuilding(base, 100, 3, 2, rng)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	bb := b.Bounds()
	if math.Abs(bb.Max.Z-100) > 1e-9 {
		t.Fatalf("building height %v, want 100", bb.Max.Z)
	}
	if bb.Min.X < -1e-9 || bb.Max.X > 20+1e-9 {
		t.Fatalf("building exceeds footprint: %v", bb)
	}
	// 3 tiers x 12 faces-triangles x facade² (2²=4) = 144.
	if b.NumTriangles() != 144 {
		t.Fatalf("3-tier facade-2 building has %d triangles, want 144", b.NumTriangles())
	}
	// Degenerate tiers clamp to 1.
	one := NewBuilding(base, 50, 0, 1, rand.New(rand.NewSource(2)))
	if one.NumTriangles() != 12 {
		t.Fatalf("1-tier building has %d triangles", one.NumTriangles())
	}
}

func TestTierBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 0))
	tiers := TierBoxes(base, 60, 3, rng)
	if len(tiers) != 3 {
		t.Fatalf("got %d tiers", len(tiers))
	}
	// Stacked: each tier starts where the previous ends; footprints shrink.
	for i := 1; i < len(tiers); i++ {
		if math.Abs(tiers[i].Min.Z-tiers[i-1].Max.Z) > 1e-9 {
			t.Fatalf("tier %d not stacked", i)
		}
		if tiers[i].Size().X >= tiers[i-1].Size().X {
			t.Fatalf("tier %d footprint did not shrink", i)
		}
	}
	if math.Abs(tiers[2].Max.Z-60) > 1e-9 {
		t.Fatalf("top at %v, want 60", tiers[2].Max.Z)
	}
}

func TestTessellatedBox(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(2, 3, 4))
	m := NewTessellatedBox(b, 3)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() != 12*9 {
		t.Fatalf("triangles = %d, want %d", m.NumTriangles(), 12*9)
	}
	if got := m.Bounds(); got != b {
		t.Fatalf("bounds = %v", got)
	}
	if math.Abs(m.SurfaceArea()-b.SurfaceArea()) > 1e-9 {
		t.Fatalf("area = %v, want %v", m.SurfaceArea(), b.SurfaceArea())
	}
	// n clamps to 1.
	if NewTessellatedBox(b, 0).NumTriangles() != 12 {
		t.Fatal("n=0 should clamp to plain box")
	}
}

func TestGroundPlane(t *testing.T) {
	g := NewGroundPlane(geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 0)), 0)
	if g.NumTriangles() != 2 {
		t.Fatalf("ground = %d triangles", g.NumTriangles())
	}
	if math.Abs(g.SurfaceArea()-100) > 1e-9 {
		t.Fatalf("ground area = %v", g.SurfaceArea())
	}
}

func TestPropEncodeDecodeAnyBlob(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		m := NewBlob(geom.V(0, 0, 0), 1+float64(seed%5), 4+int(seed%6), seed)
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return got.NumVerts() == m.NumVerts() && got.NumTriangles() == m.NumTriangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeBoundsIsUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewBox(geom.BoxAt(geom.V(r.Float64()*100, r.Float64()*100, 0), 1+r.Float64()*5))
		b := NewBox(geom.BoxAt(geom.V(r.Float64()*100, r.Float64()*100, 0), 1+r.Float64()*5))
		m := Merge(a, b)
		return m.Bounds() == a.Bounds().Union(b.Bounds())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
