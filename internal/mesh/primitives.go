package mesh

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// NewBox returns the 12-triangle mesh of box b. Building hulls in the
// synthetic city are boxes (possibly stacked; see NewBuilding), matching
// the paper's "synthetic city model containing numerous buildings".
func NewBox(b geom.AABB) *Mesh {
	m := &Mesh{Verts: make([]geom.Vec3, 8)}
	for i := 0; i < 8; i++ {
		m.Verts[i] = b.Corner(i)
	}
	// Corner index bit k selects min/max along axis k (see AABB.Corner).
	m.Tris = []uint32{
		0, 2, 1, 1, 2, 3, // z = min face
		4, 5, 6, 5, 7, 6, // z = max face
		0, 1, 4, 1, 5, 4, // y = min face
		2, 6, 3, 3, 6, 7, // y = max face
		0, 4, 2, 2, 4, 6, // x = min face
		1, 3, 5, 3, 7, 5, // x = max face
	}
	return m
}

// TierBoxes returns the stacked, footprint-shrinking boxes of a building:
// nTiers boxes over the given base footprint reaching the given total
// height. Deterministic for a given rng state. The boxes double as the
// building's occlusion proxy.
func TierBoxes(base geom.AABB, height float64, nTiers int, rng *rand.Rand) []geom.AABB {
	if nTiers < 1 {
		nTiers = 1
	}
	tiers := make([]geom.AABB, 0, nTiers)
	cur := base
	z0 := base.Min.Z
	for t := 0; t < nTiers; t++ {
		frac := float64(t+1) / float64(nTiers)
		z1 := z0 + height*(1.0/float64(nTiers))*(0.8+0.4*rng.Float64())
		if t == nTiers-1 {
			z1 = base.Min.Z + height
		}
		tiers = append(tiers, geom.Box(
			geom.V(cur.Min.X, cur.Min.Y, z0),
			geom.V(cur.Max.X, cur.Max.Y, z1),
		))
		// Shrink the footprint for the next tier.
		shrink := 0.05 + 0.15*rng.Float64()*frac
		s := cur.Size().Mul(shrink / 2)
		cur = geom.Box(
			geom.V(cur.Min.X+s.X, cur.Min.Y+s.Y, 0),
			geom.V(cur.Max.X-s.X, cur.Max.Y-s.Y, 0),
		)
		z0 = z1
	}
	return tiers
}

// NewTessellatedBox returns box b with each face subdivided into an n×n
// quad grid (12·n² triangles). Faces are independent sheets (unwelded),
// like the facade geometry of architectural models.
func NewTessellatedBox(b geom.AABB, n int) *Mesh {
	if n < 1 {
		n = 1
	}
	var parts []*Mesh
	size := b.Size()
	for axis := 0; axis < 3; axis++ {
		u := (axis + 1) % 3
		v := (axis + 2) % 3
		for _, side := range []float64{0, 1} {
			face := &Mesh{}
			fixed := b.Min.Axis(axis) + side*size.Axis(axis)
			for i := 0; i <= n; i++ {
				for j := 0; j <= n; j++ {
					p := geom.Vec3{}
					p = p.WithAxis(axis, fixed)
					p = p.WithAxis(u, b.Min.Axis(u)+size.Axis(u)*float64(i)/float64(n))
					p = p.WithAxis(v, b.Min.Axis(v)+size.Axis(v)*float64(j)/float64(n))
					face.Verts = append(face.Verts, p)
				}
			}
			at := func(i, j int) uint32 { return uint32(i*(n+1) + j) }
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a, bb, c, d := at(i, j), at(i+1, j), at(i, j+1), at(i+1, j+1)
					face.Tris = append(face.Tris, a, bb, c, bb, d, c)
				}
			}
			parts = append(parts, face)
		}
	}
	return Merge(parts...)
}

// NewBuilding returns a building mesh composed of nTiers stacked boxes of
// shrinking footprint, each with facades tessellated at the given level
// (12·facade² triangles per tier). Deterministic for a given rng state.
func NewBuilding(base geom.AABB, height float64, nTiers int, facade int, rng *rand.Rand) *Mesh {
	tiers := TierBoxes(base, height, nTiers, rng)
	parts := make([]*Mesh, len(tiers))
	for i, tb := range tiers {
		parts[i] = NewTessellatedBox(tb, facade)
	}
	return Merge(parts...)
}

// NewSphere returns a UV-sphere mesh with the given numbers of latitude
// and longitude segments. Triangle count is 2*lat*lon - 2*lon.
func NewSphere(center geom.Vec3, radius float64, lat, lon int) *Mesh {
	if lat < 2 {
		lat = 2
	}
	if lon < 3 {
		lon = 3
	}
	m := &Mesh{}
	// Vertices: poles plus (lat-1) rings of lon vertices.
	m.Verts = append(m.Verts, center.Add(geom.V(0, 0, radius)))  // north pole: 0
	m.Verts = append(m.Verts, center.Add(geom.V(0, 0, -radius))) // south pole: 1
	ringStart := func(r int) uint32 { return uint32(2 + r*lon) }
	for r := 1; r < lat; r++ {
		theta := math.Pi * float64(r) / float64(lat)
		for l := 0; l < lon; l++ {
			phi := 2 * math.Pi * float64(l) / float64(lon)
			m.Verts = append(m.Verts, center.Add(geom.SphericalDirection(theta, phi).Mul(radius)))
		}
	}
	// North cap.
	for l := 0; l < lon; l++ {
		next := (l + 1) % lon
		m.Tris = append(m.Tris, 0, ringStart(0)+uint32(l), ringStart(0)+uint32(next))
	}
	// Bands.
	for r := 0; r < lat-2; r++ {
		for l := 0; l < lon; l++ {
			next := (l + 1) % lon
			a := ringStart(r) + uint32(l)
			b := ringStart(r) + uint32(next)
			c := ringStart(r+1) + uint32(l)
			d := ringStart(r+1) + uint32(next)
			m.Tris = append(m.Tris, a, c, b, b, c, d)
		}
	}
	// South cap.
	last := lat - 2
	for l := 0; l < lon; l++ {
		next := (l + 1) % lon
		m.Tris = append(m.Tris, 1, ringStart(last)+uint32(next), ringStart(last)+uint32(l))
	}
	return m
}

// NewBlob returns a bunny-stand-in: a sphere deformed by a few smooth
// sinusoidal lobes, producing an organic high-polygon model. The paper's
// city is decorated with Stanford-bunny models; we cannot ship that data,
// so blobs supply equivalent high-detail clutter (see DESIGN.md §3.3).
// Triangle count grows with detail (lat=detail, lon=2*detail).
func NewBlob(center geom.Vec3, radius float64, detail int, seed int64) *Mesh {
	rng := rand.New(rand.NewSource(seed))
	// Random lobe directions and magnitudes.
	type lobe struct {
		dir geom.Vec3
		amp float64
		frq float64
	}
	lobes := make([]lobe, 4+rng.Intn(4))
	for i := range lobes {
		lobes[i] = lobe{
			dir: geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalize(),
			amp: 0.1 + 0.25*rng.Float64(),
			frq: 1 + 2*rng.Float64(),
		}
	}
	m := NewSphere(geom.V(0, 0, 0), 1, detail, 2*detail)
	for i, v := range m.Verts {
		d := v.Normalize()
		r := 1.0
		for _, lb := range lobes {
			r += lb.amp * math.Sin(lb.frq*math.Pi*d.Dot(lb.dir))
		}
		if r < 0.2 {
			r = 0.2
		}
		m.Verts[i] = center.Add(d.Mul(radius * r))
	}
	return m
}

// NewGroundPlane returns a two-triangle quad covering rect at height z.
func NewGroundPlane(rect geom.AABB, z float64) *Mesh {
	return &Mesh{
		Verts: []geom.Vec3{
			{X: rect.Min.X, Y: rect.Min.Y, Z: z},
			{X: rect.Max.X, Y: rect.Min.Y, Z: z},
			{X: rect.Min.X, Y: rect.Max.Y, Z: z},
			{X: rect.Max.X, Y: rect.Max.Y, Z: z},
		},
		Tris: []uint32{0, 1, 2, 1, 3, 2},
	}
}
