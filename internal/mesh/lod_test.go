package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func chain3() *LoDChain {
	// Hand-build a 3-level chain: 100, 24, 12 triangles.
	hi := &Mesh{}
	for i := 0; i < 100; i++ {
		base := uint32(len(hi.Verts))
		hi.Verts = append(hi.Verts, geom.V(float64(i), 0, 0), geom.V(float64(i), 1, 0), geom.V(float64(i), 0, 1))
		hi.Tris = append(hi.Tris, base, base+1, base+2)
	}
	mid := Merge(NewBox(geom.BoxAt(geom.V(0, 0, 0), 1)), NewBox(geom.BoxAt(geom.V(3, 0, 0), 1)))
	lo := NewBox(geom.BoxAt(geom.V(0, 0, 0), 2))
	return &LoDChain{Levels: []*Mesh{hi, mid, lo}}
}

func TestLoDChainBasics(t *testing.T) {
	c := chain3()
	if c.NumLevels() != 3 {
		t.Fatalf("levels = %d", c.NumLevels())
	}
	if c.Finest().NumTriangles() != 100 || c.Coarsest().NumTriangles() != 12 {
		t.Fatal("finest/coarsest wrong")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoDLevelFor(t *testing.T) {
	c := chain3()
	if c.LevelFor(1) != 0 || c.LevelFor(1.5) != 0 {
		t.Fatal("k>=1 should give finest")
	}
	if c.LevelFor(0) != 2 || c.LevelFor(-1) != 2 {
		t.Fatal("k<=0 should give coarsest")
	}
	if c.LevelFor(0.5) != 1 {
		t.Fatalf("k=0.5 gives level %d", c.LevelFor(0.5))
	}
	// Monotone: higher k never gives a coarser level.
	prev := c.NumLevels()
	for k := 0.0; k <= 1.0; k += 0.01 {
		l := c.LevelFor(k)
		if l > prev {
			t.Fatalf("LevelFor not monotone at k=%v", k)
		}
		prev = l
	}
}

func TestLoDPolygonsFor(t *testing.T) {
	c := chain3()
	if got := c.PolygonsFor(1); got != 100 {
		t.Fatalf("k=1 polys = %v", got)
	}
	if got := c.PolygonsFor(0); got != 12 {
		t.Fatalf("k=0 polys = %v", got)
	}
	if got := c.PolygonsFor(0.5); math.Abs(got-56) > 1e-9 {
		t.Fatalf("k=0.5 polys = %v", got)
	}
	if got := c.PolygonsFor(2); got != 100 {
		t.Fatalf("clamped high polys = %v", got)
	}
}

func TestLoDTotalEncodedSize(t *testing.T) {
	c := chain3()
	var want int
	for _, l := range c.Levels {
		want += l.EncodedSize()
	}
	if got := c.TotalEncodedSize(); got != want {
		t.Fatalf("total size = %d, want %d", got, want)
	}
}

func TestLoDValidateErrors(t *testing.T) {
	if (&LoDChain{}).Validate() == nil {
		t.Fatal("empty chain accepted")
	}
	if (&LoDChain{Levels: []*Mesh{nil}}).Validate() == nil {
		t.Fatal("nil level accepted")
	}
	// Increasing detail with level index is invalid.
	lo := NewBox(geom.BoxAt(geom.V(0, 0, 0), 1))
	hi := Merge(lo, lo)
	bad := &LoDChain{Levels: []*Mesh{lo, hi}}
	if bad.Validate() == nil {
		t.Fatal("detail-increasing chain accepted")
	}
}

func TestPropPolygonsForMonotone(t *testing.T) {
	c := chain3()
	f := func(k1, k2 float64) bool {
		k1 = math.Mod(math.Abs(k1), 1)
		k2 = math.Mod(math.Abs(k2), 1)
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		return c.PolygonsFor(k1) <= c.PolygonsFor(k2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
