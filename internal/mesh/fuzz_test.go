package mesh

import (
	"testing"

	"repro/internal/geom"
)

// FuzzDecode drives the mesh codec with arbitrary bytes: error or valid
// mesh, never a panic.
func FuzzDecode(f *testing.F) {
	f.Add(NewBox(geom.BoxAt(geom.V(0, 0, 0), 1)).Encode())
	f.Add(NewSphere(geom.V(0, 0, 0), 1, 4, 8).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err == nil {
			if m == nil {
				t.Fatal("nil mesh with nil error")
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("Decode returned invalid mesh: %v", err)
			}
		}
	})
}
