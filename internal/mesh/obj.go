package mesh

import (
	"bufio"
	"fmt"
	"io"
)

// OBJGroup is one named mesh in a Wavefront OBJ export.
type OBJGroup struct {
	Name string
	Mesh *Mesh
}

// ExportOBJ writes the groups as a Wavefront OBJ document — the
// lowest-common-denominator interchange format, so generated cities and
// query answer sets can be inspected in any 3D viewer. Vertex indices are
// rebased per group (OBJ indices are global and 1-based).
func ExportOBJ(w io.Writer, comment string, groups []OBJGroup) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", comment); err != nil {
			return err
		}
	}
	base := 1
	for _, g := range groups {
		m := g.Mesh
		if m == nil {
			continue
		}
		if err := m.Validate(); err != nil {
			return fmt.Errorf("mesh: obj export %q: %w", g.Name, err)
		}
		if _, err := fmt.Fprintf(bw, "g %s\n", g.Name); err != nil {
			return err
		}
		for _, v := range m.Verts {
			if _, err := fmt.Fprintf(bw, "v %g %g %g\n", v.X, v.Y, v.Z); err != nil {
				return err
			}
		}
		for i := 0; i < m.NumTriangles(); i++ {
			if _, err := fmt.Fprintf(bw, "f %d %d %d\n",
				base+int(m.Tris[3*i]), base+int(m.Tris[3*i+1]), base+int(m.Tris[3*i+2])); err != nil {
				return err
			}
		}
		base += m.NumVerts()
	}
	return bw.Flush()
}
