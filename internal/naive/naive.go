// Package naive implements the (cell, list-of-objects) baseline of §3/§5.3:
// each viewing cell is associated with the list of its visible objects, and
// a visibility query loads that list. Per the paper's implementation notes,
// "this scheme accesses the V-pages of visible leaf nodes only" and "all
// the models retrieved by the algorithm are from the object LoDs" — there
// are no internal nodes, no internal LoDs, and no early termination, so its
// cost is flat in η and the HDoV-tree degenerates to it at η = 0.
package naive

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// Store is the on-disk (cell, list-of-objects) structure.
type Store struct {
	tree *core.Tree
	disk *storage.Disk
	// segs[cell] locates the cell's run of leaf V-page records.
	segs       []seg
	vpageBytes int
	vpPages    int
	size       int64
}

type seg struct {
	start  storage.PageID
	vpages int32 // number of visible-leaf V-pages in the run
}

// recEntryBytes: i64 object ID + f64 DoV per record entry.
const recEntryBytes = 16

// Build lays out the naive store: for each cell, one fixed-size V-page per
// visible leaf node, stored consecutively, holding (objectID, DoV) pairs.
func Build(t *core.Tree, vis *core.VisData, vpageBytes int) (*Store, error) {
	if vpageBytes <= 0 {
		vpageBytes = t.Disk.PageSize()
	}
	s := &Store{
		tree:       t,
		disk:       t.Disk,
		segs:       make([]seg, vis.Grid.NumCells()),
		vpageBytes: vpageBytes,
		vpPages:    t.Disk.PagesFor(int64(vpageBytes)),
	}
	for cell := 0; cell < vis.Grid.NumCells(); cell++ {
		perNode := vis.PerCell[cells.CellID(cell)]
		// Collect visible leaf nodes in ID (DFS) order.
		var pages [][]byte
		for id, vd := range perNode {
			if vd == nil || !t.Nodes[id].Leaf {
				continue
			}
			node := t.Nodes[id]
			buf := make([]byte, 2, vpageBytes)
			n := 0
			for ei, v := range vd {
				if v.DoV <= 0 {
					continue
				}
				var rec [recEntryBytes]byte
				binary.LittleEndian.PutUint64(rec[0:], uint64(node.Entries[ei].ObjectID))
				binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(v.DoV))
				buf = append(buf, rec[:]...)
				n++
			}
			if n == 0 {
				continue
			}
			if len(buf) > vpageBytes {
				return nil, fmt.Errorf("naive: leaf record exceeds V-page size")
			}
			binary.LittleEndian.PutUint16(buf[0:], uint16(n))
			pages = append(pages, buf)
		}
		if len(pages) == 0 {
			s.segs[cell] = seg{start: storage.NilPage}
			continue
		}
		start := t.Disk.AllocPages(s.vpPages * len(pages))
		s.size += int64(s.vpPages*len(pages)) * int64(t.Disk.PageSize())
		for i, buf := range pages {
			if err := t.Disk.WriteBytes(start+storage.PageID(i*s.vpPages), buf); err != nil {
				return nil, err
			}
		}
		s.segs[cell] = seg{start: start, vpages: int32(len(pages))}
	}
	return s, nil
}

// Name identifies the method in experiment output.
func (s *Store) Name() string { return "naive" }

// SizeBytes returns the store's disk footprint.
func (s *Store) SizeBytes() int64 { return s.size }

// Query returns every visible object of the cell at its equation-6 LoD,
// charging one light V-page read per visible leaf node.
func (s *Store) Query(cell cells.CellID) (*core.QueryResult, error) {
	if int(cell) < 0 || int(cell) >= len(s.segs) {
		return nil, fmt.Errorf("naive: cell %d out of range", cell)
	}
	before := s.disk.Stats()
	res := &core.QueryResult{Cell: cell}
	sg := s.segs[cell]
	for i := 0; i < int(sg.vpages); i++ {
		buf, err := s.disk.ReadBytes(sg.start+storage.PageID(i*s.vpPages), s.vpageBytes, storage.ClassLight)
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint16(buf[0:]))
		for j := 0; j < n; j++ {
			off := 2 + j*recEntryBytes
			objID := int64(binary.LittleEndian.Uint64(buf[off:]))
			dov := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
			k := core.LeafDetail(dov)
			obj := s.tree.Scene.Object(objID)
			if obj == nil {
				return nil, fmt.Errorf("naive: unknown object %d in cell %d", objID, cell)
			}
			exts := s.tree.ObjExtents[objID]
			lvl := chooseLevel(k, len(exts))
			res.Items = append(res.Items, core.ResultItem{
				ObjectID: objID,
				NodeID:   core.NilNode,
				DoV:      dov,
				Detail:   k,
				Level:    lvl,
				Polygons: obj.LoDs.PolygonsFor(k),
				Extent:   exts[lvl],
			})
		}
	}
	d := s.disk.Stats().Sub(before)
	res.Stats.LightIO = d.LightReads
	res.Stats.HeavyIO = d.HeavyReads
	res.Stats.SimTime = d.SimTime
	for _, it := range res.Items {
		res.Stats.TotalPolygons += it.Polygons
		res.Stats.TotalBytes += it.Extent.NominalBytes
	}
	return res, nil
}

// chooseLevel mirrors core's continuous-to-discrete LoD mapping.
func chooseLevel(k float64, n int) int {
	if n <= 1 || k >= 1 {
		return 0
	}
	if k <= 0 {
		return n - 1
	}
	idx := int((1 - k) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// FetchPayloads charges heavy I/O for every item, like core.FetchPayloads.
func (s *Store) FetchPayloads(res *core.QueryResult, skip func(core.ResultItem) bool) (int, error) {
	fetched := 0
	for _, it := range res.Items {
		if skip != nil && skip(it) {
			continue
		}
		if err := s.disk.ReadExtent(it.Extent.Start, it.Extent.Pages(s.disk), storage.ClassHeavy); err != nil {
			return fetched, err
		}
		fetched++
	}
	return fetched, nil
}
