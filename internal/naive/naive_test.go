package naive_test

import (
	"math"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/testenv"
)

func TestNaiveMatchesEtaZeroQuery(t *testing.T) {
	env := testenv.Get(testenv.Small())
	for c := 0; c < env.Tree.Grid.NumCells(); c++ {
		cell := cells.CellID(c)
		nres, err := env.Naive.Query(cell)
		if err != nil {
			t.Fatal(err)
		}
		hres, err := env.Tree.Query(cell, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Same answer set as the HDoV-tree at eta = 0 (§5.3: "the
		// HDoV-tree degenerates to a (cell, list-of-visibility)-based
		// algorithm when eta = 0").
		if len(nres.Items) != len(hres.Items) {
			t.Fatalf("cell %d: naive %d items, hdov %d", cell, len(nres.Items), len(hres.Items))
		}
		nm := itemMap(nres.Items)
		hm := itemMap(hres.Items)
		for id, a := range nm {
			b, ok := hm[id]
			if !ok {
				t.Fatalf("cell %d: object %d only in naive", cell, id)
			}
			if math.Abs(a.DoV-b.DoV) > 1e-12 || a.Level != b.Level {
				t.Fatalf("cell %d object %d: naive %+v vs hdov %+v", cell, id, a, b)
			}
		}
	}
}

func itemMap(items []core.ResultItem) map[int64]core.ResultItem {
	m := make(map[int64]core.ResultItem, len(items))
	for _, it := range items {
		m[it.ObjectID] = it
	}
	return m
}

func TestNaiveCostFlatAcrossEta(t *testing.T) {
	// The naive method has no threshold; repeated queries cost the same
	// light I/O every time (the flat line of Figures 7/8).
	env := testenv.Get(testenv.Small())
	first, err := env.Naive.Query(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := env.Naive.Query(3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.LightIO != first.Stats.LightIO {
			t.Fatalf("run %d: light I/O %d, first %d", i, res.Stats.LightIO, first.Stats.LightIO)
		}
	}
}

func TestNaiveLightIOExceedsLargeEtaHDoV(t *testing.T) {
	// For a generous threshold the HDoV-tree answers from the top of the
	// tree with far fewer V-page reads than the naive method's
	// one-V-page-per-visible-leaf (the Figure 8(b) crossover). The effect
	// needs a tree deep enough that terminating high up skips whole
	// levels, so use the Medium environment. Compare totals across all
	// cells.
	env := testenv.Get(testenv.Medium())
	var naiveIO, hdovLow, hdovHigh int64
	for c := 0; c < env.Tree.Grid.NumCells(); c++ {
		nres, err := env.Naive.Query(cells.CellID(c))
		if err != nil {
			t.Fatal(err)
		}
		naiveIO += nres.Stats.LightIO
		low, err := env.Tree.Query(cells.CellID(c), 0)
		if err != nil {
			t.Fatal(err)
		}
		hdovLow += low.Stats.LightIO
		high, err := env.Tree.Query(cells.CellID(c), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		hdovHigh += high.Stats.LightIO
	}
	// The threshold must buy a substantial light-I/O reduction over eta=0
	// (the falling curve of Figure 8b)...
	if hdovHigh >= hdovLow {
		t.Fatalf("light I/O did not fall with eta: %d at 0.05 vs %d at 0", hdovHigh, hdovLow)
	}
	// ...and eta=0 must cost more than naive (the extra internal nodes
	// and V-pages the paper notes for very small eta).
	if hdovLow <= naiveIO {
		t.Fatalf("eta=0 HDoV light I/O %d should exceed naive %d", hdovLow, naiveIO)
	}
	t.Logf("naive=%d hdov(0)=%d hdov(0.05)=%d", naiveIO, hdovLow, hdovHigh)
}

func TestNaiveFetchPayloads(t *testing.T) {
	env := testenv.Get(testenv.Small())
	res, err := env.Naive.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Skip("empty cell")
	}
	before := env.Disk.Stats()
	n, err := env.Naive.FetchPayloads(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Items) {
		t.Fatalf("fetched %d of %d", n, len(res.Items))
	}
	if env.Disk.Stats().Sub(before).HeavyReads == 0 {
		t.Fatal("no heavy I/O charged")
	}
	// Delta-style skip.
	n, err = env.Naive.FetchPayloads(res, func(core.ResultItem) bool { return true })
	if err != nil || n != 0 {
		t.Fatalf("skip-all fetched %d", n)
	}
}

func TestNaiveErrors(t *testing.T) {
	env := testenv.Get(testenv.Small())
	if _, err := env.Naive.Query(cells.CellID(-1)); err == nil {
		t.Fatal("negative cell accepted")
	}
	if _, err := env.Naive.Query(cells.CellID(10000)); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if env.Naive.Name() != "naive" {
		t.Fatal("name wrong")
	}
	if env.Naive.SizeBytes() <= 0 {
		t.Fatal("size not positive")
	}
}
