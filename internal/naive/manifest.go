package naive

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
)

// SegmentManifest serializes one cell's V-page run.
type SegmentManifest struct {
	Start  storage.PageID
	VPages int32
}

// Manifest reopens the naive store over its disk image.
type Manifest struct {
	VPageBytes int
	Segments   []SegmentManifest
	SizeBytes  int64
}

// Manifest captures the store's layout for saving.
func (s *Store) Manifest() Manifest {
	segs := make([]SegmentManifest, len(s.segs))
	for i, sg := range s.segs {
		segs[i] = SegmentManifest{Start: sg.start, VPages: sg.vpages}
	}
	return Manifest{VPageBytes: s.vpageBytes, Segments: segs, SizeBytes: s.size}
}

// Open reattaches a saved naive store to its tree and disk.
func Open(t *core.Tree, m Manifest) (*Store, error) {
	if m.VPageBytes < 2 {
		return nil, fmt.Errorf("naive: bad manifest V-page size %d", m.VPageBytes)
	}
	if len(m.Segments) != t.Grid.NumCells() {
		return nil, fmt.Errorf("naive: manifest has %d segments for %d cells", len(m.Segments), t.Grid.NumCells())
	}
	s := &Store{
		tree:       t,
		disk:       t.Disk,
		segs:       make([]seg, len(m.Segments)),
		vpageBytes: m.VPageBytes,
		vpPages:    t.Disk.PagesFor(int64(m.VPageBytes)),
		size:       m.SizeBytes,
	}
	for i, sg := range m.Segments {
		s.segs[i] = seg{start: sg.Start, vpages: sg.VPages}
	}
	return s, nil
}
