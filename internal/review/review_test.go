package review_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/review"
	"repro/internal/testenv"
)

func pose(env *testenv.Env) (geom.Vec3, geom.Vec3) {
	eye := env.Scene.ViewRegion.Center()
	return eye, geom.V(1, 0, 0)
}

func TestReviewQueryReturnsBoxedObjects(t *testing.T) {
	env := testenv.Get(testenv.Small())
	sys := review.New(env.Tree, review.DefaultConfig())
	eye, look := pose(env)
	res, err := sys.Query(eye, look)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("no objects retrieved")
	}
	f := sys.Frustum(eye, look)
	boxes := f.QueryBoxes(sys.Cfg.Bands, sys.Cfg.QueryBoxDepth)
	seen := make(map[int64]bool)
	for _, it := range res.Items {
		if it.IsInternal() {
			t.Fatal("REVIEW returned an internal LoD")
		}
		if seen[it.ObjectID] {
			t.Fatalf("object %d duplicated", it.ObjectID)
		}
		seen[it.ObjectID] = true
		// Every returned object intersects at least one query box.
		mbr := env.Scene.Object(it.ObjectID).MBR
		hit := false
		for _, b := range boxes {
			if mbr.Intersects(b) {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("object %d outside all query boxes", it.ObjectID)
		}
		if it.Detail < 0 || it.Detail > 1 {
			t.Fatalf("detail %v out of range", it.Detail)
		}
	}
	// Completeness: every object intersecting a box is returned.
	for _, o := range env.Scene.Objects {
		inBox := false
		for _, b := range boxes {
			if o.MBR.Intersects(b) {
				inBox = true
				break
			}
		}
		if inBox && !seen[o.ID] {
			t.Fatalf("object %d in box but not returned", o.ID)
		}
	}
}

func TestReviewDistanceLoD(t *testing.T) {
	env := testenv.Get(testenv.Small())
	sys := review.New(env.Tree, review.DefaultConfig())
	eye, look := pose(env)
	res, err := sys.Query(eye, look)
	if err != nil {
		t.Fatal(err)
	}
	// Detail decreases with distance: check the correlation sign.
	var cov, n float64
	var meanD, meanK float64
	type dk struct{ d, k float64 }
	var pts []dk
	for _, it := range res.Items {
		d := env.Scene.Object(it.ObjectID).MBR.DistToPoint(eye)
		pts = append(pts, dk{d, it.Detail})
		meanD += d
		meanK += it.Detail
		n++
	}
	if n < 3 {
		t.Skip("too few items")
	}
	meanD /= n
	meanK /= n
	for _, p := range pts {
		cov += (p.d - meanD) * (p.k - meanK)
	}
	if cov > 0 {
		t.Fatalf("detail increases with distance (cov %v)", cov)
	}
}

func TestReviewShortSightedness(t *testing.T) {
	// The spatial method misses visible objects beyond its query boxes
	// (Figure 11b). Compare against ground-truth point DoV.
	env := testenv.Get(testenv.Small())
	cfg := review.DefaultConfig()
	cfg.QueryBoxDepth = 120 // short boxes: pronounced effect
	sys := review.New(env.Tree, cfg)
	eye, look := pose(env)
	res, err := sys.Query(eye, look)
	if err != nil {
		t.Fatal(err)
	}
	truth := env.Engine.PointDoV(eye)
	retrieved := make(map[int64]bool)
	for _, it := range res.Items {
		retrieved[it.ObjectID] = true
	}
	missed := 0
	for id, dov := range truth {
		if dov > 0 && !retrieved[int64(id)] {
			// Confirm it is genuinely beyond the boxes.
			if env.Scene.Objects[id].MBR.DistToPoint(eye) > cfg.QueryBoxDepth {
				missed++
			}
		}
	}
	if missed == 0 {
		t.Skip("no visible object beyond the boxes in this layout")
	}
	// The HDoV query from the same cell must cover those objects.
	cell := env.Tree.Grid.Locate(eye)
	hres, err := env.Tree.Query(cell, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[int64]bool)
	for _, it := range hres.Items {
		if it.ObjectID >= 0 {
			covered[it.ObjectID] = true
		} else {
			env.Tree.DescendantObjects(it.NodeID, func(id int64) { covered[id] = true })
		}
	}
	stillMissed := 0
	for id, dov := range truth {
		if dov > 0 && !covered[int64(id)] {
			stillMissed++
		}
	}
	if stillMissed > 0 {
		t.Fatalf("HDoV missed %d visible objects (region DoV should cover point DoV)", stillMissed)
	}
}

func TestReviewRetrievesHiddenObjects(t *testing.T) {
	// The second spatial-method problem: objects inside the boxes that
	// are completely hidden are still retrieved, wasting I/O. Verify that
	// REVIEW's answer contains at least one object with ground-truth
	// region DoV of zero (invisible from the whole cell).
	env := testenv.Get(testenv.Small())
	sys := review.New(env.Tree, review.DefaultConfig())
	eye, look := pose(env)
	res, err := sys.Query(eye, look)
	if err != nil {
		t.Fatal(err)
	}
	cell := env.Tree.Grid.Locate(eye)
	visible := make(map[int64]bool)
	perNode := env.Vis.PerCell[cell]
	for id, vd := range perNode {
		if vd == nil || !env.Tree.Nodes[id].Leaf {
			continue
		}
		for ei, v := range vd {
			if v.DoV > 0 {
				visible[env.Tree.Nodes[id].Entries[ei].ObjectID] = true
			}
		}
	}
	wasted := 0
	for _, it := range res.Items {
		if !visible[it.ObjectID] {
			wasted++
		}
	}
	if wasted == 0 {
		t.Skip("no hidden object inside boxes for this pose")
	}
	t.Logf("REVIEW retrieved %d hidden objects of %d", wasted, len(res.Items))
}

func TestReviewConfigDefaults(t *testing.T) {
	env := testenv.Get(testenv.Small())
	sys := review.New(env.Tree, review.Config{})
	if sys.Cfg.QueryBoxDepth != 400 || sys.Cfg.Bands != 1 {
		t.Fatalf("defaults not applied: %+v", sys.Cfg)
	}
	if _, err := sys.Query(env.Scene.ViewRegion.Center(), geom.V(0, 1, 0)); err != nil {
		t.Fatal(err)
	}
}

func TestReviewFetchComplement(t *testing.T) {
	env := testenv.Get(testenv.Small())
	sys := review.New(env.Tree, review.DefaultConfig())
	eye, look := pose(env)
	res, err := sys.Query(eye, look)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := sys.FetchPayloads(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != len(res.Items) {
		t.Fatalf("fetched %d of %d", n1, len(res.Items))
	}
	// Complement search: everything cached means nothing fetched.
	cached := make(map[int64]bool)
	for _, it := range res.Items {
		cached[it.ObjectID] = true
	}
	before := env.Disk.Stats()
	n2, err := sys.FetchPayloads(res, func(it core.ResultItem) bool { return cached[it.ObjectID] })
	if err != nil || n2 != 0 {
		t.Fatalf("complement fetched %d", n2)
	}
	if env.Disk.Stats().Sub(before).HeavyReads != 0 {
		t.Fatal("complement charged I/O")
	}
}
