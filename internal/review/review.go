// Package review reimplements the REVIEW walkthrough system (Shou et al.,
// VLDB 2001 — reference [12]), the spatial-access-method baseline of the
// paper's Experiment 2. REVIEW indexes objects with an R-tree and answers
// viewpoint queries with window queries over frustum-derived query boxes;
// its "complement search" is the spatial analogue of VISUAL's delta
// search, and its cache replacement is semantic: victims are chosen by
// spatial distance from the viewer.
//
// This implementation runs the window queries over the same on-disk node
// records and object payload extents as the HDoV-tree, so the two systems
// are compared on identical data, storage and disk model — only the access
// method differs. REVIEW never touches V-pages: it has no visibility data,
// which is exactly why it retrieves hidden objects inside its boxes (I/O
// waste) and misses visible objects beyond them ("short-sightedness",
// Figure 11b).
package review

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/storage"
)

// Config parameterizes the REVIEW system.
type Config struct {
	// QueryBoxDepth is the frustum truncation distance in meters — the
	// paper evaluates 200 m and 400 m boxes.
	QueryBoxDepth float64
	// Bands is the number of distance-banded query boxes the frustum is
	// converted into (the LoD-R-tree refinement REVIEW inherits).
	Bands int
	// FovY and Aspect shape the viewing frustum.
	FovY, Aspect float64
	// Near and Far are the clip distances (Far only bounds the frustum
	// construction; retrieval is limited by QueryBoxDepth).
	Near, Far float64
}

// DefaultConfig returns the paper's 400 m configuration.
func DefaultConfig() Config {
	return Config{
		QueryBoxDepth: 400,
		Bands:         4,
		FovY:          math.Pi / 3,
		Aspect:        4.0 / 3.0,
		Near:          0.5,
		Far:           2000,
	}
}

// System is a REVIEW instance over a built HDoV database (using only its
// spatial part).
type System struct {
	T   *core.Tree
	Cfg Config
}

// New creates a REVIEW system over the shared database.
func New(t *core.Tree, cfg Config) *System {
	if cfg.QueryBoxDepth <= 0 {
		cfg.QueryBoxDepth = 400
	}
	if cfg.Bands < 1 {
		cfg.Bands = 1
	}
	if cfg.FovY <= 0 {
		cfg.FovY = math.Pi / 3
	}
	if cfg.Aspect <= 0 {
		cfg.Aspect = 4.0 / 3.0
	}
	if cfg.Near <= 0 {
		cfg.Near = 0.5
	}
	if cfg.Far <= cfg.Near {
		cfg.Far = cfg.Near + 2000
	}
	return &System{T: t, Cfg: cfg}
}

// reader returns the handle the system's reads go through: the tree's
// accounting client when present, else the disk.
func (s *System) reader() storage.Reader {
	if s.T.IO != nil {
		return s.T.IO
	}
	return s.T.Disk
}

// stats snapshots the matching accounting counters.
func (s *System) stats() storage.Stats {
	if s.T.IO != nil {
		return s.T.IO.Stats()
	}
	return s.T.Disk.Stats()
}

// Frustum builds the viewing frustum for a pose.
func (s *System) Frustum(eye, look geom.Vec3) geom.Frustum {
	return geom.NewFrustum(eye, look, geom.V(0, 0, 1), s.Cfg.FovY, s.Cfg.Aspect, s.Cfg.Near, s.Cfg.Far)
}

// Query performs the REVIEW window queries for a pose: the frustum is
// converted to Bands distance-banded boxes truncated at QueryBoxDepth, and
// each box is run as an R-tree window query over the on-disk node records
// (light I/O). Objects get a static distance-based LoD: the k coefficient
// falls linearly from 1 at the viewpoint to 0 at QueryBoxDepth — the
// "ad-hoc and static" LoD policy the introduction criticizes.
func (s *System) Query(eye, look geom.Vec3) (*core.QueryResult, error) {
	before := s.stats()
	f := s.Frustum(eye, look)
	boxes := f.QueryBoxes(s.Cfg.Bands, s.Cfg.QueryBoxDepth)
	res := &core.QueryResult{Cell: -1}

	seen := make(map[int64]bool)
	if err := s.window(0, boxes, eye, seen, res); err != nil {
		return nil, err
	}
	d := s.stats().Sub(before)
	res.Stats.LightIO = d.LightReads
	res.Stats.HeavyIO = d.HeavyReads
	res.Stats.SimTime = d.SimTime
	for _, it := range res.Items {
		res.Stats.TotalPolygons += it.Polygons
		res.Stats.TotalBytes += it.Extent.NominalBytes
	}
	return res, nil
}

// window recursively runs the multi-box window query from node id.
func (s *System) window(id core.NodeID, boxes []geom.AABB, eye geom.Vec3, seen map[int64]bool, res *core.QueryResult) error {
	node, err := s.T.ReadNodeRecord(id)
	if err != nil {
		return err
	}
	res.Stats.NodesVisited++
	for _, e := range node.Entries {
		hit := false
		for _, b := range boxes {
			if e.MBR.Intersects(b) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if !node.Leaf {
			if err := s.window(e.ChildID, boxes, eye, seen, res); err != nil {
				return err
			}
			continue
		}
		if seen[e.ObjectID] {
			continue // object straddles several bands; emit once
		}
		seen[e.ObjectID] = true
		dist := e.MBR.DistToPoint(eye)
		k := 1 - dist/s.Cfg.QueryBoxDepth
		if k < 0 {
			k = 0
		}
		if k > 1 {
			k = 1
		}
		obj := s.T.Scene.Object(e.ObjectID)
		exts := s.T.ObjExtents[e.ObjectID]
		lvl := levelFor(k, len(exts))
		res.Items = append(res.Items, core.ResultItem{
			ObjectID: e.ObjectID,
			NodeID:   core.NilNode,
			DoV:      0, // REVIEW has no visibility data
			Detail:   k,
			Level:    lvl,
			Polygons: obj.LoDs.PolygonsFor(k),
			Extent:   exts[lvl],
		})
	}
	return nil
}

// levelFor mirrors core's continuous-to-discrete LoD mapping.
func levelFor(k float64, n int) int {
	if n <= 1 || k >= 1 {
		return 0
	}
	if k <= 0 {
		return n - 1
	}
	idx := int((1 - k) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// FetchPayloads charges heavy I/O for the items, honoring the complement
// search: items for which skip returns true (already retrieved in earlier
// queries) cost nothing.
func (s *System) FetchPayloads(res *core.QueryResult, skip func(core.ResultItem) bool) (int, error) {
	fetched := 0
	for _, it := range res.Items {
		if skip != nil && skip(it) {
			continue
		}
		if err := s.reader().ReadExtent(it.Extent.Start, it.Extent.Pages(s.T.Disk), storage.ClassHeavy); err != nil {
			return fetched, err
		}
		fetched++
	}
	return fetched, nil
}
