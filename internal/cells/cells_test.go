package cells

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func testGrid() *Grid {
	return NewGrid(geom.Box(geom.V(0, 0, 1.5), geom.V(100, 80, 2.0)), 10, 8)
}

func TestGridBasics(t *testing.T) {
	g := testGrid()
	if g.NumCells() != 80 {
		t.Fatalf("cells = %d", g.NumCells())
	}
	cs := g.CellSize()
	if cs != geom.V(10, 10, 0.5) {
		t.Fatalf("cell size = %v", cs)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridClampsDegenerate(t *testing.T) {
	g := NewGrid(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), 0, -5)
	if g.NX != 1 || g.NY != 1 {
		t.Fatalf("grid %dx%d", g.NX, g.NY)
	}
	if (&Grid{NX: 0, NY: 1}).Validate() == nil {
		t.Fatal("invalid grid accepted")
	}
	if NewGrid(geom.EmptyAABB(), 2, 2).Validate() == nil {
		t.Fatal("empty bounds accepted")
	}
}

func TestNewGridChecked(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	g, err := NewGridChecked(b, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 4 || g.NY != 3 {
		t.Fatalf("grid %dx%d", g.NX, g.NY)
	}
	bad := []struct {
		name   string
		bounds geom.AABB
		nx, ny int
	}{
		{"zero nx", b, 0, 3},
		{"zero ny", b, 4, 0},
		{"negative nx", b, -2, 3},
		{"negative ny", b, 4, -7},
		{"empty bounds", geom.EmptyAABB(), 4, 3},
	}
	for _, tc := range bad {
		if g, err := NewGridChecked(tc.bounds, tc.nx, tc.ny); err == nil {
			t.Fatalf("%s: accepted as %dx%d", tc.name, g.NX, g.NY)
		}
	}
}

func TestLocate(t *testing.T) {
	g := testGrid()
	if id := g.Locate(geom.V(5, 5, 1.7)); id != 0 {
		t.Fatalf("corner cell = %d", id)
	}
	if id := g.Locate(geom.V(95, 75, 1.7)); id != CellID(7*10+9) {
		t.Fatalf("far cell = %d", id)
	}
	if id := g.Locate(geom.V(-1, 5, 1.7)); id != NoCell {
		t.Fatalf("outside = %d", id)
	}
	if id := g.Locate(geom.V(5, 5, 5)); id != NoCell {
		t.Fatalf("above slab = %d", id)
	}
	// Max boundary belongs to the last cell.
	if id := g.Locate(geom.V(100, 80, 2.0)); id != CellID(79) {
		t.Fatalf("max corner = %d", id)
	}
}

func TestLocateCellBoundsRoundTrip(t *testing.T) {
	g := testGrid()
	for id := CellID(0); int(id) < g.NumCells(); id++ {
		b := g.CellBounds(id)
		if got := g.Locate(b.Center()); got != id {
			t.Fatalf("cell %d center locates to %d", id, got)
		}
		if got := g.Locate(g.Center(id)); got != id {
			t.Fatalf("cell %d Center() locates to %d", id, got)
		}
	}
}

func TestCellsDisjointAndCovering(t *testing.T) {
	g := testGrid()
	// Total cell volume equals grid volume (covering, disjoint).
	var vol float64
	for id := CellID(0); int(id) < g.NumCells(); id++ {
		vol += g.CellBounds(id).Volume()
	}
	if diff := vol - g.Bounds.Volume(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("cell volumes sum to %v, grid volume %v", vol, g.Bounds.Volume())
	}
	// Interior cells only overlap neighbors on boundaries.
	a := g.CellBounds(0)
	b := g.CellBounds(1)
	inter := a.Intersect(b)
	if !inter.IsEmpty() && inter.Volume() > 0 {
		t.Fatalf("adjacent cells overlap with volume %v", inter.Volume())
	}
}

func TestSamplePoints(t *testing.T) {
	g := testGrid()
	pts := g.SamplePoints(3, 2)
	if len(pts) != 5 {
		t.Fatalf("n=2 gives %d points, want 5", len(pts))
	}
	b := g.CellBounds(3)
	for i, p := range pts {
		if !b.ContainsPoint(p) {
			t.Fatalf("sample %d at %v outside cell %v", i, p, b)
		}
	}
	one := g.SamplePoints(3, 1)
	if len(one) != 1 || one[0] != b.Center() {
		t.Fatalf("n=1 = %v", one)
	}
	if got := g.SamplePoints(3, 0); len(got) != 1 {
		t.Fatalf("n=0 clamps to 1, got %d", len(got))
	}
}

func TestNeighbors(t *testing.T) {
	g := testGrid()
	// Corner cell: 3 neighbors.
	if n := g.Neighbors(0); len(n) != 3 {
		t.Fatalf("corner neighbors = %d", len(n))
	}
	// Edge cell: 5 neighbors.
	if n := g.Neighbors(5); len(n) != 5 {
		t.Fatalf("edge neighbors = %d", len(n))
	}
	// Interior cell: 8 neighbors.
	inner := CellID(3*10 + 5)
	n := g.Neighbors(inner)
	if len(n) != 8 {
		t.Fatalf("interior neighbors = %d", len(n))
	}
	for _, id := range n {
		if id == inner {
			t.Fatal("cell is its own neighbor")
		}
		// Neighbor bounds must touch the cell bounds.
		if !g.CellBounds(id).Intersects(g.CellBounds(inner)) {
			t.Fatalf("neighbor %d does not touch %d", id, inner)
		}
	}
}

func TestPropLocateConsistent(t *testing.T) {
	g := testGrid()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := geom.V(r.Float64()*100, r.Float64()*80, 1.5+r.Float64()*0.5)
		id := g.Locate(p)
		if id == NoCell {
			return false // in-bounds point must locate
		}
		return g.CellBounds(id).ContainsPoint(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
