// Package cells partitions the viewpoint space into disjoint viewing cells,
// the precomputation granularity of the paper: "we adopt a similar strategy
// of partitioning the viewpoint space into disjoint cells" (§3). DoV values
// are precomputed per cell using the conservative region definition
// DoV(R, X) = max over p in R of DoV(p, X) (equation 2), approximated by
// sampling a deterministic set of viewpoints inside each cell.
package cells

import (
	"fmt"

	"repro/internal/geom"
)

// Grid is a uniform partition of a horizontal slab of viewpoint space into
// nx × ny cells. Walkthrough viewpoints move at roughly constant eye height
// in the city, so a 2D grid over the ground plane (extruded from ZMin to
// ZMax) matches the paper's "pre-determined cells".
type Grid struct {
	Bounds geom.AABB // region of viewpoint space covered
	NX, NY int
}

// CellID identifies a viewing cell; IDs are dense in [0, NumCells).
type CellID int32

// NoCell is returned by Locate for viewpoints outside the grid.
const NoCell CellID = -1

// NewGrid covers the XY footprint of bounds with nx × ny cells spanning the
// full Z range of bounds. Non-positive cell counts are clamped to 1; use
// NewGridChecked when degenerate inputs should be an error instead.
func NewGrid(bounds geom.AABB, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{Bounds: bounds, NX: nx, NY: ny}
}

// NewGridChecked is NewGrid for untrusted inputs (manifests, flags): zero
// or negative cell counts and empty bounds are rejected rather than
// silently clamped.
func NewGridChecked(bounds geom.AABB, nx, ny int) (*Grid, error) {
	g := &Grid{Bounds: bounds, NX: nx, NY: ny}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// NumCells returns the total number of cells (the c of §4's cost formulas).
func (g *Grid) NumCells() int { return g.NX * g.NY }

// CellSize returns the extents of one cell.
func (g *Grid) CellSize() geom.Vec3 {
	s := g.Bounds.Size()
	return geom.V(s.X/float64(g.NX), s.Y/float64(g.NY), s.Z)
}

// Locate returns the cell containing viewpoint p, or NoCell if p is outside
// the grid. Points on the shared boundary of two cells belong to the cell
// with the higher index along that axis, except on the outer maximum
// boundary, which belongs to the last cell — so the cells are disjoint and
// cover the region exactly.
func (g *Grid) Locate(p geom.Vec3) CellID {
	if !g.Bounds.ContainsPoint(p) {
		return NoCell
	}
	cs := g.CellSize()
	ix := int((p.X - g.Bounds.Min.X) / cs.X)
	iy := int((p.Y - g.Bounds.Min.Y) / cs.Y)
	if ix >= g.NX {
		ix = g.NX - 1
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return CellID(iy*g.NX + ix)
}

// CellBounds returns the AABB of cell id.
func (g *Grid) CellBounds(id CellID) geom.AABB {
	ix := int(id) % g.NX
	iy := int(id) / g.NX
	cs := g.CellSize()
	min := geom.V(
		g.Bounds.Min.X+float64(ix)*cs.X,
		g.Bounds.Min.Y+float64(iy)*cs.Y,
		g.Bounds.Min.Z,
	)
	return geom.Box(min, min.Add(cs))
}

// Center returns the center point of cell id.
func (g *Grid) Center(id CellID) geom.Vec3 {
	return g.CellBounds(id).Center()
}

// SamplePoints returns a deterministic set of viewpoints inside cell id used
// to approximate the region DoV maximum of equation 2: the cell center plus
// the centers of the 2×2×1 (or n×n×1) sub-cells. More samples tighten the
// approximation at proportional precomputation cost — the paper reports
// 1.02 s per cell for its GPU pipeline; our knob is this n.
func (g *Grid) SamplePoints(id CellID, n int) []geom.Vec3 {
	if n < 1 {
		n = 1
	}
	b := g.CellBounds(id)
	if n == 1 {
		return []geom.Vec3{b.Center()}
	}
	pts := make([]geom.Vec3, 0, n*n+1)
	pts = append(pts, b.Center())
	s := b.Size()
	z := b.Center().Z
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pts = append(pts, geom.V(
				b.Min.X+s.X*(float64(i)+0.5)/float64(n),
				b.Min.Y+s.Y*(float64(j)+0.5)/float64(n),
				z,
			))
		}
	}
	return pts
}

// Neighbors returns the IDs of the up-to-8 cells adjacent to id (including
// diagonals). Walkthrough prefetching warms these.
func (g *Grid) Neighbors(id CellID) []CellID {
	ix := int(id) % g.NX
	iy := int(id) / g.NX
	out := make([]CellID, 0, 8)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := ix+dx, iy+dy
			if nx < 0 || nx >= g.NX || ny < 0 || ny >= g.NY {
				continue
			}
			out = append(out, CellID(ny*g.NX+nx))
		}
	}
	return out
}

// Validate checks grid consistency.
func (g *Grid) Validate() error {
	if g.NX < 1 || g.NY < 1 {
		return fmt.Errorf("cells: grid %dx%d invalid", g.NX, g.NY)
	}
	if g.Bounds.IsEmpty() {
		return fmt.Errorf("cells: empty bounds")
	}
	return nil
}
