package vstore

import (
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/storage"
)

func manifestFixture(t *testing.T) (*storage.Disk, *cells.Grid, *Horizontal, *Vertical, *IndexedVertical) {
	t.Helper()
	vis := sparseVisData(t, 50, 4, 4, 0.3, 5)
	d := storage.NewDisk(0, storage.DefaultCostModel())
	h, err := BuildHorizontal(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BuildVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := BuildIndexedVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d, vis.Grid, h, v, iv
}

func TestManifestRoundTripsServeIdenticalVD(t *testing.T) {
	d, grid, h, v, iv := manifestFixture(t)
	h2, err := OpenHorizontal(d, grid, h.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := OpenVertical(d, grid, v.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := OpenIndexedVertical(d, grid, iv.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct{ a, b core.VStore }{{h, h2}, {v, v2}, {iv, iv2}}
	for _, pair := range pairs {
		for c := 0; c < grid.NumCells(); c++ {
			if err := pair.a.SetCell(cells.CellID(c)); err != nil {
				t.Fatal(err)
			}
			if err := pair.b.SetCell(cells.CellID(c)); err != nil {
				t.Fatal(err)
			}
			for id := 0; id < 50; id++ {
				va, oka, ea := pair.a.NodeVD(core.NodeID(id))
				vb, okb, eb := pair.b.NodeVD(core.NodeID(id))
				if (ea == nil) != (eb == nil) || oka != okb || len(va) != len(vb) {
					t.Fatalf("%s: reopened scheme diverges at cell %d node %d", pair.a.Name(), c, id)
				}
				for i := range va {
					if va[i] != vb[i] {
						t.Fatalf("%s: VD differs at cell %d node %d", pair.a.Name(), c, id)
					}
				}
			}
		}
		if pair.a.SizeBytes() != pair.b.SizeBytes() {
			t.Fatalf("%s: size changed across manifest round trip", pair.a.Name())
		}
	}
}

func TestManifestValidation(t *testing.T) {
	d, grid, h, v, iv := manifestFixture(t)

	badSlots := h.Manifest()
	badSlots.Slots.SlotBytes = 0
	if _, err := OpenHorizontal(d, grid, badSlots); err == nil {
		t.Fatal("bad slot table accepted")
	}
	badH := h.Manifest()
	badH.NumNodes = 0
	if _, err := OpenHorizontal(d, grid, badH); err == nil {
		t.Fatal("zero nodes accepted")
	}
	badV := v.Manifest()
	badV.SegPages = 0
	if _, err := OpenVertical(d, grid, badV); err == nil {
		t.Fatal("zero segment pages accepted")
	}
	badV2 := v.Manifest()
	badV2.VPageBytes = 1
	if _, err := OpenVertical(d, grid, badV2); err == nil {
		t.Fatal("tiny V-page accepted")
	}
	badIV := iv.Manifest()
	badIV.Dir = badIV.Dir[:1]
	if _, err := OpenIndexedVertical(d, grid, badIV); err == nil {
		t.Fatal("directory/cell mismatch accepted")
	}
	badIV2 := iv.Manifest()
	badIV2.Slots.PerPage = -1
	if _, err := OpenIndexedVertical(d, grid, badIV2); err == nil {
		t.Fatal("negative per-page accepted")
	}
	// Names and flip counters exist for the reopened schemes too.
	iv2, err := OpenIndexedVertical(d, grid, iv.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if iv2.Name() != "indexed-vertical" || iv2.Flips() != 0 {
		t.Fatal("reopened scheme metadata wrong")
	}
	v2, err := OpenVertical(d, grid, v.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if v2.Name() != "vertical" || v2.Flips() != 0 {
		t.Fatal("reopened vertical metadata wrong")
	}
	_ = geom.V(0, 0, 0) // keep geom imported for fixture growth
}
