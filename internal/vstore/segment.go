package vstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// V-page-index segment decoding, shared by the vertical and
// indexed-vertical schemes' cell flips and fuzzed directly (the segments
// are the one variable-length on-disk structure the query path decodes,
// so they are where silent corruption turns into bad pointers).

// decodePointerSegment parses a vertical-scheme segment (§4.2): numNodes
// little-endian int64 V-page pointers, nilSlot for invisible nodes. Every
// pointer is validated against the slot-table size so a corrupt segment
// surfaces at flip time instead of as an out-of-range read mid-query.
func decodePointerSegment(buf []byte, numNodes int, numSlots int64) ([]int64, error) {
	if numNodes < 0 || len(buf) < numNodes*pointerBytes {
		return nil, fmt.Errorf("vstore: pointer segment is %d bytes, want %d", len(buf), numNodes*pointerBytes)
	}
	seg := make([]int64, numNodes)
	for i := range seg {
		p := int64(binary.LittleEndian.Uint64(buf[i*pointerBytes:]))
		if p != nilSlot && (p < 0 || p >= numSlots) {
			return nil, fmt.Errorf("vstore: node %d pointer %d out of range (%d slots)", i, p, numSlots)
		}
		seg[i] = p
	}
	return seg, nil
}

// decodeIndexSegment parses an indexed-vertical segment (§4.3): count ×
// (u32 node offset, i64 V-page pointer) pairs for the visible nodes.
// Offsets and pointers are range-checked, and duplicate offsets rejected,
// so a corrupt segment cannot alias two nodes onto one V-page silently.
func decodeIndexSegment(buf []byte, count, numNodes int, numSlots int64) (map[core.NodeID]int64, error) {
	if count < 0 || len(buf) < count*segEntryBytes {
		return nil, fmt.Errorf("vstore: index segment is %d bytes, want %d", len(buf), count*segEntryBytes)
	}
	m := make(map[core.NodeID]int64, count)
	for i := 0; i < count; i++ {
		id := core.NodeID(binary.LittleEndian.Uint32(buf[i*segEntryBytes:]))
		slot := int64(binary.LittleEndian.Uint64(buf[i*segEntryBytes+4:]))
		if int(id) < 0 || int(id) >= numNodes {
			return nil, fmt.Errorf("vstore: segment entry %d: node %d out of range (%d nodes)", i, id, numNodes)
		}
		if slot < 0 || slot >= numSlots {
			return nil, fmt.Errorf("vstore: segment entry %d: pointer %d out of range (%d slots)", i, slot, numSlots)
		}
		if _, dup := m[id]; dup {
			return nil, fmt.Errorf("vstore: segment entry %d: duplicate node %d", i, id)
		}
		m[id] = slot
	}
	return m, nil
}
