package vstore

import (
	"testing"

	"repro/internal/core"
)

// corruptions returns adversarial mutations of a valid codec unit: bad
// magic, bad version, overflowing mode byte, truncated tails (torn
// varints and torn CRCs alike), and a CRC-preserving-length bit flip.
func corruptions(good []byte) [][]byte {
	var out [][]byte
	flip := func(pos int, val byte) []byte {
		c := append([]byte(nil), good...)
		c[pos] = val
		return c
	}
	out = append(out, flip(0, 0x00), flip(0, 0xD9), flip(1, 0x7F))
	if len(good) > 2 {
		out = append(out, flip(2, 53), flip(2, 0xFE))
	}
	for cut := 1; cut < len(good); cut += 3 {
		out = append(out, good[:cut])
	}
	if len(good) > 5 {
		c := append([]byte(nil), good...)
		c[len(c)-1] ^= 0x01 // CRC trailer bit flip
		out = append(out, c)
		c2 := append([]byte(nil), good...)
		c2[len(c2)-5] ^= 0x80 // payload bit flip caught by CRC
		out = append(out, c2)
	}
	return out
}

// FuzzDecodeVPageCodec drives the codec V-page unit decoder with
// arbitrary bytes: it must return an error or a faithful V-data slice,
// and never panic. Anything that decodes cleanly must re-encode.
func FuzzDecodeVPageCodec(f *testing.F) {
	quant, _ := EncodeVPageC([]core.VD{{DoV: 0.5, NVO: 2}, {DoV: 0.25, NVO: 0}})
	raw, _ := EncodeVPageC([]core.VD{{DoV: 0.1, NVO: 1}})
	empty, _ := EncodeVPageC(nil)
	for _, seed := range [][]byte{quant, raw, empty} {
		f.Add(seed)
		for _, c := range corruptions(seed) {
			f.Add(c)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{codecMagicVPage})
	f.Fuzz(func(t *testing.T, data []byte) {
		vd, err := DecodeVPageC(data)
		if err != nil {
			if !IsCodecError(err) {
				t.Fatalf("decode error does not wrap errCodec: %v", err)
			}
			return
		}
		if _, err := EncodeVPageC(vd); err != nil && len(vd) < maxCodecEntries {
			t.Fatalf("re-encode of accepted unit failed: %v", err)
		}
	})
}

// FuzzDecodePointerSegmentCodec drives the vertical codec flip-segment
// decoder: an accepted segment must yield exactly numNodes offsets, every
// visible one inside [0, blockBytes) with a length that keeps the prefix
// sum in bounds.
func FuzzDecodePointerSegmentCodec(f *testing.F) {
	lens := []int64{-1, 16, 24, -1, 9}
	good, _ := EncodePointerSegmentC(5, lens)
	f.Add(good, 5, int64(49))
	for _, c := range corruptions(good) {
		f.Add(c, 5, int64(49))
	}
	f.Add([]byte{}, 0, int64(0))
	f.Add(good, 4, int64(49)) // node-count mismatch
	f.Add(good, 5, int64(10)) // block too small
	f.Add([]byte{0xD2}, 1, int64(8))
	f.Fuzz(func(t *testing.T, data []byte, numNodes int, blockBytes int64) {
		if numNodes < 0 || numNodes > 1<<16 {
			return // bound allocation, not behavior
		}
		offs, gotLens, err := DecodePointerSegmentC(data, numNodes, blockBytes)
		if err != nil {
			if !IsCodecError(err) {
				t.Fatalf("decode error does not wrap errCodec: %v", err)
			}
			return
		}
		if len(offs) != numNodes || len(gotLens) != numNodes {
			t.Fatalf("decoded %d/%d pointers, want %d", len(offs), len(gotLens), numNodes)
		}
		for id, off := range offs {
			if off == nilSlot {
				continue
			}
			if off < 0 || off >= blockBytes || int64(gotLens[id]) < codecMinUnitBytes ||
				off+int64(gotLens[id]) > blockBytes {
				t.Fatalf("node %d unit [%d,+%d) escaped validation (block %d)",
					id, off, gotLens[id], blockBytes)
			}
		}
	})
}

// FuzzDecodeIndexSegmentCodec drives the indexed-vertical codec
// flip-segment decoder: accepted entries must reference in-range nodes
// with units inside [base, base+blockBytes), no duplicates.
func FuzzDecodeIndexSegmentCodec(f *testing.F) {
	good, _ := EncodeIndexSegmentC([]int{1, 4, 9}, []int64{16, 8, 32})
	f.Add(good, 10, int64(0), int64(56))
	for _, c := range corruptions(good) {
		f.Add(c, 10, int64(0), int64(56))
	}
	f.Add([]byte{}, 0, int64(0), int64(0))
	f.Add(good, 5, int64(0), int64(56))  // node 9 out of range
	f.Add(good, 10, int64(0), int64(20)) // block too small
	f.Add([]byte{0xD3, 0x01}, 4, int64(100), int64(64))
	f.Fuzz(func(t *testing.T, data []byte, numNodes int, base, blockBytes int64) {
		if numNodes < 0 || numNodes > 1<<16 {
			return // bound allocation, not behavior
		}
		m, err := DecodeIndexSegmentC(data, numNodes, base, blockBytes)
		if err != nil {
			if !IsCodecError(err) {
				t.Fatalf("decode error does not wrap errCodec: %v", err)
			}
			return
		}
		for id, ref := range m {
			if int(id) < 0 || int(id) >= numNodes {
				t.Fatalf("node %d escaped validation (%d nodes)", id, numNodes)
			}
			if ref.off < base || int64(ref.n) < codecMinUnitBytes ||
				ref.off+int64(ref.n) > base+blockBytes {
				t.Fatalf("node %d unit [%d,+%d) escaped validation (base %d block %d)",
					id, ref.off, ref.n, base, blockBytes)
			}
		}
	})
}

// TestCodecDecodersRejectCorruption pins the corruption taxonomy outside
// the fuzzer: every mutation in corruptions() of every unit type must be
// rejected with a codec error (fuzzing explores further, but this is the
// deterministic floor CI always exercises).
func TestCodecDecodersRejectCorruption(t *testing.T) {
	quant, err := EncodeVPageC([]core.VD{{DoV: 0.5, NVO: 2}, {DoV: 0.125, NVO: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range corruptions(quant) {
		if _, err := DecodeVPageC(c); !IsCodecError(err) {
			t.Fatalf("V-page corruption %d accepted: %v", i, err)
		}
	}
	seg, err := EncodePointerSegmentC(6, []int64{16, -1, 8, 8, -1, 40})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range corruptions(seg) {
		if _, _, err := DecodePointerSegmentC(c, 6, 72); !IsCodecError(err) {
			t.Fatalf("pointer-segment corruption %d accepted: %v", i, err)
		}
	}
	idx, err := EncodeIndexSegmentC([]int{0, 3, 5}, []int64{8, 16, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range corruptions(idx) {
		if _, err := DecodeIndexSegmentC(c, 6, 0, 32); !IsCodecError(err) {
			t.Fatalf("index-segment corruption %d accepted: %v", i, err)
		}
	}
}
