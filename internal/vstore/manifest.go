package vstore

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/storage"
)

// SlotTableManifest serializes a V-page slot table's layout.
type SlotTableManifest struct {
	Base      storage.PageID
	SlotBytes int
	PerPage   int
	Count     int
}

func (t slotTable) manifest() SlotTableManifest {
	return SlotTableManifest{Base: t.base, SlotBytes: t.slotBytes, PerPage: t.perPage, Count: t.count}
}

func (m SlotTableManifest) table() (slotTable, error) {
	if m.SlotBytes < 1 || m.PerPage < 1 || m.Count < 0 || m.Base < 0 {
		return slotTable{}, fmt.Errorf("vstore: bad slot-table manifest %+v", m)
	}
	return slotTable{base: m.Base, slotBytes: m.SlotBytes, perPage: m.PerPage, count: m.Count}, nil
}

// HorizontalManifest reopens a horizontal scheme over its disk image.
type HorizontalManifest struct {
	NumNodes   int
	VPageBytes int
	Slots      SlotTableManifest
	SizeBytes  int64
}

// Manifest captures the scheme's layout for saving.
func (h *Horizontal) Manifest() HorizontalManifest {
	return HorizontalManifest{
		NumNodes:   h.numNodes,
		VPageBytes: h.vpageBytes,
		Slots:      h.slots.manifest(),
		SizeBytes:  h.sizeBytes,
	}
}

// OpenHorizontal reattaches a saved horizontal scheme.
func OpenHorizontal(d *storage.Disk, grid *cells.Grid, m HorizontalManifest) (*Horizontal, error) {
	slots, err := m.Slots.table()
	if err != nil {
		return nil, err
	}
	if m.NumNodes < 1 || m.VPageBytes < 2 {
		return nil, fmt.Errorf("vstore: bad horizontal manifest %+v", m)
	}
	return &Horizontal{
		disk:       d,
		io:         d,
		grid:       grid,
		numNodes:   m.NumNodes,
		slots:      slots,
		vpageBytes: m.VPageBytes,
		sizeBytes:  m.SizeBytes,
	}, nil
}

// VerticalManifest reopens a vertical scheme over its disk image.
type VerticalManifest struct {
	NumNodes   int
	VPageBytes int
	SegBase    storage.PageID
	SegPages   int
	Slots      SlotTableManifest
	SizeBytes  int64
}

// Manifest captures the scheme's layout for saving.
func (v *Vertical) Manifest() VerticalManifest {
	return VerticalManifest{
		NumNodes:   v.numNodes,
		VPageBytes: v.vpageBytes,
		SegBase:    v.segBase,
		SegPages:   v.segPages,
		Slots:      v.slots.manifest(),
		SizeBytes:  v.size,
	}
}

// OpenVertical reattaches a saved vertical scheme.
func OpenVertical(d *storage.Disk, grid *cells.Grid, m VerticalManifest) (*Vertical, error) {
	slots, err := m.Slots.table()
	if err != nil {
		return nil, err
	}
	if m.NumNodes < 1 || m.VPageBytes < 2 || m.SegPages < 1 {
		return nil, fmt.Errorf("vstore: bad vertical manifest %+v", m)
	}
	return &Vertical{
		disk:       d,
		io:         d,
		grid:       grid,
		numNodes:   m.NumNodes,
		segBase:    m.SegBase,
		segPages:   m.SegPages,
		slots:      slots,
		vpageBytes: m.VPageBytes,
		size:       m.SizeBytes,
	}, nil
}

// SegmentManifest serializes one indexed-vertical directory entry.
type SegmentManifest struct {
	Start storage.PageID
	Count int32
}

// IndexedVerticalManifest reopens an indexed-vertical scheme.
type IndexedVerticalManifest struct {
	NumNodes   int
	VPageBytes int
	Slots      SlotTableManifest
	Dir        []SegmentManifest
	SizeBytes  int64
}

// Manifest captures the scheme's layout for saving.
func (iv *IndexedVertical) Manifest() IndexedVerticalManifest {
	dir := make([]SegmentManifest, len(iv.dir))
	for i, s := range iv.dir {
		dir[i] = SegmentManifest{Start: s.start, Count: s.count}
	}
	return IndexedVerticalManifest{
		NumNodes:   iv.numNodes,
		VPageBytes: iv.vpageBytes,
		Slots:      iv.slots.manifest(),
		Dir:        dir,
		SizeBytes:  iv.size,
	}
}

// OpenIndexedVertical reattaches a saved indexed-vertical scheme.
func OpenIndexedVertical(d *storage.Disk, grid *cells.Grid, m IndexedVerticalManifest) (*IndexedVertical, error) {
	slots, err := m.Slots.table()
	if err != nil {
		return nil, err
	}
	if m.NumNodes < 1 || m.VPageBytes < 2 {
		return nil, fmt.Errorf("vstore: bad indexed-vertical manifest %+v", m)
	}
	if len(m.Dir) != grid.NumCells() {
		return nil, fmt.Errorf("vstore: directory has %d segments for %d cells", len(m.Dir), grid.NumCells())
	}
	dir := make([]segDesc, len(m.Dir))
	for i, s := range m.Dir {
		dir[i] = segDesc{start: s.Start, count: s.Count}
	}
	return &IndexedVertical{
		disk:       d,
		io:         d,
		grid:       grid,
		numNodes:   m.NumNodes,
		slots:      slots,
		vpageBytes: m.VPageBytes,
		dir:        dir,
		size:       m.SizeBytes,
	}, nil
}
