package vstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cells"
	"repro/internal/storage"
)

// SlotTableManifest serializes a V-page slot table's layout.
type SlotTableManifest struct {
	Base      storage.PageID
	SlotBytes int
	PerPage   int
	Count     int
}

func (t slotTable) manifest() SlotTableManifest {
	return SlotTableManifest{Base: t.base, SlotBytes: t.slotBytes, PerPage: t.perPage, Count: t.count}
}

func (m SlotTableManifest) table() (slotTable, error) {
	if m.SlotBytes < 1 || m.PerPage < 1 || m.Count < 0 || m.Base < 0 {
		return slotTable{}, fmt.Errorf("vstore: bad slot-table manifest %+v", m)
	}
	return slotTable{base: m.Base, slotBytes: m.SlotBytes, perPage: m.PerPage, count: m.Count}, nil
}

// CodecSegManifest serializes one codec directory entry: the cell's heap
// block (segment offset + length, then the units region length).
type CodecSegManifest struct {
	Off      int64
	SegLen   int32
	UnitsLen int64
}

func codecSegManifests(cdir []codecSeg) []CodecSegManifest {
	out := make([]CodecSegManifest, len(cdir))
	for i, s := range cdir {
		out[i] = CodecSegManifest{Off: s.off, SegLen: s.segLen, UnitsLen: s.unitsLen}
	}
	return out
}

// codecDir validates and converts a manifest directory against the heap
// bounds.
func codecDir(ms []CodecSegManifest, numCells int, heapBytes int64) ([]codecSeg, error) {
	if len(ms) != numCells {
		return nil, fmt.Errorf("vstore: codec directory has %d segments for %d cells", len(ms), numCells)
	}
	out := make([]codecSeg, len(ms))
	for i, s := range ms {
		if s.Off == nilSlot {
			if s.SegLen != 0 || s.UnitsLen != 0 {
				return nil, fmt.Errorf("vstore: codec directory entry %d: empty cell with nonzero extent", i)
			}
		} else if s.Off < 0 || s.SegLen < codecMinUnitBytes || s.UnitsLen < 0 ||
			s.Off+int64(s.SegLen)+s.UnitsLen > heapBytes {
			return nil, fmt.Errorf("vstore: codec directory entry %d out of range: %+v (heap %d bytes)", i, s, heapBytes)
		}
		out[i] = codecSeg{off: s.Off, segLen: s.SegLen, unitsLen: s.UnitsLen}
	}
	return out, nil
}

// HorizontalManifest reopens a horizontal scheme over its disk image.
type HorizontalManifest struct {
	NumNodes   int
	VPageBytes int
	Slots      SlotTableManifest
	SizeBytes  int64
	// Codec layout (the Slots table is unused when set).
	Codec     bool
	HeapBase  storage.PageID
	HeapBytes int64
	DirBase   storage.PageID
	Units     int64
	UnitBytes int64
}

// Manifest captures the scheme's layout for saving.
func (h *Horizontal) Manifest() HorizontalManifest {
	return HorizontalManifest{
		NumNodes:   h.numNodes,
		VPageBytes: h.vpageBytes,
		Slots:      h.slots.manifest(),
		SizeBytes:  h.sizeBytes,
		Codec:      h.codec,
		HeapBase:   h.heapBase,
		HeapBytes:  h.heapBytes,
		DirBase:    h.dirBase,
		Units:      h.units,
		UnitBytes:  h.unitBytes,
	}
}

// OpenHorizontal reattaches a saved horizontal scheme.
func OpenHorizontal(d *storage.Disk, grid *cells.Grid, m HorizontalManifest) (*Horizontal, error) {
	if m.Codec {
		return openHorizontalCodec(d, grid, m)
	}
	slots, err := m.Slots.table()
	if err != nil {
		return nil, err
	}
	if m.NumNodes < 1 || m.VPageBytes < 2 {
		return nil, fmt.Errorf("vstore: bad horizontal manifest %+v", m)
	}
	return &Horizontal{
		disk:       d,
		io:         d,
		grid:       grid,
		numNodes:   m.NumNodes,
		slots:      slots,
		vpageBytes: m.VPageBytes,
		sizeBytes:  m.SizeBytes,
		units:      m.Units,
		unitBytes:  m.UnitBytes,
	}, nil
}

// openHorizontalCodec reloads the persisted slot directory (one LE int64
// offset per slot, -1 invisible) and reconstructs unit lengths from the
// offset deltas — exact, because the heap packs units with no padding in
// ascending slot order.
func openHorizontalCodec(d *storage.Disk, grid *cells.Grid, m HorizontalManifest) (*Horizontal, error) {
	if m.NumNodes < 1 || m.HeapBytes < 0 {
		return nil, fmt.Errorf("vstore: bad horizontal codec manifest %+v", m)
	}
	nslots := m.NumNodes * grid.NumCells()
	dirBuf, err := peekBytes(d, m.DirBase, 8*nslots)
	if err != nil {
		return nil, fmt.Errorf("vstore: horizontal codec directory: %w", err)
	}
	dir := make([]heapRef, nslots)
	prev := -1 // previous visible slot
	for i := 0; i < nslots; i++ {
		off := int64(binary.LittleEndian.Uint64(dirBuf[i*8:]))
		if off == nilSlot {
			continue
		}
		if off < 0 || off >= m.HeapBytes {
			return nil, fmt.Errorf("vstore: horizontal codec directory slot %d offset %d outside heap (%d bytes)", i, off, m.HeapBytes)
		}
		if prev >= 0 {
			n := off - dir[prev].off
			if n < codecMinUnitBytes || n > int64(1)<<31-1 {
				return nil, fmt.Errorf("vstore: horizontal codec directory slot %d: unit length %d out of range", prev, n)
			}
			dir[prev].n = int32(n)
		}
		dir[i].off = off
		prev = i
	}
	if prev >= 0 {
		n := m.HeapBytes - dir[prev].off
		if n < codecMinUnitBytes || n > int64(1)<<31-1 {
			return nil, fmt.Errorf("vstore: horizontal codec directory slot %d: unit length %d out of range", prev, n)
		}
		dir[prev].n = int32(n)
	}
	return &Horizontal{
		disk:      d,
		io:        d,
		grid:      grid,
		numNodes:  m.NumNodes,
		sizeBytes: m.SizeBytes,
		codec:     true,
		heapBase:  m.HeapBase,
		heapBytes: m.HeapBytes,
		dirBase:   m.DirBase,
		dir:       dir,
		units:     m.Units,
		unitBytes: m.UnitBytes,
	}, nil
}

// VerticalManifest reopens a vertical scheme over its disk image.
type VerticalManifest struct {
	NumNodes   int
	VPageBytes int
	SegBase    storage.PageID
	SegPages   int
	Slots      SlotTableManifest
	SizeBytes  int64
	// Codec layout (SegBase/SegPages/Slots are unused when set).
	Codec     bool
	HeapBase  storage.PageID
	HeapBytes int64
	CDir      []CodecSegManifest
	Units     int64
	UnitBytes int64
}

// Manifest captures the scheme's layout for saving.
func (v *Vertical) Manifest() VerticalManifest {
	return VerticalManifest{
		NumNodes:   v.numNodes,
		VPageBytes: v.vpageBytes,
		SegBase:    v.segBase,
		SegPages:   v.segPages,
		Slots:      v.slots.manifest(),
		SizeBytes:  v.size,
		Codec:      v.codec,
		HeapBase:   v.heapBase,
		HeapBytes:  v.heapBytes,
		CDir:       codecSegManifests(v.cdir),
		Units:      v.units,
		UnitBytes:  v.unitBytes,
	}
}

// OpenVertical reattaches a saved vertical scheme.
func OpenVertical(d *storage.Disk, grid *cells.Grid, m VerticalManifest) (*Vertical, error) {
	if m.Codec {
		if m.NumNodes < 1 || m.HeapBytes < 0 {
			return nil, fmt.Errorf("vstore: bad vertical codec manifest %+v", m)
		}
		cdir, err := codecDir(m.CDir, grid.NumCells(), m.HeapBytes)
		if err != nil {
			return nil, err
		}
		return &Vertical{
			disk:      d,
			io:        d,
			grid:      grid,
			numNodes:  m.NumNodes,
			size:      m.SizeBytes,
			codec:     true,
			heapBase:  m.HeapBase,
			heapBytes: m.HeapBytes,
			cdir:      cdir,
			units:     m.Units,
			unitBytes: m.UnitBytes,
		}, nil
	}
	slots, err := m.Slots.table()
	if err != nil {
		return nil, err
	}
	if m.NumNodes < 1 || m.VPageBytes < 2 || m.SegPages < 1 {
		return nil, fmt.Errorf("vstore: bad vertical manifest %+v", m)
	}
	return &Vertical{
		disk:       d,
		io:         d,
		grid:       grid,
		numNodes:   m.NumNodes,
		segBase:    m.SegBase,
		segPages:   m.SegPages,
		slots:      slots,
		vpageBytes: m.VPageBytes,
		size:       m.SizeBytes,
		units:      m.Units,
		unitBytes:  m.UnitBytes,
	}, nil
}

// SegmentManifest serializes one indexed-vertical directory entry.
type SegmentManifest struct {
	Start storage.PageID
	Count int32
}

// IndexedVerticalManifest reopens an indexed-vertical scheme.
type IndexedVerticalManifest struct {
	NumNodes   int
	VPageBytes int
	Slots      SlotTableManifest
	Dir        []SegmentManifest
	SizeBytes  int64
	// Codec layout (Slots/Dir are unused when set).
	Codec     bool
	HeapBase  storage.PageID
	HeapBytes int64
	CDir      []CodecSegManifest
	Units     int64
	UnitBytes int64
}

// Manifest captures the scheme's layout for saving.
func (iv *IndexedVertical) Manifest() IndexedVerticalManifest {
	dir := make([]SegmentManifest, len(iv.dir))
	for i, s := range iv.dir {
		dir[i] = SegmentManifest{Start: s.start, Count: s.count}
	}
	return IndexedVerticalManifest{
		NumNodes:   iv.numNodes,
		VPageBytes: iv.vpageBytes,
		Slots:      iv.slots.manifest(),
		Dir:        dir,
		SizeBytes:  iv.size,
		Codec:      iv.codec,
		HeapBase:   iv.heapBase,
		HeapBytes:  iv.heapBytes,
		CDir:       codecSegManifests(iv.cdir),
		Units:      iv.units,
		UnitBytes:  iv.unitBytes,
	}
}

// OpenIndexedVertical reattaches a saved indexed-vertical scheme.
func OpenIndexedVertical(d *storage.Disk, grid *cells.Grid, m IndexedVerticalManifest) (*IndexedVertical, error) {
	if m.Codec {
		if m.NumNodes < 1 || m.HeapBytes < 0 {
			return nil, fmt.Errorf("vstore: bad indexed-vertical codec manifest %+v", m)
		}
		cdir, err := codecDir(m.CDir, grid.NumCells(), m.HeapBytes)
		if err != nil {
			return nil, err
		}
		return &IndexedVertical{
			disk:      d,
			io:        d,
			grid:      grid,
			numNodes:  m.NumNodes,
			size:      m.SizeBytes,
			codec:     true,
			heapBase:  m.HeapBase,
			heapBytes: m.HeapBytes,
			cdir:      cdir,
			units:     m.Units,
			unitBytes: m.UnitBytes,
		}, nil
	}
	slots, err := m.Slots.table()
	if err != nil {
		return nil, err
	}
	if m.NumNodes < 1 || m.VPageBytes < 2 {
		return nil, fmt.Errorf("vstore: bad indexed-vertical manifest %+v", m)
	}
	if len(m.Dir) != grid.NumCells() {
		return nil, fmt.Errorf("vstore: directory has %d segments for %d cells", len(m.Dir), grid.NumCells())
	}
	dir := make([]segDesc, len(m.Dir))
	for i, s := range m.Dir {
		dir[i] = segDesc{start: s.Start, count: s.Count}
	}
	return &IndexedVertical{
		disk:       d,
		io:         d,
		grid:       grid,
		numNodes:   m.NumNodes,
		slots:      slots,
		vpageBytes: m.VPageBytes,
		dir:        dir,
		size:       m.SizeBytes,
		units:      m.Units,
		unitBytes:  m.UnitBytes,
	}, nil
}
