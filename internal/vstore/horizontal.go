package vstore

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// Horizontal is the §4.1 scheme: node-major V-page arrays indexed by cell.
// Storage cost: size_vpage · c · N_node. Query cost: one V-page access per
// node, but the V-pages of one cell are far apart on disk (stride c), so
// walking a cell's visible nodes seeks for every access — the reason the
// horizontal scheme "performs the worst" in Figure 7.
type Horizontal struct {
	disk *storage.Disk
	// io is the read handle V-page accesses charge to: the disk itself for
	// the base scheme, a session's client for views (see View).
	io         storage.Reader
	grid       *cells.Grid
	numNodes   int
	slots      slotTable
	vpageBytes int
	cur        cells.CellID
	hasCell    bool
	sizeBytes  int64
	// vdCacheCap > 0 enables the decoded-V-data cache (EnableVDCache);
	// each view gets its own cache of this capacity, so cached slices are
	// never shared across sessions.
	vdCacheCap int
	vdCache    *vdCache
}

// BuildHorizontal lays out and writes the horizontal scheme for vis.
func BuildHorizontal(d *storage.Disk, vis *core.VisData, vpageBytes int) (*Horizontal, error) {
	vpb := resolveVPageBytes(d, vpageBytes)
	c := vis.Grid.NumCells()
	h := &Horizontal{
		disk:       d,
		io:         d,
		grid:       vis.Grid,
		numNodes:   vis.NumNodes,
		vpageBytes: vpb,
		slots:      newSlotTable(d, vpb, vis.NumNodes*c),
		// Table 2 reports the logical footprint: size_vpage · c · N_node.
		sizeBytes: int64(vpb) * int64(c) * int64(vis.NumNodes),
	}
	// Cells are laid down in ID order (not map order) so the build's
	// write sequence — and therefore the disk image byte stream — is
	// identical on every run.
	for ci := 0; ci < c; ci++ {
		cell := cells.CellID(ci)
		for id, vd := range vis.PerCell[cell] {
			if vd == nil {
				continue // invisible: the reserved V-page stays zero-filled
			}
			buf, err := encodeVPage(vd, vpb)
			if err != nil {
				return nil, err
			}
			if err := h.slots.write(d, h.slotOf(core.NodeID(id), cell), buf); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// slotOf returns the V-page slot for (node, cell): node-major layout, one
// slot per cell.
func (h *Horizontal) slotOf(id core.NodeID, cell cells.CellID) int64 {
	return int64(id)*int64(h.grid.NumCells()) + int64(cell)
}

// Name implements core.VStore.
func (h *Horizontal) Name() string { return "horizontal" }

// View implements core.VStoreViewer: a per-session view sharing the
// on-disk layout but owning its cell cursor and charging reads to io.
func (h *Horizontal) View(io *storage.Client) core.VStore {
	cp := *h
	cp.io = io
	cp.hasCell = false
	cp.vdCache = newVDCache(cp.vdCacheCap)
	return &cp
}

// EnableVDCache turns on a bounded cache of decoded V-page entries for
// this scheme and the views derived from it after the call (capacity in
// V-pages; <= 0 disables). Off by default: the cache masks the horizontal
// scheme's defining cost — scattered single-V-page reads — so the paper's
// Figure 7 comparison must run without it. Walkthrough warm paths opt in.
func (h *Horizontal) EnableVDCache(capacity int) {
	if capacity <= 0 {
		h.vdCacheCap = 0
		h.vdCache = nil
		return
	}
	h.vdCacheCap = capacity
	h.vdCache = newVDCache(capacity)
}

// VDCacheHits reports this view's decoded-V-data cache hits (test hook;
// aggregate accounting flows through Stats.VDCacheHits).
func (h *Horizontal) VDCacheHits() int64 {
	if h.vdCache == nil {
		return 0
	}
	return h.vdCache.hits
}

// SizeBytes implements core.VStore — the Table 2 storage cost.
func (h *Horizontal) SizeBytes() int64 { return h.sizeBytes }

// SetCell implements core.VStore. The horizontal scheme has no per-cell
// segment; switching cells is free.
func (h *Horizontal) SetCell(cell cells.CellID) error {
	if int(cell) < 0 || int(cell) >= h.grid.NumCells() {
		return fmt.Errorf("vstore: cell %d out of range", cell)
	}
	h.cur = cell
	h.hasCell = true
	return nil
}

// NodeVD implements core.VStore: one V-page read per call (§4.1: "A
// visibility query to a node costs one V-page access only").
func (h *Horizontal) NodeVD(id core.NodeID) ([]core.VD, bool, error) {
	if !h.hasCell {
		return nil, false, fmt.Errorf("vstore: no current cell")
	}
	if int(id) < 0 || int(id) >= h.numNodes {
		return nil, false, fmt.Errorf("vstore: node %d out of range", id)
	}
	slot := h.slotOf(id, h.cur)
	if h.vdCache != nil {
		if vd, ok := h.vdCache.get(slot); ok {
			if rec, ok := h.io.(interface{ RecordVDCacheHit() }); ok {
				rec.RecordVDCacheHit()
			}
			return vd, vd != nil, nil
		}
	}
	buf, err := h.slots.read(h.io, slot, storage.ClassLight)
	if err != nil {
		return nil, false, err
	}
	vd, err := decodeVPage(buf)
	if err != nil {
		return nil, false, err
	}
	if h.vdCache != nil {
		h.vdCache.put(slot, vd)
	}
	if vd == nil {
		return nil, false, nil
	}
	return vd, true, nil
}
