package vstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// Horizontal is the §4.1 scheme: node-major V-page arrays indexed by cell.
// Storage cost: size_vpage · c · N_node. Query cost: one V-page access per
// node, but the V-pages of one cell are far apart on disk (stride c), so
// walking a cell's visible nodes seeks for every access — the reason the
// horizontal scheme "performs the worst" in Figure 7.
type Horizontal struct {
	disk *storage.Disk
	// io is the read handle V-page accesses charge to: the disk itself for
	// the base scheme, a session's client for views (see View).
	io         storage.Reader
	grid       *cells.Grid
	numNodes   int
	slots      slotTable
	vpageBytes int
	cur        cells.CellID
	hasCell    bool
	sizeBytes  int64
	// vdCacheCap > 0 enables the decoded-V-data cache (EnableVDCache);
	// each view gets its own cache of this capacity, so cached slices are
	// never shared across sessions.
	vdCacheCap int
	vdCache    *vdCache

	// Codec layout (DESIGN.md §13): variable-length units packed into a
	// byte heap in node-major (ascending slot) order, located by a
	// resident directory instead of fixed slots. The directory is
	// persisted at dirBase as one little-endian int64 offset per slot
	// (-1 for invisible); unit lengths are reconstructed from the offset
	// deltas, exact because the heap has no padding.
	codec     bool
	heapBase  storage.PageID
	heapBytes int64
	dirBase   storage.PageID
	dir       []heapRef // slot → unit; n == 0 marks invisible
	units     int64
	unitBytes int64
}

// BuildHorizontal lays out and writes the horizontal scheme for vis in
// the original fixed-slot layout.
func BuildHorizontal(d *storage.Disk, vis *core.VisData, vpageBytes int) (*Horizontal, error) {
	return BuildHorizontalOpts(d, vis, Options{VPageBytes: vpageBytes})
}

// BuildHorizontalOpts lays out and writes the horizontal scheme for vis.
func BuildHorizontalOpts(d *storage.Disk, vis *core.VisData, opts Options) (*Horizontal, error) {
	if opts.Codec {
		return buildHorizontalCodec(d, vis)
	}
	vpb := resolveVPageBytes(d, opts.VPageBytes)
	c := vis.Grid.NumCells()
	h := &Horizontal{
		disk:       d,
		io:         d,
		grid:       vis.Grid,
		numNodes:   vis.NumNodes,
		vpageBytes: vpb,
		slots:      newSlotTable(d, vpb, vis.NumNodes*c),
		// Table 2 reports the logical footprint: size_vpage · c · N_node.
		sizeBytes: int64(vpb) * int64(c) * int64(vis.NumNodes),
	}
	// Cells are laid down in ID order (not map order) so the build's
	// write sequence — and therefore the disk image byte stream — is
	// identical on every run.
	for ci := 0; ci < c; ci++ {
		cell := cells.CellID(ci)
		for id, vd := range vis.PerCell[cell] {
			if vd == nil {
				continue // invisible: the reserved V-page stays zero-filled
			}
			buf, err := encodeVPage(vd, vpb)
			if err != nil {
				return nil, err
			}
			if err := h.slots.write(d, h.slotOf(core.NodeID(id), cell), buf); err != nil {
				return nil, err
			}
		}
		h.units += int64(vis.VisibleNodes(cell))
	}
	h.unitBytes = h.units * int64(vpb)
	return h, nil
}

// buildHorizontalCodec lays out the codec variant: units packed in
// node-major order — the same scatter character as the slot layout (one
// cell's units are still strided by c across the heap), just denser — and
// a resident directory persisted after the heap. Invisible (node, cell)
// pairs occupy no heap bytes at all, where the slot layout reserves a
// full V-page for them.
func buildHorizontalCodec(d *storage.Disk, vis *core.VisData) (*Horizontal, error) {
	c := vis.Grid.NumCells()
	h := &Horizontal{
		disk:     d,
		io:       d,
		grid:     vis.Grid,
		numNodes: vis.NumNodes,
		codec:    true,
		dir:      make([]heapRef, vis.NumNodes*c),
	}
	var hw heapWriter
	for id := 0; id < vis.NumNodes; id++ {
		for ci := 0; ci < c; ci++ {
			perNode := vis.PerCell[cells.CellID(ci)]
			if id >= len(perNode) || perNode[id] == nil {
				continue
			}
			unit, err := EncodeVPageC(perNode[id])
			if err != nil {
				return nil, err
			}
			off := hw.append(unit)
			h.dir[h.slotOf(core.NodeID(id), cells.CellID(ci))] = heapRef{off: off, n: int32(len(unit))}
			h.units++
			h.unitBytes += int64(len(unit))
		}
	}
	base, heapBytes, err := hw.flush(d)
	if err != nil {
		return nil, err
	}
	h.heapBase, h.heapBytes = base, heapBytes
	// Persist the directory: 8 bytes per slot, -1 for invisible.
	dirBuf := make([]byte, 8*len(h.dir))
	for i, ref := range h.dir {
		off := ref.off
		if ref.n == 0 {
			off = nilSlot
		}
		binary.LittleEndian.PutUint64(dirBuf[i*8:], uint64(off))
	}
	h.dirBase = d.AllocPages(d.PagesFor(int64(len(dirBuf))))
	if err := d.WriteBytes(h.dirBase, dirBuf); err != nil {
		return nil, err
	}
	h.sizeBytes = heapBytes + int64(len(dirBuf))
	return h, nil
}

// slotOf returns the V-page slot for (node, cell): node-major layout, one
// slot per cell.
func (h *Horizontal) slotOf(id core.NodeID, cell cells.CellID) int64 {
	return int64(id)*int64(h.grid.NumCells()) + int64(cell)
}

// Name implements core.VStore.
func (h *Horizontal) Name() string { return "horizontal" }

// View implements core.VStoreViewer: a per-session view sharing the
// on-disk layout but owning its cell cursor and charging reads to io.
func (h *Horizontal) View(io *storage.Client) core.VStore {
	cp := *h
	cp.io = io
	cp.hasCell = false
	cp.vdCache = newVDCache(cp.vdCacheCap)
	return &cp
}

// EnableVDCache turns on a bounded cache of decoded V-page entries for
// this scheme and the views derived from it after the call (capacity in
// V-pages; <= 0 disables). Off by default: the cache masks the horizontal
// scheme's defining cost — scattered single-V-page reads — so the paper's
// Figure 7 comparison must run without it. Walkthrough warm paths opt in.
func (h *Horizontal) EnableVDCache(capacity int) {
	if capacity <= 0 {
		h.vdCacheCap = 0
		h.vdCache = nil
		return
	}
	h.vdCacheCap = capacity
	h.vdCache = newVDCache(capacity)
}

// VDCacheHits reports this view's decoded-V-data cache hits (test hook;
// aggregate accounting flows through Stats.VDCacheHits).
func (h *Horizontal) VDCacheHits() int64 {
	if h.vdCache == nil {
		return 0
	}
	return h.vdCache.hits
}

// SizeBytes implements core.VStore — the Table 2 storage cost.
func (h *Horizontal) SizeBytes() int64 { return h.sizeBytes }

// SetCell implements core.VStore. The horizontal scheme has no per-cell
// segment; switching cells is free.
func (h *Horizontal) SetCell(cell cells.CellID) error {
	if int(cell) < 0 || int(cell) >= h.grid.NumCells() {
		return fmt.Errorf("vstore: cell %d out of range", cell)
	}
	h.cur = cell
	h.hasCell = true
	return nil
}

// NodeVD implements core.VStore: one V-page read per call (§4.1: "A
// visibility query to a node costs one V-page access only").
func (h *Horizontal) NodeVD(id core.NodeID) ([]core.VD, bool, error) {
	if !h.hasCell {
		return nil, false, fmt.Errorf("vstore: no current cell")
	}
	if int(id) < 0 || int(id) >= h.numNodes {
		return nil, false, fmt.Errorf("vstore: node %d out of range", id)
	}
	slot := h.slotOf(id, h.cur)
	if h.codec {
		// The resident directory answers invisible nodes with no I/O —
		// the slot layout's zero-filled V-page read disappears entirely.
		ref := h.dir[slot]
		if ref.n == 0 {
			return nil, false, nil
		}
		if h.vdCache != nil {
			if vd, ok := h.vdCache.get(slot); ok {
				if rec, ok := h.io.(interface{ RecordVDCacheHit() }); ok {
					rec.RecordVDCacheHit()
				}
				return vd, vd != nil, nil
			}
		}
		buf, err := readHeapUnit(h.io, h.heapBase, h.heapBytes, ref)
		if err != nil {
			return nil, false, err
		}
		vd, err := DecodeVPageC(buf)
		if err != nil {
			return nil, false, err
		}
		if h.vdCache != nil {
			h.vdCache.put(slot, vd)
		}
		return vd, vd != nil, nil
	}
	if h.vdCache != nil {
		if vd, ok := h.vdCache.get(slot); ok {
			if rec, ok := h.io.(interface{ RecordVDCacheHit() }); ok {
				rec.RecordVDCacheHit()
			}
			return vd, vd != nil, nil
		}
	}
	buf, err := h.slots.read(h.io, slot, storage.ClassLight)
	if err != nil {
		return nil, false, err
	}
	vd, err := decodeVPage(buf)
	if err != nil {
		return nil, false, err
	}
	if h.vdCache != nil {
		h.vdCache.put(slot, vd)
	}
	if vd == nil {
		return nil, false, nil
	}
	return vd, true, nil
}

// Codec reports whether this scheme uses the compressed V-page layout.
func (h *Horizontal) Codec() bool { return h.codec }

// VPageFootprint reports the stored V-page count and their total on-disk
// byte footprint — the numerator and denominator of the vpagecodec
// experiment's bytes-per-V-page metric.
func (h *Horizontal) VPageFootprint() (units, bytes int64) { return h.units, h.unitBytes }

// DecodedResidentBytes reports the in-memory footprint of decoded V-data
// this view keeps resident (the VD cache), as opposed to the encoded
// bytes the buffer pool holds (PoolStats.ResidentBytes).
func (h *Horizontal) DecodedResidentBytes() int64 {
	if h.vdCache == nil {
		return 0
	}
	return h.vdCache.bytes
}

// CodecCheck decodes every codec unit through the unmetered peek path,
// returning the disk pages of units that fail validation and one problem
// string per failure. Raw-layout schemes have nothing to check.
func (h *Horizontal) CodecCheck() ([]storage.PageID, []string) {
	if !h.codec {
		return nil, nil
	}
	var bad []storage.PageID
	var problems []string
	psz := int64(h.disk.PageSize())
	for slot, ref := range h.dir {
		if ref.n == 0 {
			continue
		}
		buf, err := peekHeapUnit(h.disk, h.heapBase, h.heapBytes, ref)
		if err == nil {
			_, err = DecodeVPageC(buf)
		}
		if err != nil && !skipQuarantined(err) {
			problems = append(problems, fmt.Sprintf("horizontal slot %d: %v", slot, err))
			bad = heapUnitPages(bad, h.heapBase, psz, ref)
		}
	}
	return bad, problems
}
