// Package vstore implements the three on-disk layouts of the HDoV-tree's
// view-variant visibility data (§4 of the paper):
//
//   - Horizontal (§4.1): every node points to an array of V-pages indexed
//     by cell ID. One V-page access per node query, but storage is
//     size_vpage · c · N_node — V-pages exist even for cells where the
//     node is invisible, and the V-pages of one cell are scattered.
//   - Vertical (§4.2): a V-page-index holds, per cell, a segment of N_node
//     V-page pointers (nil for invisible nodes); the current cell's
//     segment is memory-resident and "flipped" on cell change at
//     O(N_node) I/O. V-pages of a cell are stored together in depth-first
//     node order, so a query's V-page reads are nearly sequential.
//   - Indexed-vertical (§4.3): like vertical, but segments store only
//     (offset, pointer) pairs of *visible* nodes, shrinking both the index
//     and the flip cost to O(N_vnode).
//
// V-pages are fixed-size records (DefaultVPageBytes) packed into disk
// pages without crossing page boundaries; accessing a V-page costs one
// disk-page read, matching the paper's "a visibility query to a node costs
// one V-page access". All three schemes serve the same core.VStore
// interface and return byte-identical VD data; integration tests assert
// exactly that.
package vstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/storage"
)

// vdBytes is the encoded size of one V-entry: f64 DoV + i32 NVO.
const vdBytes = 12

// DefaultVPageBytes is the fixed V-page record size: header plus room for
// 20 entries, comfortably above the default R-tree fan-out. The paper's
// Table 2 numbers imply V-pages of a few hundred bytes (4 GB = size_vpage
// · c · N_node with c ≈ 4000).
const DefaultVPageBytes = 256

// encodeVPage packs VD entries into a fixed-size V-page buffer:
// u16 count | count × (f64 DoV, u32 NVO).
func encodeVPage(vd []core.VD, pageBytes int) ([]byte, error) {
	need := 2 + len(vd)*vdBytes
	if need > pageBytes {
		return nil, fmt.Errorf("vstore: %d entries need %d bytes, V-page holds %d", len(vd), need, pageBytes)
	}
	buf := make([]byte, need)
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(vd)))
	off := 2
	for _, v := range vd {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.DoV))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(v.NVO))
		off += vdBytes
	}
	return buf, nil
}

// decodeVPage unpacks a V-page buffer. A zero count (including an
// all-zero, never-written page) decodes to nil.
func decodeVPage(buf []byte) ([]core.VD, error) {
	if len(buf) < 2 {
		return nil, errors.New("vstore: V-page shorter than header")
	}
	n := int(binary.LittleEndian.Uint16(buf[0:]))
	if n == 0 {
		return nil, nil
	}
	if len(buf) < 2+n*vdBytes {
		return nil, fmt.Errorf("vstore: V-page truncated: %d entries, %d bytes", n, len(buf))
	}
	vd := make([]core.VD, n)
	off := 2
	for i := 0; i < n; i++ {
		vd[i].DoV = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		vd[i].NVO = int32(binary.LittleEndian.Uint32(buf[off+8:]))
		off += vdBytes
	}
	return vd, nil
}

// resolveVPageBytes applies the default V-page size and clamps it to the
// disk page size so a V-page never spans pages.
func resolveVPageBytes(d *storage.Disk, vpageBytes int) int {
	if vpageBytes <= 0 {
		vpageBytes = DefaultVPageBytes
	}
	if vpageBytes > d.PageSize() {
		vpageBytes = d.PageSize()
	}
	return vpageBytes
}

// slotTable is a dense array of fixed-size V-page slots packed into disk
// pages so that no slot crosses a page boundary. Slot i lives in page
// base + i/perPage at byte offset (i%perPage)·slotBytes.
type slotTable struct {
	base      storage.PageID
	slotBytes int
	perPage   int
	count     int
}

// nilSlot marks "no V-page" in the schemes' pointer structures.
const nilSlot int64 = -1

// newSlotTable allocates a table of count slots on d.
func newSlotTable(d *storage.Disk, slotBytes, count int) slotTable {
	perPage := d.PageSize() / slotBytes
	if perPage < 1 {
		perPage = 1
	}
	pages := (count + perPage - 1) / perPage
	if pages < 1 {
		pages = 1
	}
	return slotTable{
		base:      d.AllocPages(pages),
		slotBytes: slotBytes,
		perPage:   perPage,
		count:     count,
	}
}

// page returns the disk page holding slot i.
func (t slotTable) page(i int64) storage.PageID {
	return t.base + storage.PageID(i/int64(t.perPage))
}

// offset returns the byte offset of slot i within its page.
func (t slotTable) offset(i int64) int {
	return int(i%int64(t.perPage)) * t.slotBytes
}

// write stores buf (at most slotBytes) into slot i, preserving the other
// slots of the same page.
func (t slotTable) write(d *storage.Disk, i int64, buf []byte) error {
	if i < 0 || i >= int64(t.count) {
		return fmt.Errorf("vstore: slot %d out of range (%d)", i, t.count)
	}
	if len(buf) > t.slotBytes {
		return fmt.Errorf("vstore: %d bytes exceed slot size %d", len(buf), t.slotBytes)
	}
	pageID := t.page(i)
	page, err := d.PeekPage(pageID)
	if err != nil {
		return err
	}
	merged := make([]byte, len(page))
	copy(merged, page)
	copy(merged[t.offset(i):], buf)
	return d.WritePage(pageID, merged)
}

// read fetches slot i through r (the building disk, or a session's
// client), charging one page read of the given class.
func (t slotTable) read(r storage.Reader, i int64, class storage.Class) ([]byte, error) {
	if i < 0 || i >= int64(t.count) {
		return nil, fmt.Errorf("vstore: slot %d out of range (%d)", i, t.count)
	}
	page, err := r.ReadPage(t.page(i), class)
	if err != nil {
		return nil, err
	}
	off := t.offset(i)
	return page[off : off+t.slotBytes], nil
}
