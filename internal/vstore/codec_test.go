package vstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// dyadicVisData fabricates a sparse visibility field whose DoV values are
// exact dyadic fractions (multiples of 2^-16), as the build-time
// quantizer produces: the codec packs these in quantized mode.
func dyadicVisData(t *testing.T, numNodes, nx, ny int, visibleFrac float64, seed int64) *core.VisData {
	t.Helper()
	vis := sparseVisData(t, numNodes, nx, ny, visibleFrac, seed)
	for _, perNode := range vis.PerCell {
		for _, vd := range perNode {
			for i := range vd {
				u := math.Round(math.Ldexp(vd[i].DoV, 16))
				if u < 1 {
					u = 1
				}
				vd[i].DoV = math.Ldexp(u, -16)
			}
		}
	}
	return vis
}

func TestCodecVPageUnitRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		vd   []core.VD
		mode byte // expected header mode byte
	}{
		{"quantized", []core.VD{{DoV: 0.5, NVO: 3}, {DoV: 0.001953125, NVO: 1}, {DoV: 0, NVO: 0}}, 9},
		{"raw64", []core.VD{{DoV: 0.1, NVO: 2}, {DoV: 1e-7, NVO: 9}}, codecModeRaw},
		{"single", []core.VD{{DoV: 0.25, NVO: 1}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf, err := EncodeVPageC(tc.vd)
			if err != nil {
				t.Fatal(err)
			}
			if buf[2] != tc.mode {
				t.Fatalf("mode byte %02x, want %02x", buf[2], tc.mode)
			}
			got, err := DecodeVPageC(buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.vd) {
				t.Fatalf("len %d, want %d", len(got), len(tc.vd))
			}
			for i := range tc.vd {
				if got[i] != tc.vd[i] {
					t.Fatalf("entry %d: %+v != %+v", i, got[i], tc.vd[i])
				}
			}
		})
	}

	// The empty unit decodes to nil — the scheme treats it as invisible.
	buf, err := EncodeVPageC(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeVPageC(buf); got != nil || err != nil {
		t.Fatalf("empty unit: got %v, %v", got, err)
	}
}

// Quantized mode must round-trip any multiple of 2^-shift bit-exactly —
// the property the byte-identity guarantee rests on.
func TestCodecVPageQuantExactness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		shift := uint(1 + r.Intn(40))
		n := 1 + r.Intn(20)
		vd := make([]core.VD, n)
		for i := range vd {
			vd[i] = core.VD{
				DoV: math.Ldexp(float64(1+r.Intn(1<<16)), -int(shift)),
				NVO: int32(r.Intn(1 << 20)),
			}
		}
		buf, err := EncodeVPageC(vd)
		if err != nil {
			t.Fatal(err)
		}
		if buf[2] == codecModeRaw {
			t.Fatalf("trial %d: dyadic data fell back to raw64", trial)
		}
		got, err := DecodeVPageC(buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vd {
			if got[i] != vd[i] {
				t.Fatalf("trial %d entry %d: %v != %v", trial, i, got[i], vd[i])
			}
		}
	}
}

func TestCodecPointerSegmentRoundTrip(t *testing.T) {
	const numNodes = 37
	lens := make([]int64, numNodes)
	var blockBytes int64
	for id := range lens {
		lens[id] = -1
		if id%3 == 0 {
			lens[id] = int64(codecMinUnitBytes + id)
			blockBytes += lens[id]
		}
	}
	buf, err := EncodePointerSegmentC(numNodes, lens)
	if err != nil {
		t.Fatal(err)
	}
	offs, gotLens, err := DecodePointerSegmentC(buf, numNodes, blockBytes)
	if err != nil {
		t.Fatal(err)
	}
	var next int64
	for id := 0; id < numNodes; id++ {
		if lens[id] < 0 {
			if offs[id] != nilSlot {
				t.Fatalf("node %d: invisible but offset %d", id, offs[id])
			}
			continue
		}
		if offs[id] != next || int64(gotLens[id]) != lens[id] {
			t.Fatalf("node %d: (%d,%d), want (%d,%d)", id, offs[id], gotLens[id], next, lens[id])
		}
		next += lens[id]
	}
	// Wrong scheme width is rejected.
	if _, _, err := DecodePointerSegmentC(buf, numNodes+1, blockBytes); !IsCodecError(err) {
		t.Fatalf("node-count mismatch accepted: %v", err)
	}
	// A shrunken block bound catches out-of-range prefix sums.
	if _, _, err := DecodePointerSegmentC(buf, numNodes, blockBytes-1); !IsCodecError(err) {
		t.Fatalf("overflowing block accepted: %v", err)
	}
}

func TestCodecIndexSegmentRoundTrip(t *testing.T) {
	const numNodes = 100
	ids := []int{2, 3, 17, 64, 99}
	lens := []int64{10, 12, 9, 40, 8}
	var blockBytes int64
	for _, ln := range lens {
		blockBytes += ln
	}
	const base = int64(1 << 20)
	buf, err := EncodeIndexSegmentC(ids, lens)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DecodeIndexSegmentC(buf, numNodes, base, blockBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(ids) {
		t.Fatalf("%d entries, want %d", len(m), len(ids))
	}
	next := base
	for i, id := range ids {
		ref, ok := m[core.NodeID(id)]
		if !ok {
			t.Fatalf("node %d missing", id)
		}
		if ref.off != next || int64(ref.n) != lens[i] {
			t.Fatalf("node %d: (%d,%d), want (%d,%d)", id, ref.off, ref.n, next, lens[i])
		}
		next += lens[i]
	}
	// Out-of-range id rejected.
	if _, err := DecodeIndexSegmentC(buf, 99, base, blockBytes); !IsCodecError(err) {
		t.Fatalf("out-of-range node accepted: %v", err)
	}
	// Non-ascending ids rejected at encode time.
	if _, err := EncodeIndexSegmentC([]int{5, 5}, []int64{8, 8}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}

// buildBothLayouts builds raw and codec variants of all three schemes on
// one disk.
func buildBothLayouts(t *testing.T, vis *core.VisData) (d *storage.Disk, raw, codec [3]core.VStore) {
	t.Helper()
	d = storage.NewDisk(0, storage.DefaultCostModel())
	h, err := BuildHorizontal(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BuildVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := BuildIndexedVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := BuildHorizontalOpts(d, vis, Options{Codec: true})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := BuildVerticalOpts(d, vis, Options{Codec: true})
	if err != nil {
		t.Fatal(err)
	}
	civ, err := BuildIndexedVerticalOpts(d, vis, Options{Codec: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, [3]core.VStore{h, v, iv}, [3]core.VStore{ch, cv, civ}
}

// Codec schemes must answer every (cell, node) query identically to their
// raw counterparts — on dyadic (quantized-mode) and arbitrary
// (raw64-fallback-mode) visibility data alike.
func TestCodecSchemesMatchRaw(t *testing.T) {
	for _, tc := range []struct {
		name string
		vis  *core.VisData
	}{
		{"dyadic", dyadicVisData(t, 150, 5, 5, 0.2, 3)},
		{"raw64", sparseVisData(t, 150, 5, 5, 0.2, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, raw, codec := buildBothLayouts(t, tc.vis)
			for c := 0; c < tc.vis.Grid.NumCells(); c++ {
				cell := cells.CellID(c)
				for i := range raw {
					if err := raw[i].SetCell(cell); err != nil {
						t.Fatal(err)
					}
					if err := codec[i].SetCell(cell); err != nil {
						t.Fatal(err)
					}
				}
				for id := 0; id < tc.vis.NumNodes; id++ {
					for i := range raw {
						want, okW, err := raw[i].NodeVD(core.NodeID(id))
						if err != nil {
							t.Fatal(err)
						}
						got, okG, err := codec[i].NodeVD(core.NodeID(id))
						if err != nil {
							t.Fatalf("%s cell %d node %d: %v", codec[i].Name(), cell, id, err)
						}
						if okW != okG || len(want) != len(got) {
							t.Fatalf("%s cell %d node %d: visibility mismatch", codec[i].Name(), cell, id)
						}
						for ei := range want {
							if want[ei] != got[ei] {
								t.Fatalf("%s cell %d node %d entry %d: %+v != %+v",
									codec[i].Name(), cell, id, ei, want[ei], got[ei])
							}
						}
					}
				}
			}
		})
	}
}

// The codec layout must be dramatically smaller than the raw slot layout:
// the ISSUE gate is >= 3x fewer bytes per stored V-page.
func TestCodecFootprintReduction(t *testing.T) {
	vis := dyadicVisData(t, 400, 8, 8, 0.1, 9)
	_, raw, codec := buildBothLayouts(t, vis)
	for i := range raw {
		ru, rb := raw[i].(interface{ VPageFootprint() (int64, int64) }).VPageFootprint()
		cu, cb := codec[i].(interface{ VPageFootprint() (int64, int64) }).VPageFootprint()
		if ru != cu {
			t.Fatalf("%s: unit counts differ: %d vs %d", raw[i].Name(), ru, cu)
		}
		if rb < 3*cb {
			t.Fatalf("%s: raw %d bytes vs codec %d — reduction below 3x", raw[i].Name(), rb, cb)
		}
		if codec[i].SizeBytes() >= raw[i].SizeBytes() {
			t.Fatalf("%s: codec SizeBytes %d not below raw %d",
				raw[i].Name(), codec[i].SizeBytes(), raw[i].SizeBytes())
		}
	}
}

// Codec schemes must survive the manifest save/open round trip and answer
// identically afterwards.
func TestCodecManifestRoundTrip(t *testing.T) {
	vis := dyadicVisData(t, 120, 4, 4, 0.25, 5)
	d, _, codec := buildBothLayouts(t, vis)
	ch, cv, civ := codec[0].(*Horizontal), codec[1].(*Vertical), codec[2].(*IndexedVertical)

	oh, err := OpenHorizontal(d, vis.Grid, ch.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	ov, err := OpenVertical(d, vis.Grid, cv.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	oiv, err := OpenIndexedVertical(d, vis.Grid, civ.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	reopened := [3]core.VStore{oh, ov, oiv}
	for i, s := range reopened {
		if !s.(interface{ Codec() bool }).Codec() {
			t.Fatalf("%s: codec flag lost in manifest", s.Name())
		}
		if s.SizeBytes() != codec[i].SizeBytes() {
			t.Fatalf("%s: size changed through manifest", s.Name())
		}
	}
	for c := 0; c < vis.Grid.NumCells(); c++ {
		cell := cells.CellID(c)
		for i := range codec {
			if err := codec[i].SetCell(cell); err != nil {
				t.Fatal(err)
			}
			if err := reopened[i].SetCell(cell); err != nil {
				t.Fatal(err)
			}
		}
		for id := 0; id < vis.NumNodes; id++ {
			for i := range codec {
				want, okW, err := codec[i].NodeVD(core.NodeID(id))
				if err != nil {
					t.Fatal(err)
				}
				got, okG, err := reopened[i].NodeVD(core.NodeID(id))
				if err != nil {
					t.Fatal(err)
				}
				if okW != okG || len(want) != len(got) {
					t.Fatalf("%s cell %d node %d: mismatch after reopen", reopened[i].Name(), cell, id)
				}
				for ei := range want {
					if want[ei] != got[ei] {
						t.Fatalf("%s cell %d node %d entry %d mismatch", reopened[i].Name(), cell, id, ei)
					}
				}
			}
		}
	}
}

// CellPages coverage proof for codec layouts: warming exactly the listed
// pages must make a fresh view's SetCell + full NodeVD sweep free.
func TestCodecCellPagesCoverDemandReads(t *testing.T) {
	vis := dyadicVisData(t, 150, 4, 4, 0.2, 6)
	d, _, codec := buildBothLayouts(t, vis)
	d.SetCacheSize(int(d.NumPages()) + 1)
	defer d.SetCacheSize(0)

	for _, s := range codec {
		pager := s.(core.CellPager)
		viewer := s.(core.VStoreViewer)
		t.Run(s.Name(), func(t *testing.T) {
			for _, cell := range []cells.CellID{0, 7, 15} {
				pages, err := pager.CellPages(d, cell)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[storage.PageID]bool{}
				for _, p := range pages {
					if seen[p] {
						t.Fatalf("cell %d: page %d listed twice", cell, p)
					}
					seen[p] = true
					if err := d.PrefetchPage(p, nil); err != nil {
						t.Fatal(err)
					}
				}
				c := d.NewClient()
				view := viewer.View(c)
				if err := view.SetCell(cell); err != nil {
					t.Fatal(err)
				}
				visible := 0
				for id := 0; id < vis.NumNodes; id++ {
					_, ok, err := view.NodeVD(core.NodeID(id))
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						visible++
					}
				}
				if st := c.Stats(); st.Reads != 0 {
					t.Fatalf("cell %d: %d demand reads missed the warmed pool (%d pages listed)",
						cell, st.Reads, len(pages))
				}
				if visible == 0 {
					t.Fatalf("cell %d: no visible nodes — coverage proof is vacuous", cell)
				}
				d.SetCacheSize(0)
				d.SetCacheSize(int(d.NumPages()) + 1)
			}
		})
	}
}

// CodecCheck must pin tampered heap bytes to their pages, and must excuse
// pages already parked in the disk's quarantine set (known damage).
func TestCodecCheckDetectsTamper(t *testing.T) {
	vis := dyadicVisData(t, 120, 4, 4, 0.25, 8)
	d, _, codec := buildBothLayouts(t, vis)
	type checker interface {
		CodecCheck() ([]storage.PageID, []string)
	}
	for _, s := range codec {
		bad, problems := s.(checker).CodecCheck()
		if len(bad) != 0 || len(problems) != 0 {
			t.Fatalf("%s: pristine scheme reported damage: %v %v", s.Name(), bad, problems)
		}
	}

	cv := codec[1].(*Vertical)
	page, err := d.PeekPage(cv.heapBase)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), page...)
	for i := 2; i < 12; i++ {
		tampered[i] ^= 0x5A
	}
	if err := d.WritePage(cv.heapBase, tampered); err != nil {
		t.Fatal(err)
	}
	bad, problems := cv.CodecCheck()
	if len(bad) == 0 || len(problems) == 0 {
		t.Fatal("tampered heap page not detected")
	}
	for _, id := range bad {
		d.Quarantine(id)
	}
	if bad2, problems2 := cv.CodecCheck(); len(bad2) != 0 || len(problems2) != 0 {
		t.Fatalf("quarantined damage re-reported: %v %v", bad2, problems2)
	}
	d.ClearQuarantine()
	if err := d.WritePage(cv.heapBase, page); err != nil {
		t.Fatal(err)
	}
}

// Decoded-resident accounting: a view that decodes V-data reports the
// bytes it holds, separate from the pool's encoded-resident bytes.
func TestCodecDecodedResidentBytes(t *testing.T) {
	vis := dyadicVisData(t, 100, 4, 4, 0.3, 10)
	d, _, codec := buildBothLayouts(t, vis)

	ch := *codec[0].(*Horizontal)
	ch.EnableVDCache(1024)
	view := ch.View(d.NewClient()).(*Horizontal)
	if view.DecodedResidentBytes() != 0 {
		t.Fatal("fresh view reports resident decoded bytes")
	}
	if err := view.SetCell(0); err != nil {
		t.Fatal(err)
	}
	entries := 0
	for id := 0; id < vis.NumNodes; id++ {
		vd, ok, err := view.NodeVD(core.NodeID(id))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			entries += len(vd)
		}
	}
	if want := int64(entries) * vdMemBytes; view.DecodedResidentBytes() != want {
		t.Fatalf("DecodedResidentBytes = %d, want %d", view.DecodedResidentBytes(), want)
	}

	cv := codec[1].(*Vertical).View(d.NewClient()).(*Vertical)
	if err := cv.SetCell(0); err != nil {
		t.Fatal(err)
	}
	if cv.DecodedResidentBytes() <= 0 {
		t.Fatal("vertical view reports no resident flip state")
	}
}
