package vstore

import (
	"repro/internal/core"
)

// vdCache holds decoded V-page entries for the horizontal scheme, keyed by
// V-page slot (which encodes node and cell together, so cached entries
// survive cell flips — the point: a walkthrough revisiting a neighboring
// cell re-reads the same scattered V-pages and, worse, re-decodes them).
// Bounded FIFO: eviction follows insertion order, so cache contents are a
// pure function of the access sequence — no clocks, no recency heaps —
// which the determinism suite relies on.
//
// Invisible results (nil entries) are cached too; for the horizontal
// scheme an invisible node still costs a full V-page read, so a negative
// hit saves as much as a positive one.
type vdCache struct {
	cap     int
	entries map[int64][]core.VD
	fifo    []int64 // insertion order; fifo[0] is the next victim
	hits    int64
	// bytes is the decoded in-memory footprint of the cached entries —
	// the "decoded-resident" side of the codec layer's size accounting,
	// vs the encoded bytes the buffer pool holds.
	bytes int64
}

// vdMemBytes is the in-memory size of one decoded core.VD (f64 + i32,
// padded).
const vdMemBytes = 16

func newVDCache(capacity int) *vdCache {
	if capacity <= 0 {
		return nil
	}
	return &vdCache{
		cap:     capacity,
		entries: make(map[int64][]core.VD, capacity),
	}
}

// get returns the cached entries for slot. The second result reports
// presence: (nil, true) is a cached invisible node, (nil, false) a miss.
func (c *vdCache) get(slot int64) ([]core.VD, bool) {
	vd, ok := c.entries[slot]
	if ok {
		c.hits++
	}
	return vd, ok
}

// put inserts (or refreshes) slot, evicting the oldest entry when full.
func (c *vdCache) put(slot int64, vd []core.VD) {
	if _, ok := c.entries[slot]; ok {
		return // already cached; FIFO position unchanged
	}
	if len(c.entries) >= c.cap {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		c.bytes -= int64(len(c.entries[victim])) * vdMemBytes
		delete(c.entries, victim)
	}
	c.entries[slot] = vd
	c.fifo = append(c.fifo, slot)
	c.bytes += int64(len(vd)) * vdMemBytes
}
