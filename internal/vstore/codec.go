package vstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/storage"
)

// The codec V-page layer (DESIGN.md §13): an opt-in on-disk layout that
// replaces the fixed 256-byte V-page slots with a packed heap of
// variable-length, self-checking units. Three unit kinds exist, each with
// a common header (magic, version) and a CRC32 trailer:
//
//	V-page unit (0xD1)      — DoV/NVO entries, fixed-point varints
//	pointer segment (0xD2)  — vertical flip index: bitmap + unit lengths
//	index segment (0xD3)    — indexed flip index: id-delta + unit lengths
//
// DoV values are stored as uvarint unit counts on a dyadic 2^-shift grid
// (the per-page mode byte carries the shift). The build already snapped
// the values onto that grid (core/quant.go), so encoding is lossless and
// query results are byte-identical to the raw layout. Pages holding
// values that are not exactly dyadic — hand-built fields, per-cell
// quantization fallbacks — use the raw64 mode (codecModeRaw), which is a
// straight float64 bit image and equally exact.
//
// Units live in a byte-addressed heap and may straddle disk pages; every
// reader knows a unit's exact byte length up front (from the scheme's
// directory or flip segment), so a unit access is one short sequential
// ReadBytes run. Segments store unit *lengths*, not offsets: offsets are
// prefix sums, which delta-compresses the index for free and makes a
// corrupt length surface as an out-of-range error instead of a misread.

const (
	codecMagicVPage      = 0xD1
	codecMagicPointerSeg = 0xD2
	codecMagicIndexSeg   = 0xD3
	codecVersion         = 1
	// codecModeRaw marks a V-page whose payload is raw float64 bit images
	// (values not representable on any dyadic grid ≤ maxCodecShift).
	codecModeRaw = 0xFF
	// maxCodecShift is the widest dyadic grid: beyond 52 fraction bits
	// integer unit counts no longer round-trip through float64.
	maxCodecShift = 52
	crcBytes      = 4
	// codecMinUnitBytes is the smallest well-formed unit: magic, version,
	// mode, count, CRC.
	codecMinUnitBytes = 3 + 1 + crcBytes
	// maxCodecEntries bounds a V-page's entry count (mirrors the raw
	// layout's u16 count), so a corrupt count cannot drive a huge alloc.
	maxCodecEntries = 1 << 16
)

// errCodec wraps every codec validation failure for errors.Is checks.
var errCodec = errors.New("vstore: bad codec unit")

func codecErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errCodec, fmt.Sprintf(format, args...))
}

// IsCodecError reports whether err is a codec validation failure (torn or
// malformed unit), as opposed to an I/O error.
func IsCodecError(err error) bool { return errors.Is(err, errCodec) }

// skipQuarantined reports whether err is the fail-fast read of an already
// quarantined page — damage that is recorded and neutralized, which codec
// verification therefore does not re-report.
func skipQuarantined(err error) bool {
	var ce *storage.CorruptError
	return errors.As(err, &ce) && ce.Quarantined
}

// codecShiftFor returns the smallest dyadic grid (fraction bits) that
// represents f exactly, or -1 when no grid ≤ maxCodecShift does.
func codecShiftFor(f float64) int {
	if f == 0 {
		return 0
	}
	if f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
		return -1
	}
	for s := 0; s <= maxCodecShift; s++ {
		u := math.Ldexp(f, s)
		if u >= 1<<53 {
			return -1
		}
		if u == math.Trunc(u) {
			return s
		}
	}
	return -1
}

// appendCRC seals a unit: appends the CRC32 (IEEE) of everything before it.
func appendCRC(buf []byte) []byte {
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// checkCRC verifies that buf is exactly payload (pos bytes) + CRC trailer.
func checkCRC(buf []byte, pos int) error {
	if len(buf) != pos+crcBytes {
		return codecErrf("unit is %d bytes, payload ends at %d (truncated or trailing bytes)", len(buf), pos)
	}
	want := binary.LittleEndian.Uint32(buf[pos:])
	if got := crc32.ChecksumIEEE(buf[:pos]); got != want {
		return codecErrf("CRC %08x, stored %08x", got, want)
	}
	return nil
}

// uvarintAt decodes one uvarint from buf[pos:], returning the value and
// the next position.
func uvarintAt(buf []byte, pos int, what string) (uint64, int, error) {
	v, w := binary.Uvarint(buf[pos:])
	if w <= 0 {
		return 0, 0, codecErrf("truncated or overlong %s varint at byte %d", what, pos)
	}
	return v, pos + w, nil
}

// EncodeVPageC encodes VD entries as one codec V-page unit. The page's
// mode is the widest dyadic shift its DoV values need; pages holding
// non-dyadic values (or negative NVOs, on hand-built data) fall back to
// the exact raw64 mode. Both modes decode to bit-identical float64s.
func EncodeVPageC(vd []core.VD) ([]byte, error) {
	if len(vd) >= maxCodecEntries {
		return nil, fmt.Errorf("vstore: %d entries exceed the codec V-page limit %d", len(vd), maxCodecEntries-1)
	}
	shift, raw := 0, false
	for _, v := range vd {
		s := codecShiftFor(v.DoV)
		if s < 0 || v.NVO < 0 {
			raw = true
			break
		}
		if s > shift {
			shift = s
		}
	}
	mode := byte(shift)
	if raw {
		mode = codecModeRaw
	}
	buf := make([]byte, 0, 4+len(vd)*12+crcBytes)
	buf = append(buf, codecMagicVPage, codecVersion, mode)
	buf = binary.AppendUvarint(buf, uint64(len(vd)))
	for _, v := range vd {
		if raw {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.DoV))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v.NVO))
		} else {
			buf = binary.AppendUvarint(buf, uint64(math.Ldexp(v.DoV, shift)))
			buf = binary.AppendUvarint(buf, uint64(v.NVO))
		}
	}
	return appendCRC(buf), nil
}

// DecodeVPageC decodes one codec V-page unit, validating the header, the
// payload bounds, and the CRC trailer. Malformed input of any shape — bad
// magic, unknown version, shift overflow, truncated varints, torn CRC —
// returns an error (wrapping errCodec), never panics.
//
// hdov:hot-path
func DecodeVPageC(buf []byte) ([]core.VD, error) {
	if len(buf) < codecMinUnitBytes {
		return nil, codecErrf("V-page unit is %d bytes, minimum %d", len(buf), codecMinUnitBytes)
	}
	if buf[0] != codecMagicVPage {
		return nil, codecErrf("V-page magic %02x, want %02x", buf[0], codecMagicVPage)
	}
	if buf[1] != codecVersion {
		return nil, codecErrf("V-page version %d, want %d", buf[1], codecVersion)
	}
	mode := buf[2]
	if mode != codecModeRaw && mode > maxCodecShift {
		return nil, codecErrf("V-page shift %d overflows float64 (max %d)", mode, maxCodecShift)
	}
	n, pos, err := uvarintAt(buf, 3, "entry count")
	if err != nil {
		return nil, err
	}
	if n >= maxCodecEntries {
		return nil, codecErrf("entry count %d exceeds limit %d", n, maxCodecEntries-1)
	}
	vd := make([]core.VD, n)
	for i := range vd {
		if mode == codecModeRaw {
			if pos+12 > len(buf) {
				return nil, codecErrf("raw64 entry %d truncated", i)
			}
			vd[i].DoV = math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))
			vd[i].NVO = int32(binary.LittleEndian.Uint32(buf[pos+8:]))
			pos += 12
		} else {
			var units, nvo uint64
			if units, pos, err = uvarintAt(buf, pos, "DoV"); err != nil {
				return nil, err
			}
			if units >= 1<<53 {
				return nil, codecErrf("entry %d: %d grid units overflow the float64 mantissa", i, units)
			}
			if nvo, pos, err = uvarintAt(buf, pos, "NVO"); err != nil {
				return nil, err
			}
			if nvo > math.MaxInt32 {
				return nil, codecErrf("entry %d: NVO %d overflows int32", i, nvo)
			}
			vd[i].DoV = math.Ldexp(float64(units), -int(mode))
			vd[i].NVO = int32(nvo)
		}
	}
	if err := checkCRC(buf, pos); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	return vd, nil
}

// EncodePointerSegmentC encodes a vertical-scheme codec flip segment:
// a visibility bitmap over all numNodes nodes plus, per visible node in
// id order, the uvarint byte length of its V-page unit. Unit offsets are
// the prefix sums, so the segment is the vertical index delta-compressed.
// lens[id] < 0 marks an invisible node.
func EncodePointerSegmentC(numNodes int, lens []int64) ([]byte, error) {
	if len(lens) != numNodes {
		return nil, fmt.Errorf("vstore: %d lengths for %d nodes", len(lens), numNodes)
	}
	bitmap := make([]byte, (numNodes+7)/8)
	for id, ln := range lens {
		if ln >= 0 {
			bitmap[id/8] |= 1 << (id % 8)
		}
	}
	buf := make([]byte, 0, 4+len(bitmap)+numNodes+crcBytes)
	buf = append(buf, codecMagicPointerSeg, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(numNodes))
	buf = append(buf, bitmap...)
	for _, ln := range lens {
		if ln >= 0 {
			buf = binary.AppendUvarint(buf, uint64(ln))
		}
	}
	return appendCRC(buf), nil
}

// DecodePointerSegmentC parses a vertical codec flip segment, returning
// per-node byte offsets relative to the cell's V-page block start
// (nilSlot for invisible nodes) and the unit lengths. Every length is
// validated against codecMinUnitBytes and the running prefix sum against
// blockBytes, so a corrupt segment fails at flip time rather than as a
// misdirected heap read mid-query.
//
// hdov:hot-path
func DecodePointerSegmentC(buf []byte, numNodes int, blockBytes int64) ([]int64, []int32, error) {
	if numNodes < 0 {
		return nil, nil, codecErrf("negative node count %d", numNodes)
	}
	if len(buf) < codecMinUnitBytes {
		return nil, nil, codecErrf("pointer segment is %d bytes, minimum %d", len(buf), codecMinUnitBytes)
	}
	if buf[0] != codecMagicPointerSeg {
		return nil, nil, codecErrf("pointer segment magic %02x, want %02x", buf[0], codecMagicPointerSeg)
	}
	if buf[1] != codecVersion {
		return nil, nil, codecErrf("pointer segment version %d, want %d", buf[1], codecVersion)
	}
	n, pos, err := uvarintAt(buf, 2, "node count")
	if err != nil {
		return nil, nil, err
	}
	if n != uint64(numNodes) {
		return nil, nil, codecErrf("segment covers %d nodes, scheme has %d", n, numNodes)
	}
	bitmapBytes := (numNodes + 7) / 8
	if pos+bitmapBytes > len(buf) {
		return nil, nil, codecErrf("visibility bitmap truncated")
	}
	bitmap := buf[pos : pos+bitmapBytes]
	pos += bitmapBytes
	offs := make([]int64, numNodes)
	lens := make([]int32, numNodes)
	var next int64
	for id := 0; id < numNodes; id++ {
		if bitmap[id/8]&(1<<(id%8)) == 0 {
			offs[id] = nilSlot
			continue
		}
		var ln uint64
		if ln, pos, err = uvarintAt(buf, pos, "unit length"); err != nil {
			return nil, nil, err
		}
		if ln < codecMinUnitBytes || int64(ln) > blockBytes {
			return nil, nil, codecErrf("node %d unit length %d out of range (block %d bytes)", id, ln, blockBytes)
		}
		offs[id] = next
		lens[id] = int32(ln)
		next += int64(ln)
		if next > blockBytes {
			return nil, nil, codecErrf("node %d unit ends at %d, past block end %d", id, next, blockBytes)
		}
	}
	if err := checkCRC(buf, pos); err != nil {
		return nil, nil, err
	}
	return offs, lens, nil
}

// EncodeIndexSegmentC encodes an indexed-vertical codec flip segment:
// only the visible nodes appear, as (id delta, unit length) uvarint
// pairs in ascending id order — the §4.3 index with both columns
// delta/varint packed.
func EncodeIndexSegmentC(ids []int, lens []int64) ([]byte, error) {
	if len(ids) != len(lens) {
		return nil, fmt.Errorf("vstore: %d ids, %d lengths", len(ids), len(lens))
	}
	buf := make([]byte, 0, 4+len(ids)*3+crcBytes)
	buf = append(buf, codecMagicIndexSeg, codecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := -1
	for i, id := range ids {
		if id <= prev {
			return nil, fmt.Errorf("vstore: ids not strictly ascending at %d", i)
		}
		buf = binary.AppendUvarint(buf, uint64(id-prev))
		buf = binary.AppendUvarint(buf, uint64(lens[i]))
		prev = id
	}
	return appendCRC(buf), nil
}

// DecodeIndexSegmentC parses an indexed-vertical codec flip segment into
// a node → heap-reference map. base is the absolute heap offset of the
// cell's V-page block (units follow the segment); blockBytes bounds the
// prefix sums. Ids must be strictly ascending and in range, lengths
// plausible — a corrupt segment cannot silently alias two nodes onto one
// unit or point outside the heap.
//
// hdov:hot-path
func DecodeIndexSegmentC(buf []byte, numNodes int, base, blockBytes int64) (map[core.NodeID]heapRef, error) {
	if len(buf) < codecMinUnitBytes {
		return nil, codecErrf("index segment is %d bytes, minimum %d", len(buf), codecMinUnitBytes)
	}
	if buf[0] != codecMagicIndexSeg {
		return nil, codecErrf("index segment magic %02x, want %02x", buf[0], codecMagicIndexSeg)
	}
	if buf[1] != codecVersion {
		return nil, codecErrf("index segment version %d, want %d", buf[1], codecVersion)
	}
	n, pos, err := uvarintAt(buf, 2, "entry count")
	if err != nil {
		return nil, err
	}
	if n > uint64(numNodes) {
		return nil, codecErrf("%d entries for %d nodes", n, numNodes)
	}
	m := make(map[core.NodeID]heapRef, n)
	id := -1
	var next int64
	for i := uint64(0); i < n; i++ {
		var delta, ln uint64
		if delta, pos, err = uvarintAt(buf, pos, "id delta"); err != nil {
			return nil, err
		}
		if delta == 0 {
			return nil, codecErrf("entry %d: zero id delta (duplicate node)", i)
		}
		if uint64(id)+delta > uint64(numNodes-1) {
			return nil, codecErrf("entry %d: node %d out of range (%d nodes)", i, uint64(id)+delta, numNodes)
		}
		id += int(delta)
		if ln, pos, err = uvarintAt(buf, pos, "unit length"); err != nil {
			return nil, err
		}
		if ln < codecMinUnitBytes || int64(ln) > blockBytes {
			return nil, codecErrf("node %d unit length %d out of range (block %d bytes)", id, ln, blockBytes)
		}
		m[core.NodeID(id)] = heapRef{off: base + next, n: int32(ln)}
		next += int64(ln)
		if next > blockBytes {
			return nil, codecErrf("node %d unit ends at %d, past block end %d", id, next, blockBytes)
		}
	}
	if err := checkCRC(buf, pos); err != nil {
		return nil, err
	}
	return m, nil
}

// heapRef locates one encoded unit inside a codec heap: absolute byte
// offset and exact byte length.
type heapRef struct {
	off int64
	n   int32
}

// heapWriter accumulates a codec heap in memory during a build; flush
// lays it on disk as one contiguous extent. Units are packed back to
// back with no padding — readers know exact lengths, and a unit that
// straddles a page boundary just reads one extra sequential page.
type heapWriter struct {
	buf []byte
}

// append adds one unit and returns its byte offset in the heap.
func (w *heapWriter) append(unit []byte) int64 {
	off := int64(len(w.buf))
	w.buf = append(w.buf, unit...)
	return off
}

// flush allocates the heap's pages and writes it, returning the base page
// and the heap's exact byte length.
func (w *heapWriter) flush(d *storage.Disk) (storage.PageID, int64, error) {
	base := d.AllocPages(d.PagesFor(int64(len(w.buf))))
	if len(w.buf) == 0 {
		return base, 0, nil
	}
	if err := d.WriteBytes(base, w.buf); err != nil {
		return 0, 0, err
	}
	return base, int64(len(w.buf)), nil
}

// readHeapUnit fetches one unit (heap-relative byte offset, exact length)
// through r, charged as one short sequential light run starting at the
// unit's first page. The simulated transfer cost is therefore paid on
// *encoded* bytes: a 40-byte unit costs one page, not one fixed slot per
// entry fan-out.
func readHeapUnit(r storage.Reader, base storage.PageID, heapBytes int64, ref heapRef) ([]byte, error) {
	if ref.off < 0 || ref.n < int32(codecMinUnitBytes) || ref.off+int64(ref.n) > heapBytes {
		return nil, codecErrf("heap unit [%d,%d) outside heap (%d bytes)", ref.off, ref.off+int64(ref.n), heapBytes)
	}
	psz := int64(r.PageSize())
	page := base + storage.PageID(ref.off/psz)
	skip := int(ref.off % psz)
	buf, err := r.ReadBytes(page, skip+int(ref.n), storage.ClassLight)
	if err != nil {
		return nil, err
	}
	return buf[skip : skip+int(ref.n)], nil
}

// peekHeapUnit is readHeapUnit against the disk's unmetered PeekPage —
// fsck's codec walk must not pollute the experiment counters.
func peekHeapUnit(d *storage.Disk, base storage.PageID, heapBytes int64, ref heapRef) ([]byte, error) {
	if ref.off < 0 || ref.n < int32(codecMinUnitBytes) || ref.off+int64(ref.n) > heapBytes {
		return nil, codecErrf("heap unit [%d,%d) outside heap (%d bytes)", ref.off, ref.off+int64(ref.n), heapBytes)
	}
	psz := int64(d.PageSize())
	out := make([]byte, 0, ref.n)
	skip := int(ref.off % psz)
	for page := base + storage.PageID(ref.off/psz); len(out) < int(ref.n); page++ {
		p, err := d.PeekPage(page)
		if err != nil {
			return nil, err
		}
		take := p[skip:]
		if need := int(ref.n) - len(out); len(take) > need {
			take = take[:need]
		}
		out = append(out, take...)
		skip = 0
	}
	return out, nil
}

// heapUnitPages appends the disk pages a unit occupies to out (deduped) —
// the prefetcher's page enumeration for codec layouts.
func heapUnitPages(out []storage.PageID, base storage.PageID, psz int64, ref heapRef) []storage.PageID {
	first := base + storage.PageID(ref.off/psz)
	last := base + storage.PageID((ref.off+int64(ref.n)-1)/psz)
	for p := first; p <= last; p++ {
		out = dedupePages(out, p)
	}
	return out
}

// codecSeg locates one cell's flip segment inside a codec heap. The
// cell's V-page units follow the segment immediately, so a flip plus the
// subsequent V-page reads is a single forward scan — one seek. off is
// nilSlot for a cell with no visible nodes (no segment, no I/O).
type codecSeg struct {
	off      int64
	segLen   int32
	unitsLen int64 // total bytes of the cell's V-page units after the segment
}

// unitsBase returns the heap offset of the cell's first V-page unit.
func (s codecSeg) unitsBase() int64 { return s.off + int64(s.segLen) }

// codecSegBytes is the logical footprint of one resident directory entry
// (offset + segment length + units length), charged to SizeBytes like the
// indexed scheme's directory.
const codecSegBytes = 8 + 4 + 8

// peekBytes reads n bytes starting at page base through the disk's
// unmetered PeekPage — open-time metadata loads (the horizontal codec
// directory) that must not appear in experiment counters.
func peekBytes(d *storage.Disk, base storage.PageID, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for page := base; len(out) < n; page++ {
		p, err := d.PeekPage(page)
		if err != nil {
			return nil, err
		}
		if need := n - len(out); len(p) > need {
			p = p[:need]
		}
		out = append(out, p...)
	}
	return out, nil
}

// Options configures a scheme build. The zero value reproduces the
// original fixed-slot layout.
type Options struct {
	// VPageBytes is the fixed V-page slot size for the raw layout
	// (<= 0 means DefaultVPageBytes). Ignored by the codec layout,
	// which stores variable-length units.
	VPageBytes int
	// Codec selects the compressed V-page layout (DESIGN.md §13):
	// variable-length CRC-sealed units in a packed heap instead of
	// fixed slots. Query results are byte-identical either way.
	Codec bool
}
