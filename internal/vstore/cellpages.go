package vstore

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// CellPages implementations of core.CellPager for the three schemes: the
// disk pages a query against the given cell will touch in the V-store,
// segment pages first, then V-page slots in ascending order. All three are
// read-only with respect to the receiver — they never move the scheme's
// cell cursor — because they run on the prefetch worker while the owning
// session is mid-query. Lookup reads (pointer segments, index segments)
// are charged to r, the prefetcher's client.

// maxCellPages bounds one cell's page enumeration. The horizontal scheme
// scatters a cell's V-pages across the whole slot array (one page per
// node, stride c), so an unbounded list could swamp the prefetch queue and
// the buffer pool; a capped prefix in node order still warms the nodes a
// traversal visits first (the upper tree).
const maxCellPages = 512

// dedupePages appends page to out unless it is already present. Lists here
// are short (≤ maxCellPages) and nearly sorted, so the linear backward
// scan beats a map allocation.
func dedupePages(out []storage.PageID, page storage.PageID) []storage.PageID {
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] == page {
			return out
		}
	}
	return append(out, page)
}

// CellPages implements core.CellPager. The horizontal scheme has no
// segment; a cell's data is one V-page slot per node, scattered with
// stride c. Every node's slot page is enumerated (deduped, capped).
func (h *Horizontal) CellPages(r storage.Reader, cell cells.CellID) ([]storage.PageID, error) {
	if int(cell) < 0 || int(cell) >= h.grid.NumCells() {
		return nil, fmt.Errorf("vstore: cell %d out of range", cell)
	}
	var out []storage.PageID
	if h.codec {
		// The resident directory locates every unit with no I/O;
		// invisible nodes occupy no pages at all.
		psz := int64(h.disk.PageSize())
		for id := 0; id < h.numNodes && len(out) < maxCellPages; id++ {
			ref := h.dir[h.slotOf(core.NodeID(id), cell)]
			if ref.n == 0 {
				continue
			}
			out = heapUnitPages(out, h.heapBase, psz, ref)
		}
		return out, nil
	}
	for id := 0; id < h.numNodes && len(out) < maxCellPages; id++ {
		out = dedupePages(out, h.slots.page(h.slotOf(core.NodeID(id), cell)))
	}
	return out, nil
}

// CellPages implements core.CellPager: the cell's pointer-segment pages
// (what SetCell flips through) followed by the pages of its visible
// V-page slots, which are consecutive, so the list is a handful of short
// runs.
func (v *Vertical) CellPages(r storage.Reader, cell cells.CellID) ([]storage.PageID, error) {
	if int(cell) < 0 || int(cell) >= v.grid.NumCells() {
		return nil, fmt.Errorf("vstore: cell %d out of range", cell)
	}
	if v.codec {
		// The cell's block is one contiguous run: segment pages, then
		// the unit pages in node order.
		desc := v.cdir[cell]
		if desc.off == nilSlot {
			return nil, nil
		}
		psz := int64(v.disk.PageSize())
		segRef := heapRef{off: desc.off, n: desc.segLen}
		out := heapUnitPages(nil, v.heapBase, psz, segRef)
		buf, err := readHeapUnit(r, v.heapBase, v.heapBytes, segRef)
		if err != nil {
			return nil, err
		}
		offs, lens, err := DecodePointerSegmentC(buf, v.numNodes, desc.unitsLen)
		if err != nil {
			return nil, err
		}
		base := desc.unitsBase()
		for id, off := range offs {
			if off == nilSlot {
				continue
			}
			if out = heapUnitPages(out, v.heapBase, psz, heapRef{off: base + off, n: lens[id]}); len(out) >= maxCellPages {
				break
			}
		}
		return out, nil
	}
	out := make([]storage.PageID, 0, v.segPages)
	for i := 0; i < v.segPages; i++ {
		out = append(out, v.segPage(cell)+storage.PageID(i))
	}
	buf, err := r.ReadBytes(v.segPage(cell), pointerBytes*v.numNodes, storage.ClassLight)
	if err != nil {
		return nil, err
	}
	seg, err := decodePointerSegment(buf, v.numNodes, int64(v.slots.count))
	if err != nil {
		return nil, err
	}
	for _, slot := range seg {
		if slot == nilSlot {
			continue
		}
		if out = dedupePages(out, v.slots.page(slot)); len(out) >= maxCellPages {
			break
		}
	}
	return out, nil
}

// CellPages implements core.CellPager: the cell's index-segment pages
// (located via the resident directory, no I/O) followed by the pages of
// its visible V-page slots.
func (iv *IndexedVertical) CellPages(r storage.Reader, cell cells.CellID) ([]storage.PageID, error) {
	if int(cell) < 0 || int(cell) >= iv.grid.NumCells() {
		return nil, fmt.Errorf("vstore: cell %d out of range", cell)
	}
	if iv.codec {
		cdesc := iv.cdir[cell]
		if cdesc.off == nilSlot {
			return nil, nil
		}
		psz := int64(iv.disk.PageSize())
		segRef := heapRef{off: cdesc.off, n: cdesc.segLen}
		out := heapUnitPages(nil, iv.heapBase, psz, segRef)
		buf, err := readHeapUnit(r, iv.heapBase, iv.heapBytes, segRef)
		if err != nil {
			return nil, err
		}
		m, err := DecodeIndexSegmentC(buf, iv.numNodes, cdesc.unitsBase(), cdesc.unitsLen)
		if err != nil {
			return nil, err
		}
		// Walk node IDs in order rather than ranging over the map: units
		// were laid down in node order, so this recovers ascending heap
		// order deterministically.
		for id := 0; id < iv.numNodes; id++ {
			ref, ok := m[core.NodeID(id)]
			if !ok {
				continue
			}
			if out = heapUnitPages(out, iv.heapBase, psz, ref); len(out) >= maxCellPages {
				break
			}
		}
		return out, nil
	}
	desc := iv.dir[cell]
	if desc.start == storage.NilPage || desc.count == 0 {
		return nil, nil
	}
	segBytes := segEntryBytes * int(desc.count)
	out := make([]storage.PageID, 0, iv.disk.PagesFor(int64(segBytes)))
	for i := 0; i < iv.disk.PagesFor(int64(segBytes)); i++ {
		out = append(out, desc.start+storage.PageID(i))
	}
	buf, err := r.ReadBytes(desc.start, segBytes, storage.ClassLight)
	if err != nil {
		return nil, err
	}
	m, err := decodeIndexSegment(buf, int(desc.count), iv.numNodes, int64(iv.slots.count))
	if err != nil {
		return nil, err
	}
	// Walk node IDs in order rather than ranging over the map: slots were
	// assigned in node order at build time, so this recovers ascending
	// slot order deterministically.
	for id := 0; id < iv.numNodes; id++ {
		slot, ok := m[core.NodeID(id)]
		if !ok {
			continue
		}
		if out = dedupePages(out, iv.slots.page(slot)); len(out) >= maxCellPages {
			break
		}
	}
	return out, nil
}
