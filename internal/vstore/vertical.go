package vstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// Vertical is the §4.2 scheme. A V-page-index file holds one segment per
// cell, each with N_node V-page pointers (nilSlot for invisible nodes).
// The current cell's segment lives in memory; changing cells "flips" the
// segment at size_pointer · N_node / size_page page reads. A cell's
// V-pages are laid out consecutively in depth-first node order, so the
// query's V-page accesses scan nearly sequentially.
//
// Storage cost: size_pointer · N_node · c + size_vpage · N_vnode · c.
type Vertical struct {
	disk *storage.Disk
	// io is the read handle flips and V-page accesses charge to (the disk
	// for the base scheme, a session's client for views).
	io         storage.Reader
	grid       *cells.Grid
	numNodes   int
	segBase    storage.PageID
	segPages   int // pages per segment
	slots      slotTable
	vpageBytes int

	cur     cells.CellID
	hasCell bool
	curSeg  []int64 // V-page slot per node, nilSlot if invisible
	flips   int64
	size    int64
}

const pointerBytes = 8

// BuildVertical lays out and writes the vertical scheme for vis.
func BuildVertical(d *storage.Disk, vis *core.VisData, vpageBytes int) (*Vertical, error) {
	vpb := resolveVPageBytes(d, vpageBytes)
	c := vis.Grid.NumCells()
	totalVisible := 0
	for cell := 0; cell < c; cell++ {
		totalVisible += vis.VisibleNodes(cells.CellID(cell))
	}
	v := &Vertical{
		disk:       d,
		io:         d,
		grid:       vis.Grid,
		numNodes:   vis.NumNodes,
		vpageBytes: vpb,
		slots:      newSlotTable(d, vpb, totalVisible),
	}
	segBytes := pointerBytes * vis.NumNodes
	v.segPages = d.PagesFor(int64(segBytes))
	v.segBase = d.AllocPages(v.segPages * c)
	// Logical footprint per §4.2.
	v.size = int64(segBytes)*int64(c) + int64(vpb)*int64(totalVisible)

	// Per cell: V-pages of visible nodes in node-ID (depth-first
	// preorder) order, at consecutive slots.
	next := int64(0)
	for cell := 0; cell < c; cell++ {
		perNode := vis.PerCell[cells.CellID(cell)]
		visible := visibleIDs(perNode)
		pointers := make([]int64, vis.NumNodes)
		for i := range pointers {
			pointers[i] = nilSlot
		}
		for _, id := range visible {
			buf, err := encodeVPage(perNode[id], vpb)
			if err != nil {
				return nil, err
			}
			if err := v.slots.write(d, next, buf); err != nil {
				return nil, err
			}
			pointers[id] = next
			next++
		}
		seg := make([]byte, segBytes)
		for i, p := range pointers {
			binary.LittleEndian.PutUint64(seg[i*pointerBytes:], uint64(p))
		}
		if err := d.WriteBytes(v.segPage(cells.CellID(cell)), seg); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// visibleIDs returns the IDs with non-nil VD in ascending (DFS) order.
func visibleIDs(perNode [][]core.VD) []int {
	var ids []int
	for id, vd := range perNode {
		if vd != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

func (v *Vertical) segPage(cell cells.CellID) storage.PageID {
	return v.segBase + storage.PageID(int(cell)*v.segPages)
}

// Name implements core.VStore.
func (v *Vertical) Name() string { return "vertical" }

// View implements core.VStoreViewer: a per-session view sharing the
// on-disk layout but owning its flipped segment and charging reads to io.
func (v *Vertical) View(io *storage.Client) core.VStore {
	cp := *v
	cp.io = io
	cp.hasCell = false
	cp.curSeg = nil
	cp.flips = 0
	return &cp
}

// SizeBytes implements core.VStore.
func (v *Vertical) SizeBytes() int64 { return v.size }

// Flips returns how many segment flips have occurred (test hook).
func (v *Vertical) Flips() int64 { return v.flips }

// SetCell implements core.VStore: flipping reads the new cell's segment,
// O(N_node) pages, charged light.
func (v *Vertical) SetCell(cell cells.CellID) error {
	if int(cell) < 0 || int(cell) >= v.grid.NumCells() {
		return fmt.Errorf("vstore: cell %d out of range", cell)
	}
	if v.hasCell && v.cur == cell {
		return nil
	}
	buf, err := v.io.ReadBytes(v.segPage(cell), pointerBytes*v.numNodes, storage.ClassLight)
	if err != nil {
		return err
	}
	seg, err := decodePointerSegment(buf, v.numNodes, int64(v.slots.count))
	if err != nil {
		return err
	}
	v.curSeg = seg
	v.cur = cell
	v.hasCell = true
	v.flips++
	return nil
}

// NodeVD implements core.VStore. Invisible nodes are answered from the
// in-memory segment with no I/O; visible nodes cost one V-page read.
func (v *Vertical) NodeVD(id core.NodeID) ([]core.VD, bool, error) {
	if !v.hasCell {
		return nil, false, fmt.Errorf("vstore: no current cell")
	}
	if int(id) < 0 || int(id) >= v.numNodes {
		return nil, false, fmt.Errorf("vstore: node %d out of range", id)
	}
	slot := v.curSeg[id]
	if slot == nilSlot {
		return nil, false, nil
	}
	buf, err := v.slots.read(v.io, slot, storage.ClassLight)
	if err != nil {
		return nil, false, err
	}
	vd, err := decodeVPage(buf)
	if err != nil {
		return nil, false, err
	}
	if vd == nil {
		return nil, false, fmt.Errorf("vstore: node %d pointer to empty V-page", id)
	}
	return vd, true, nil
}
