package vstore

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// Vertical is the §4.2 scheme. A V-page-index file holds one segment per
// cell, each with N_node V-page pointers (nilSlot for invisible nodes).
// The current cell's segment lives in memory; changing cells "flips" the
// segment at size_pointer · N_node / size_page page reads. A cell's
// V-pages are laid out consecutively in depth-first node order, so the
// query's V-page accesses scan nearly sequentially.
//
// Storage cost: size_pointer · N_node · c + size_vpage · N_vnode · c.
type Vertical struct {
	disk *storage.Disk
	// io is the read handle flips and V-page accesses charge to (the disk
	// for the base scheme, a session's client for views).
	io         storage.Reader
	grid       *cells.Grid
	numNodes   int
	segBase    storage.PageID
	segPages   int // pages per segment
	slots      slotTable
	vpageBytes int

	cur     cells.CellID
	hasCell bool
	curSeg  []int64 // V-page slot per node, nilSlot if invisible
	flips   int64
	size    int64

	// Codec layout (DESIGN.md §13): each cell is one contiguous heap
	// block — [flip segment][V-page units…] — so a flip plus the query's
	// V-page reads is a single forward scan: one seek where the slot
	// layout pays one for the segment extent and one for the slot run.
	codec     bool
	heapBase  storage.PageID
	heapBytes int64
	cdir      []codecSeg // per cell; off == nilSlot when no visible nodes
	units     int64
	unitBytes int64
	curOffs   []int64 // absolute heap offset per node, nilSlot if invisible
	curLens   []int32
}

const pointerBytes = 8

// BuildVertical lays out and writes the vertical scheme for vis in the
// original fixed-slot layout.
func BuildVertical(d *storage.Disk, vis *core.VisData, vpageBytes int) (*Vertical, error) {
	return BuildVerticalOpts(d, vis, Options{VPageBytes: vpageBytes})
}

// buildVerticalCodec lays out the codec variant: one block per cell in
// cell-ID order, each block a pointer segment (visibility bitmap + unit
// lengths) followed immediately by the cell's V-page units in node order.
func buildVerticalCodec(d *storage.Disk, vis *core.VisData) (*Vertical, error) {
	c := vis.Grid.NumCells()
	v := &Vertical{
		disk:     d,
		io:       d,
		grid:     vis.Grid,
		numNodes: vis.NumNodes,
		codec:    true,
		cdir:     make([]codecSeg, c),
	}
	var hw heapWriter
	for cell := 0; cell < c; cell++ {
		perNode := vis.PerCell[cells.CellID(cell)]
		visible := visibleIDs(perNode)
		if len(visible) == 0 {
			v.cdir[cell] = codecSeg{off: nilSlot}
			continue
		}
		units := make([][]byte, len(visible))
		lens := make([]int64, vis.NumNodes)
		for i := range lens {
			lens[i] = -1
		}
		var unitsLen int64
		for i, id := range visible {
			unit, err := EncodeVPageC(perNode[id])
			if err != nil {
				return nil, err
			}
			units[i] = unit
			lens[id] = int64(len(unit))
			unitsLen += int64(len(unit))
			v.units++
			v.unitBytes += int64(len(unit))
		}
		seg, err := EncodePointerSegmentC(vis.NumNodes, lens)
		if err != nil {
			return nil, err
		}
		off := hw.append(seg)
		for _, unit := range units {
			hw.append(unit)
		}
		v.cdir[cell] = codecSeg{off: off, segLen: int32(len(seg)), unitsLen: unitsLen}
	}
	base, heapBytes, err := hw.flush(d)
	if err != nil {
		return nil, err
	}
	v.heapBase, v.heapBytes = base, heapBytes
	v.size = heapBytes + codecSegBytes*int64(c)
	return v, nil
}

// BuildVerticalOpts lays out and writes the vertical scheme for vis.
func BuildVerticalOpts(d *storage.Disk, vis *core.VisData, opts Options) (*Vertical, error) {
	if opts.Codec {
		return buildVerticalCodec(d, vis)
	}
	vpb := resolveVPageBytes(d, opts.VPageBytes)
	c := vis.Grid.NumCells()
	totalVisible := 0
	for cell := 0; cell < c; cell++ {
		totalVisible += vis.VisibleNodes(cells.CellID(cell))
	}
	v := &Vertical{
		disk:       d,
		io:         d,
		grid:       vis.Grid,
		numNodes:   vis.NumNodes,
		vpageBytes: vpb,
		slots:      newSlotTable(d, vpb, totalVisible),
	}
	segBytes := pointerBytes * vis.NumNodes
	v.segPages = d.PagesFor(int64(segBytes))
	v.segBase = d.AllocPages(v.segPages * c)
	// Logical footprint per §4.2.
	v.size = int64(segBytes)*int64(c) + int64(vpb)*int64(totalVisible)

	// Per cell: V-pages of visible nodes in node-ID (depth-first
	// preorder) order, at consecutive slots.
	next := int64(0)
	for cell := 0; cell < c; cell++ {
		perNode := vis.PerCell[cells.CellID(cell)]
		visible := visibleIDs(perNode)
		pointers := make([]int64, vis.NumNodes)
		for i := range pointers {
			pointers[i] = nilSlot
		}
		for _, id := range visible {
			buf, err := encodeVPage(perNode[id], vpb)
			if err != nil {
				return nil, err
			}
			if err := v.slots.write(d, next, buf); err != nil {
				return nil, err
			}
			pointers[id] = next
			next++
		}
		seg := make([]byte, segBytes)
		for i, p := range pointers {
			binary.LittleEndian.PutUint64(seg[i*pointerBytes:], uint64(p))
		}
		if err := d.WriteBytes(v.segPage(cells.CellID(cell)), seg); err != nil {
			return nil, err
		}
	}
	v.units = int64(totalVisible)
	v.unitBytes = v.units * int64(vpb)
	return v, nil
}

// visibleIDs returns the IDs with non-nil VD in ascending (DFS) order.
func visibleIDs(perNode [][]core.VD) []int {
	var ids []int
	for id, vd := range perNode {
		if vd != nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

func (v *Vertical) segPage(cell cells.CellID) storage.PageID {
	return v.segBase + storage.PageID(int(cell)*v.segPages)
}

// Name implements core.VStore.
func (v *Vertical) Name() string { return "vertical" }

// View implements core.VStoreViewer: a per-session view sharing the
// on-disk layout but owning its flipped segment and charging reads to io.
func (v *Vertical) View(io *storage.Client) core.VStore {
	cp := *v
	cp.io = io
	cp.hasCell = false
	cp.curSeg = nil
	cp.curOffs = nil
	cp.curLens = nil
	cp.flips = 0
	return &cp
}

// SizeBytes implements core.VStore.
func (v *Vertical) SizeBytes() int64 { return v.size }

// Flips returns how many segment flips have occurred (test hook).
func (v *Vertical) Flips() int64 { return v.flips }

// SetCell implements core.VStore: flipping reads the new cell's segment,
// O(N_node) pages, charged light.
func (v *Vertical) SetCell(cell cells.CellID) error {
	if int(cell) < 0 || int(cell) >= v.grid.NumCells() {
		return fmt.Errorf("vstore: cell %d out of range", cell)
	}
	if v.hasCell && v.cur == cell {
		return nil
	}
	if v.codec {
		return v.setCellCodec(cell)
	}
	buf, err := v.io.ReadBytes(v.segPage(cell), pointerBytes*v.numNodes, storage.ClassLight)
	if err != nil {
		return err
	}
	seg, err := decodePointerSegment(buf, v.numNodes, int64(v.slots.count))
	if err != nil {
		return err
	}
	v.curSeg = seg
	v.cur = cell
	v.hasCell = true
	v.flips++
	return nil
}

// setCellCodec flips to cell in the codec layout: read the cell's flip
// segment (a short light run at the head of its block) and turn the unit
// lengths into absolute heap offsets. A cell with no visible nodes flips
// with no I/O at all.
func (v *Vertical) setCellCodec(cell cells.CellID) error {
	desc := v.cdir[cell]
	if desc.off == nilSlot {
		v.curOffs, v.curLens = nil, nil
		v.cur = cell
		v.hasCell = true
		v.flips++
		return nil
	}
	buf, err := readHeapUnit(v.io, v.heapBase, v.heapBytes, heapRef{off: desc.off, n: desc.segLen})
	if err != nil {
		return err
	}
	offs, lens, err := DecodePointerSegmentC(buf, v.numNodes, desc.unitsLen)
	if err != nil {
		return err
	}
	base := desc.unitsBase()
	for id, off := range offs {
		if off != nilSlot {
			offs[id] = base + off
		}
	}
	v.curOffs, v.curLens = offs, lens
	v.cur = cell
	v.hasCell = true
	v.flips++
	return nil
}

// NodeVD implements core.VStore. Invisible nodes are answered from the
// in-memory segment with no I/O; visible nodes cost one V-page read.
func (v *Vertical) NodeVD(id core.NodeID) ([]core.VD, bool, error) {
	if !v.hasCell {
		return nil, false, fmt.Errorf("vstore: no current cell")
	}
	if int(id) < 0 || int(id) >= v.numNodes {
		return nil, false, fmt.Errorf("vstore: node %d out of range", id)
	}
	if v.codec {
		if v.curOffs == nil || v.curOffs[id] == nilSlot {
			return nil, false, nil
		}
		buf, err := readHeapUnit(v.io, v.heapBase, v.heapBytes, heapRef{off: v.curOffs[id], n: v.curLens[id]})
		if err != nil {
			return nil, false, err
		}
		vd, err := DecodeVPageC(buf)
		if err != nil {
			return nil, false, err
		}
		if vd == nil {
			return nil, false, fmt.Errorf("vstore: node %d pointer to empty V-page", id)
		}
		return vd, true, nil
	}
	slot := v.curSeg[id]
	if slot == nilSlot {
		return nil, false, nil
	}
	buf, err := v.slots.read(v.io, slot, storage.ClassLight)
	if err != nil {
		return nil, false, err
	}
	vd, err := decodeVPage(buf)
	if err != nil {
		return nil, false, err
	}
	if vd == nil {
		return nil, false, fmt.Errorf("vstore: node %d pointer to empty V-page", id)
	}
	return vd, true, nil
}

// Codec reports whether this scheme uses the compressed V-page layout.
func (v *Vertical) Codec() bool { return v.codec }

// VPageFootprint reports the stored V-page count and total on-disk bytes.
func (v *Vertical) VPageFootprint() (units, bytes int64) { return v.units, v.unitBytes }

// DecodedResidentBytes reports the in-memory footprint of this view's
// flipped segment — the decoded-resident side of the size accounting.
func (v *Vertical) DecodedResidentBytes() int64 {
	if v.codec {
		return int64(len(v.curOffs))*8 + int64(len(v.curLens))*4
	}
	return int64(len(v.curSeg)) * 8
}

// CodecCheck decodes every codec segment and unit through the unmetered
// peek path, returning the pages of failing units and a problem string
// per failure.
func (v *Vertical) CodecCheck() ([]storage.PageID, []string) {
	if !v.codec {
		return nil, nil
	}
	var bad []storage.PageID
	var problems []string
	psz := int64(v.disk.PageSize())
	for cell, desc := range v.cdir {
		if desc.off == nilSlot {
			continue
		}
		segRef := heapRef{off: desc.off, n: desc.segLen}
		buf, err := peekHeapUnit(v.disk, v.heapBase, v.heapBytes, segRef)
		var offs []int64
		var lens []int32
		if err == nil {
			offs, lens, err = DecodePointerSegmentC(buf, v.numNodes, desc.unitsLen)
		}
		if err != nil {
			if !skipQuarantined(err) {
				problems = append(problems, fmt.Sprintf("vertical cell %d segment: %v", cell, err))
				bad = heapUnitPages(bad, v.heapBase, psz, segRef)
			}
			continue
		}
		base := desc.unitsBase()
		for id, off := range offs {
			if off == nilSlot {
				continue
			}
			ref := heapRef{off: base + off, n: lens[id]}
			ubuf, err := peekHeapUnit(v.disk, v.heapBase, v.heapBytes, ref)
			if err == nil {
				_, err = DecodeVPageC(ubuf)
			}
			if err != nil && !skipQuarantined(err) {
				problems = append(problems, fmt.Sprintf("vertical cell %d node %d: %v", cell, id, err))
				bad = heapUnitPages(bad, v.heapBase, psz, ref)
			}
		}
	}
	return bad, problems
}
