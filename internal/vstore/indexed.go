package vstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// IndexedVertical is the §4.3 scheme: segments of the V-page-index store
// only the (offset, V-page pointer) pairs of *visible* nodes, so both the
// index size and the flip cost drop from O(N_node) to O(N_vnode). Segments
// are variable-length; a one-to-one directory (cell → segment extent),
// itself tiny, locates them.
//
// Storage cost: (size_pointer + size_integer) · N_vnode · c +
// size_vpage · N_vnode · c, plus the directory.
type IndexedVertical struct {
	disk *storage.Disk
	// io is the read handle flips and V-page accesses charge to (the disk
	// for the base scheme, a session's client for views).
	io         storage.Reader
	grid       *cells.Grid
	numNodes   int
	slots      slotTable
	vpageBytes int

	// dir[cell] locates the cell's segment. Loaded at open time and kept
	// resident, like a file's inode table; its disk footprint counts
	// toward SizeBytes.
	dir []segDesc

	cur     cells.CellID
	hasCell bool
	curMap  map[core.NodeID]int64
	flips   int64
	size    int64
}

type segDesc struct {
	start storage.PageID
	count int32 // visible nodes in the segment
}

// segEntryBytes: u32 node offset + i64 V-page pointer — the paper's
// (size_integer + size_pointer).
const segEntryBytes = 4 + 8

// BuildIndexedVertical lays out and writes the indexed-vertical scheme.
func BuildIndexedVertical(d *storage.Disk, vis *core.VisData, vpageBytes int) (*IndexedVertical, error) {
	vpb := resolveVPageBytes(d, vpageBytes)
	c := vis.Grid.NumCells()
	totalVisible := 0
	for cell := 0; cell < c; cell++ {
		totalVisible += vis.VisibleNodes(cells.CellID(cell))
	}
	iv := &IndexedVertical{
		disk:       d,
		io:         d,
		grid:       vis.Grid,
		numNodes:   vis.NumNodes,
		vpageBytes: vpb,
		slots:      newSlotTable(d, vpb, totalVisible),
		dir:        make([]segDesc, c),
	}

	next := int64(0)
	for cell := 0; cell < c; cell++ {
		perNode := vis.PerCell[cells.CellID(cell)]
		visible := visibleIDs(perNode)
		if len(visible) == 0 {
			iv.dir[cell] = segDesc{start: storage.NilPage}
			continue
		}
		seg := make([]byte, segEntryBytes*len(visible))
		for i, id := range visible {
			buf, err := encodeVPage(perNode[id], vpb)
			if err != nil {
				return nil, err
			}
			if err := iv.slots.write(d, next, buf); err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint32(seg[i*segEntryBytes:], uint32(id))
			binary.LittleEndian.PutUint64(seg[i*segEntryBytes+4:], uint64(next))
			next++
		}
		segPages := d.PagesFor(int64(len(seg)))
		segStart := d.AllocPages(segPages)
		if err := d.WriteBytes(segStart, seg); err != nil {
			return nil, err
		}
		iv.dir[cell] = segDesc{start: segStart, count: int32(len(visible))}
		// Logical footprint per §4.3: (size_pointer + size_integer) ·
		// N_vnode per cell.
		iv.size += int64(len(seg))
	}
	iv.size += int64(vpb) * int64(totalVisible)
	// The directory itself: 12 bytes per cell, stored once.
	dirPages := d.PagesFor(int64(12 * c))
	d.AllocPages(dirPages)
	iv.size += int64(12 * c)
	return iv, nil
}

// Name implements core.VStore.
func (iv *IndexedVertical) Name() string { return "indexed-vertical" }

// View implements core.VStoreViewer: a per-session view sharing the
// on-disk layout and directory but owning its flipped segment map and
// charging reads to io.
func (iv *IndexedVertical) View(io *storage.Client) core.VStore {
	cp := *iv
	cp.io = io
	cp.hasCell = false
	cp.curMap = nil
	cp.flips = 0
	return &cp
}

// SizeBytes implements core.VStore.
func (iv *IndexedVertical) SizeBytes() int64 { return iv.size }

// Flips returns the number of segment flips performed (test hook).
func (iv *IndexedVertical) Flips() int64 { return iv.flips }

// SetCell implements core.VStore: flipping reads only the visible nodes'
// (offset, pointer) pairs — O(N_vnode) I/O (§4.3).
func (iv *IndexedVertical) SetCell(cell cells.CellID) error {
	if int(cell) < 0 || int(cell) >= iv.grid.NumCells() {
		return fmt.Errorf("vstore: cell %d out of range", cell)
	}
	if iv.hasCell && iv.cur == cell {
		return nil
	}
	desc := iv.dir[cell]
	m := make(map[core.NodeID]int64, desc.count)
	if desc.start != storage.NilPage && desc.count > 0 {
		buf, err := iv.io.ReadBytes(desc.start, segEntryBytes*int(desc.count), storage.ClassLight)
		if err != nil {
			return err
		}
		if m, err = decodeIndexSegment(buf, int(desc.count), iv.numNodes, int64(iv.slots.count)); err != nil {
			return err
		}
	}
	iv.curMap = m
	iv.cur = cell
	iv.hasCell = true
	iv.flips++
	return nil
}

// NodeVD implements core.VStore.
func (iv *IndexedVertical) NodeVD(id core.NodeID) ([]core.VD, bool, error) {
	if !iv.hasCell {
		return nil, false, fmt.Errorf("vstore: no current cell")
	}
	if int(id) < 0 || int(id) >= iv.numNodes {
		return nil, false, fmt.Errorf("vstore: node %d out of range", id)
	}
	slot, ok := iv.curMap[id]
	if !ok {
		return nil, false, nil
	}
	buf, err := iv.slots.read(iv.io, slot, storage.ClassLight)
	if err != nil {
		return nil, false, err
	}
	vd, err := decodeVPage(buf)
	if err != nil {
		return nil, false, err
	}
	if vd == nil {
		return nil, false, fmt.Errorf("vstore: node %d pointer to empty V-page", id)
	}
	return vd, true, nil
}
