package vstore

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/storage"
)

// IndexedVertical is the §4.3 scheme: segments of the V-page-index store
// only the (offset, V-page pointer) pairs of *visible* nodes, so both the
// index size and the flip cost drop from O(N_node) to O(N_vnode). Segments
// are variable-length; a one-to-one directory (cell → segment extent),
// itself tiny, locates them.
//
// Storage cost: (size_pointer + size_integer) · N_vnode · c +
// size_vpage · N_vnode · c, plus the directory.
type IndexedVertical struct {
	disk *storage.Disk
	// io is the read handle flips and V-page accesses charge to (the disk
	// for the base scheme, a session's client for views).
	io         storage.Reader
	grid       *cells.Grid
	numNodes   int
	slots      slotTable
	vpageBytes int

	// dir[cell] locates the cell's segment. Loaded at open time and kept
	// resident, like a file's inode table; its disk footprint counts
	// toward SizeBytes.
	dir []segDesc

	cur     cells.CellID
	hasCell bool
	curMap  map[core.NodeID]int64
	flips   int64
	size    int64

	// Codec layout (DESIGN.md §13): like vertical's, one contiguous
	// block per cell, but the flip segment lists only visible nodes as
	// (id delta, unit length) varint pairs — the §4.3 index with both
	// columns delta/varint packed.
	codec     bool
	heapBase  storage.PageID
	heapBytes int64
	cdir      []codecSeg // per cell; off == nilSlot when no visible nodes
	units     int64
	unitBytes int64
	curRef    map[core.NodeID]heapRef
}

type segDesc struct {
	start storage.PageID
	count int32 // visible nodes in the segment
}

// segEntryBytes: u32 node offset + i64 V-page pointer — the paper's
// (size_integer + size_pointer).
const segEntryBytes = 4 + 8

// BuildIndexedVertical lays out and writes the indexed-vertical scheme in
// the original fixed-slot layout.
func BuildIndexedVertical(d *storage.Disk, vis *core.VisData, vpageBytes int) (*IndexedVertical, error) {
	return BuildIndexedVerticalOpts(d, vis, Options{VPageBytes: vpageBytes})
}

// buildIndexedVerticalCodec lays out the codec variant: one block per
// cell — index segment followed by the cell's V-page units in node order.
func buildIndexedVerticalCodec(d *storage.Disk, vis *core.VisData) (*IndexedVertical, error) {
	c := vis.Grid.NumCells()
	iv := &IndexedVertical{
		disk:     d,
		io:       d,
		grid:     vis.Grid,
		numNodes: vis.NumNodes,
		codec:    true,
		cdir:     make([]codecSeg, c),
	}
	var hw heapWriter
	for cell := 0; cell < c; cell++ {
		perNode := vis.PerCell[cells.CellID(cell)]
		visible := visibleIDs(perNode)
		if len(visible) == 0 {
			iv.cdir[cell] = codecSeg{off: nilSlot}
			continue
		}
		units := make([][]byte, len(visible))
		lens := make([]int64, len(visible))
		var unitsLen int64
		for i, id := range visible {
			unit, err := EncodeVPageC(perNode[id])
			if err != nil {
				return nil, err
			}
			units[i] = unit
			lens[i] = int64(len(unit))
			unitsLen += int64(len(unit))
			iv.units++
			iv.unitBytes += int64(len(unit))
		}
		seg, err := EncodeIndexSegmentC(visible, lens)
		if err != nil {
			return nil, err
		}
		off := hw.append(seg)
		for _, unit := range units {
			hw.append(unit)
		}
		iv.cdir[cell] = codecSeg{off: off, segLen: int32(len(seg)), unitsLen: unitsLen}
	}
	base, heapBytes, err := hw.flush(d)
	if err != nil {
		return nil, err
	}
	iv.heapBase, iv.heapBytes = base, heapBytes
	iv.size = heapBytes + codecSegBytes*int64(c)
	return iv, nil
}

// BuildIndexedVerticalOpts lays out and writes the indexed-vertical
// scheme.
func BuildIndexedVerticalOpts(d *storage.Disk, vis *core.VisData, opts Options) (*IndexedVertical, error) {
	if opts.Codec {
		return buildIndexedVerticalCodec(d, vis)
	}
	vpb := resolveVPageBytes(d, opts.VPageBytes)
	c := vis.Grid.NumCells()
	totalVisible := 0
	for cell := 0; cell < c; cell++ {
		totalVisible += vis.VisibleNodes(cells.CellID(cell))
	}
	iv := &IndexedVertical{
		disk:       d,
		io:         d,
		grid:       vis.Grid,
		numNodes:   vis.NumNodes,
		vpageBytes: vpb,
		slots:      newSlotTable(d, vpb, totalVisible),
		dir:        make([]segDesc, c),
	}

	next := int64(0)
	for cell := 0; cell < c; cell++ {
		perNode := vis.PerCell[cells.CellID(cell)]
		visible := visibleIDs(perNode)
		if len(visible) == 0 {
			iv.dir[cell] = segDesc{start: storage.NilPage}
			continue
		}
		seg := make([]byte, segEntryBytes*len(visible))
		for i, id := range visible {
			buf, err := encodeVPage(perNode[id], vpb)
			if err != nil {
				return nil, err
			}
			if err := iv.slots.write(d, next, buf); err != nil {
				return nil, err
			}
			binary.LittleEndian.PutUint32(seg[i*segEntryBytes:], uint32(id))
			binary.LittleEndian.PutUint64(seg[i*segEntryBytes+4:], uint64(next))
			next++
		}
		segPages := d.PagesFor(int64(len(seg)))
		segStart := d.AllocPages(segPages)
		if err := d.WriteBytes(segStart, seg); err != nil {
			return nil, err
		}
		iv.dir[cell] = segDesc{start: segStart, count: int32(len(visible))}
		// Logical footprint per §4.3: (size_pointer + size_integer) ·
		// N_vnode per cell.
		iv.size += int64(len(seg))
	}
	iv.size += int64(vpb) * int64(totalVisible)
	// The directory itself: 12 bytes per cell, stored once.
	dirPages := d.PagesFor(int64(12 * c))
	d.AllocPages(dirPages)
	iv.size += int64(12 * c)
	iv.units = int64(totalVisible)
	iv.unitBytes = iv.units * int64(vpb)
	return iv, nil
}

// Name implements core.VStore.
func (iv *IndexedVertical) Name() string { return "indexed-vertical" }

// View implements core.VStoreViewer: a per-session view sharing the
// on-disk layout and directory but owning its flipped segment map and
// charging reads to io.
func (iv *IndexedVertical) View(io *storage.Client) core.VStore {
	cp := *iv
	cp.io = io
	cp.hasCell = false
	cp.curMap = nil
	cp.curRef = nil
	cp.flips = 0
	return &cp
}

// SizeBytes implements core.VStore.
func (iv *IndexedVertical) SizeBytes() int64 { return iv.size }

// Flips returns the number of segment flips performed (test hook).
func (iv *IndexedVertical) Flips() int64 { return iv.flips }

// SetCell implements core.VStore: flipping reads only the visible nodes'
// (offset, pointer) pairs — O(N_vnode) I/O (§4.3).
func (iv *IndexedVertical) SetCell(cell cells.CellID) error {
	if int(cell) < 0 || int(cell) >= iv.grid.NumCells() {
		return fmt.Errorf("vstore: cell %d out of range", cell)
	}
	if iv.hasCell && iv.cur == cell {
		return nil
	}
	if iv.codec {
		return iv.setCellCodec(cell)
	}
	desc := iv.dir[cell]
	m := make(map[core.NodeID]int64, desc.count)
	if desc.start != storage.NilPage && desc.count > 0 {
		buf, err := iv.io.ReadBytes(desc.start, segEntryBytes*int(desc.count), storage.ClassLight)
		if err != nil {
			return err
		}
		if m, err = decodeIndexSegment(buf, int(desc.count), iv.numNodes, int64(iv.slots.count)); err != nil {
			return err
		}
	}
	iv.curMap = m
	iv.cur = cell
	iv.hasCell = true
	iv.flips++
	return nil
}

// setCellCodec flips to cell in the codec layout: read the cell's index
// segment and decode it straight to absolute heap references. A cell with
// no visible nodes flips with no I/O.
func (iv *IndexedVertical) setCellCodec(cell cells.CellID) error {
	desc := iv.cdir[cell]
	m := map[core.NodeID]heapRef{}
	if desc.off != nilSlot {
		buf, err := readHeapUnit(iv.io, iv.heapBase, iv.heapBytes, heapRef{off: desc.off, n: desc.segLen})
		if err != nil {
			return err
		}
		if m, err = DecodeIndexSegmentC(buf, iv.numNodes, desc.unitsBase(), desc.unitsLen); err != nil {
			return err
		}
	}
	iv.curRef = m
	iv.cur = cell
	iv.hasCell = true
	iv.flips++
	return nil
}

// NodeVD implements core.VStore.
func (iv *IndexedVertical) NodeVD(id core.NodeID) ([]core.VD, bool, error) {
	if !iv.hasCell {
		return nil, false, fmt.Errorf("vstore: no current cell")
	}
	if int(id) < 0 || int(id) >= iv.numNodes {
		return nil, false, fmt.Errorf("vstore: node %d out of range", id)
	}
	if iv.codec {
		ref, ok := iv.curRef[id]
		if !ok {
			return nil, false, nil
		}
		buf, err := readHeapUnit(iv.io, iv.heapBase, iv.heapBytes, ref)
		if err != nil {
			return nil, false, err
		}
		vd, err := DecodeVPageC(buf)
		if err != nil {
			return nil, false, err
		}
		if vd == nil {
			return nil, false, fmt.Errorf("vstore: node %d pointer to empty V-page", id)
		}
		return vd, true, nil
	}
	slot, ok := iv.curMap[id]
	if !ok {
		return nil, false, nil
	}
	buf, err := iv.slots.read(iv.io, slot, storage.ClassLight)
	if err != nil {
		return nil, false, err
	}
	vd, err := decodeVPage(buf)
	if err != nil {
		return nil, false, err
	}
	if vd == nil {
		return nil, false, fmt.Errorf("vstore: node %d pointer to empty V-page", id)
	}
	return vd, true, nil
}

// Codec reports whether this scheme uses the compressed V-page layout.
func (iv *IndexedVertical) Codec() bool { return iv.codec }

// VPageFootprint reports the stored V-page count and total on-disk bytes.
func (iv *IndexedVertical) VPageFootprint() (units, bytes int64) { return iv.units, iv.unitBytes }

// DecodedResidentBytes reports the in-memory footprint of this view's
// flipped segment — the decoded-resident side of the size accounting.
func (iv *IndexedVertical) DecodedResidentBytes() int64 {
	if iv.codec {
		return int64(len(iv.curRef)) * (8 + 12)
	}
	return int64(len(iv.curMap)) * (8 + 8)
}

// CodecCheck decodes every codec segment and unit through the unmetered
// peek path, returning the pages of failing units and a problem string
// per failure.
func (iv *IndexedVertical) CodecCheck() ([]storage.PageID, []string) {
	if !iv.codec {
		return nil, nil
	}
	var bad []storage.PageID
	var problems []string
	psz := int64(iv.disk.PageSize())
	for cell, desc := range iv.cdir {
		if desc.off == nilSlot {
			continue
		}
		segRef := heapRef{off: desc.off, n: desc.segLen}
		buf, err := peekHeapUnit(iv.disk, iv.heapBase, iv.heapBytes, segRef)
		var m map[core.NodeID]heapRef
		if err == nil {
			m, err = DecodeIndexSegmentC(buf, iv.numNodes, desc.unitsBase(), desc.unitsLen)
		}
		if err != nil {
			if !skipQuarantined(err) {
				problems = append(problems, fmt.Sprintf("indexed-vertical cell %d segment: %v", cell, err))
				bad = heapUnitPages(bad, iv.heapBase, psz, segRef)
			}
			continue
		}
		// Walk node IDs in order rather than ranging over the map so the
		// report order is deterministic.
		for id := 0; id < iv.numNodes; id++ {
			ref, ok := m[core.NodeID(id)]
			if !ok {
				continue
			}
			ubuf, err := peekHeapUnit(iv.disk, iv.heapBase, iv.heapBytes, ref)
			if err == nil {
				_, err = DecodeVPageC(ubuf)
			}
			if err != nil && !skipQuarantined(err) {
				problems = append(problems, fmt.Sprintf("indexed-vertical cell %d node %d: %v", cell, id, err))
				bad = heapUnitPages(bad, iv.heapBase, psz, ref)
			}
		}
	}
	return bad, problems
}
