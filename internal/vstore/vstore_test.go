package vstore

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/scene"
	"repro/internal/storage"
)

var (
	fixOnce sync.Once
	fixTree *core.Tree
	fixVis  *core.VisData
	fixH    *Horizontal
	fixV    *Vertical
	fixIV   *IndexedVertical
)

func fixture(t *testing.T) (*core.Tree, *core.VisData) {
	t.Helper()
	fixOnce.Do(func() {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 2, 2
		p.BuildingsPerBlock = 4
		p.BlobsPerBlock = 2
		p.BlobDetail = 8
		p.NominalBytes = 16 << 20
		sc := scene.Generate(p)
		d := storage.NewDisk(0, storage.DefaultCostModel())
		bp := core.DefaultBuildParams()
		// A 16x16 grid gives enough cells that horizontal V-page arrays
		// span many pages per node, exposing the locality differences the
		// schemes are about.
		bp.Grid = cells.NewGrid(sc.ViewRegion, 16, 16)
		bp.DirsPerViewpoint = 256
		bp.SamplesPerCell = 1
		tr, vis, err := core.Build(sc, d, bp)
		if err != nil {
			panic(err)
		}
		fixTree, fixVis = tr, vis
		if fixH, err = BuildHorizontal(d, vis, 0); err != nil {
			panic(err)
		}
		if fixV, err = BuildVertical(d, vis, 0); err != nil {
			panic(err)
		}
		if fixIV, err = BuildIndexedVertical(d, vis, 0); err != nil {
			panic(err)
		}
	})
	if fixTree == nil {
		t.Fatal("fixture failed")
	}
	return fixTree, fixVis
}

func TestVPageCodecRoundTrip(t *testing.T) {
	vd := []core.VD{{DoV: 0.123, NVO: 4}, {DoV: 0, NVO: 0}, {DoV: 1e-6, NVO: 1}}
	buf, err := encodeVPage(vd, 4096)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeVPage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vd) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range vd {
		if got[i] != vd[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], vd[i])
		}
	}
}

func TestPropVPageCodecRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 30
		vd := make([]core.VD, n)
		for i := range vd {
			vd[i] = core.VD{DoV: r.Float64(), NVO: int32(r.Intn(1000))}
		}
		buf, err := encodeVPage(vd, 4096)
		if err != nil {
			return false
		}
		got, err := decodeVPage(buf)
		if err != nil {
			return false
		}
		if n == 0 {
			return got == nil
		}
		if len(got) != n {
			return false
		}
		for i := range vd {
			if got[i] != vd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotTable(t *testing.T) {
	d := storage.NewDisk(256, storage.DefaultCostModel())
	tbl := newSlotTable(d, 64, 10) // 4 slots per 256-byte page
	if tbl.perPage != 4 {
		t.Fatalf("perPage = %d", tbl.perPage)
	}
	// Writes to different slots of the same page must not clobber.
	for i := int64(0); i < 10; i++ {
		buf := []byte{byte(i), byte(i + 1)}
		if err := tbl.write(d, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10; i++ {
		got, err := tbl.read(d, i, storage.ClassLight)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) || got[1] != byte(i+1) {
			t.Fatalf("slot %d corrupted: % x", i, got[:2])
		}
		if len(got) != 64 {
			t.Fatalf("slot %d length %d", i, len(got))
		}
	}
	// Bounds and size checks.
	if err := tbl.write(d, 10, []byte{1}); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if err := tbl.write(d, -1, []byte{1}); err == nil {
		t.Fatal("negative slot accepted")
	}
	if err := tbl.write(d, 0, make([]byte, 65)); err == nil {
		t.Fatal("oversized slot write accepted")
	}
	if _, err := tbl.read(d, 10, storage.ClassLight); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	// Oversized slot requests degrade to one slot per page; the schemes
	// never build such tables because resolveVPageBytes clamps V-page
	// sizes to the disk page first — assert that invariant too.
	big := newSlotTable(d, 300, 3)
	if big.perPage != 1 {
		t.Fatalf("big perPage = %d", big.perPage)
	}
	if got := resolveVPageBytes(d, 300); got != 256 {
		t.Fatalf("resolveVPageBytes(300) = %d, want clamp to page size", got)
	}
	if got := resolveVPageBytes(d, 0); got != DefaultVPageBytes {
		t.Fatalf("resolveVPageBytes(0) = %d", got)
	}
}

func TestVPageCodecErrors(t *testing.T) {
	// Too many entries for the page.
	many := make([]core.VD, 400)
	if _, err := encodeVPage(many, 64); err == nil {
		t.Fatal("overflow accepted")
	}
	if _, err := decodeVPage([]byte{1}); err == nil {
		t.Fatal("short buffer accepted")
	}
	// Count says 3 entries but buffer is short.
	buf, _ := encodeVPage([]core.VD{{DoV: 1, NVO: 1}}, 4096)
	buf[0] = 3
	if _, err := decodeVPage(buf); err == nil {
		t.Fatal("truncated entries accepted")
	}
	// Zero page decodes to nil (invisible).
	got, err := decodeVPage(make([]byte, 64))
	if err != nil || got != nil {
		t.Fatalf("zero page: %v %v", got, err)
	}
}

func TestSchemesReturnIdenticalVD(t *testing.T) {
	tr, vis := fixture(t)
	schemes := []core.VStore{fixH, fixV, fixIV}
	for c := 0; c < tr.Grid.NumCells(); c++ {
		cell := cells.CellID(c)
		for _, s := range schemes {
			if err := s.SetCell(cell); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
		}
		for id := 0; id < tr.NumNodes(); id++ {
			want := vis.PerCell[cell][id]
			for _, s := range schemes {
				vd, ok, err := s.NodeVD(core.NodeID(id))
				if err != nil {
					t.Fatalf("%s cell %d node %d: %v", s.Name(), cell, id, err)
				}
				if ok != (want != nil) {
					t.Fatalf("%s cell %d node %d: ok=%v, want %v", s.Name(), cell, id, ok, want != nil)
				}
				if !ok {
					continue
				}
				if len(vd) != len(want) {
					t.Fatalf("%s cell %d node %d: %d entries, want %d", s.Name(), cell, id, len(vd), len(want))
				}
				for ei := range want {
					if vd[ei] != want[ei] {
						t.Fatalf("%s cell %d node %d entry %d: %+v != %+v",
							s.Name(), cell, id, ei, vd[ei], want[ei])
					}
				}
			}
		}
	}
}

// sparseVisData fabricates a visibility field with the paper's sparsity
// regime: many nodes, few visible per cell (N_vnode << N_node).
func sparseVisData(t *testing.T, numNodes, nx, ny int, visibleFrac float64, seed int64) *core.VisData {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	grid := cells.NewGrid(geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 1)), nx, ny)
	vis := &core.VisData{
		NumNodes: numNodes,
		Grid:     grid,
		PerCell:  make(map[cells.CellID][][]core.VD, grid.NumCells()),
	}
	for c := 0; c < grid.NumCells(); c++ {
		perNode := make([][]core.VD, numNodes)
		for id := 0; id < numNodes; id++ {
			if r.Float64() >= visibleFrac {
				continue
			}
			n := 2 + r.Intn(7)
			vd := make([]core.VD, n)
			for i := range vd {
				vd[i] = core.VD{DoV: r.Float64() * 0.01, NVO: int32(1 + r.Intn(5))}
			}
			perNode[id] = vd
		}
		// Keep node 0 visible so traversals have a root to start from.
		if perNode[0] == nil {
			perNode[0] = []core.VD{{DoV: 0.001, NVO: 1}}
		}
		vis.PerCell[cells.CellID(c)] = perNode
	}
	return vis
}

func TestStorageCostOrdering(t *testing.T) {
	// Table 2 regime: N_vnode is a small fraction of N_node.
	vis := sparseVisData(t, 500, 10, 10, 0.1, 42)
	d := storage.NewDisk(0, storage.DefaultCostModel())
	h, err := BuildHorizontal(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BuildVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := BuildIndexedVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	hs, vs, ivs := h.SizeBytes(), v.SizeBytes(), iv.SizeBytes()
	// Table 2 ordering: horizontal >> vertical > indexed-vertical.
	if hs <= vs {
		t.Fatalf("horizontal %d not larger than vertical %d", hs, vs)
	}
	if vs <= ivs {
		t.Fatalf("vertical %d not larger than indexed %d", vs, ivs)
	}
	if hs < 3*ivs {
		t.Fatalf("horizontal %d should dwarf indexed %d (paper: ~20x)", hs, ivs)
	}
	// Sizes follow the paper's closed forms.
	wantH := int64(DefaultVPageBytes) * int64(vis.Grid.NumCells()) * int64(vis.NumNodes)
	if hs != wantH {
		t.Fatalf("horizontal size %d, want %d", hs, wantH)
	}
	totalVis := 0
	for c := 0; c < vis.Grid.NumCells(); c++ {
		totalVis += vis.VisibleNodes(cells.CellID(c))
	}
	wantV := int64(8)*int64(vis.NumNodes)*int64(vis.Grid.NumCells()) + int64(DefaultVPageBytes)*int64(totalVis)
	if vs != wantV {
		t.Fatalf("vertical size %d, want %d", vs, wantV)
	}
	wantIV := int64(12)*int64(totalVis) + int64(DefaultVPageBytes)*int64(totalVis) + int64(12*vis.Grid.NumCells())
	if ivs != wantIV {
		t.Fatalf("indexed size %d, want %d", ivs, wantIV)
	}
}

func TestSparseSchemesAgree(t *testing.T) {
	vis := sparseVisData(t, 200, 6, 6, 0.15, 7)
	d := storage.NewDisk(0, storage.DefaultCostModel())
	h, err := BuildHorizontal(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := BuildVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := BuildIndexedVertical(d, vis, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < vis.Grid.NumCells(); c++ {
		cell := cells.CellID(c)
		for _, s := range []core.VStore{h, v, iv} {
			if err := s.SetCell(cell); err != nil {
				t.Fatal(err)
			}
		}
		for id := 0; id < vis.NumNodes; id++ {
			want := vis.PerCell[cell][id]
			for _, s := range []core.VStore{h, v, iv} {
				vd, ok, err := s.NodeVD(core.NodeID(id))
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if ok != (want != nil) {
					t.Fatalf("%s cell %d node %d visibility mismatch", s.Name(), cell, id)
				}
				for i := range want {
					if vd[i] != want[i] {
						t.Fatalf("%s cell %d node %d entry %d mismatch", s.Name(), cell, id, i)
					}
				}
			}
		}
	}
}

func TestHorizontalNodeVDCost(t *testing.T) {
	tr, _ := fixture(t)
	if err := fixH.SetCell(0); err != nil {
		t.Fatal(err)
	}
	before := tr.Disk.Stats()
	_, _, err := fixH.NodeVD(0)
	if err != nil {
		t.Fatal(err)
	}
	d := tr.Disk.Stats().Sub(before)
	if d.LightReads != 1 {
		t.Fatalf("horizontal NodeVD cost %d pages, want 1", d.LightReads)
	}
	// Invisible node still costs a read in the horizontal scheme.
	invisible := core.NodeID(-1)
	for c := 0; c < tr.Grid.NumCells() && invisible < 0; c++ {
		_ = fixH.SetCell(cells.CellID(c))
		for id := 0; id < tr.NumNodes(); id++ {
			if fixTree != nil && fixVis.PerCell[cells.CellID(c)][id] == nil {
				invisible = core.NodeID(id)
				break
			}
		}
	}
	if invisible >= 0 {
		before = tr.Disk.Stats()
		_, ok, err := fixH.NodeVD(invisible)
		if err != nil || ok {
			t.Fatalf("invisible node: ok=%v err=%v", ok, err)
		}
		if got := tr.Disk.Stats().Sub(before).LightReads; got != 1 {
			t.Fatalf("invisible NodeVD cost %d, want 1 (horizontal pays for invisibility)", got)
		}
	}
}

func TestVerticalFlipCostAndPruning(t *testing.T) {
	tr, vis := fixture(t)
	// Flip cost: vertical reads PagesFor(8*N_node) pages; indexed reads
	// PagesFor(12*N_vnode) pages.
	if err := fixV.SetCell(0); err != nil {
		t.Fatal(err)
	}
	if err := fixIV.SetCell(0); err != nil {
		t.Fatal(err)
	}
	before := tr.Disk.Stats()
	if err := fixV.SetCell(1); err != nil {
		t.Fatal(err)
	}
	vertFlip := tr.Disk.Stats().Sub(before).LightReads
	wantVert := int64(tr.Disk.PagesFor(int64(8 * tr.NumNodes())))
	if vertFlip != wantVert {
		t.Fatalf("vertical flip cost %d, want %d", vertFlip, wantVert)
	}
	before = tr.Disk.Stats()
	if err := fixIV.SetCell(1); err != nil {
		t.Fatal(err)
	}
	ivFlip := tr.Disk.Stats().Sub(before).LightReads
	wantIV := int64(tr.Disk.PagesFor(int64(12 * vis.VisibleNodes(1))))
	if ivFlip != wantIV {
		t.Fatalf("indexed flip cost %d, want %d", ivFlip, wantIV)
	}
	// Re-setting the same cell is free.
	before = tr.Disk.Stats()
	_ = fixV.SetCell(1)
	_ = fixIV.SetCell(1)
	if got := tr.Disk.Stats().Sub(before).Reads; got != 0 {
		t.Fatalf("same-cell flip cost %d reads", got)
	}
	// Invisible nodes answered from memory with zero I/O.
	var invisID core.NodeID = -1
	for id := 0; id < tr.NumNodes(); id++ {
		if vis.PerCell[1][id] == nil {
			invisID = core.NodeID(id)
			break
		}
	}
	if invisID >= 0 {
		before = tr.Disk.Stats()
		_, ok, err := fixV.NodeVD(invisID)
		if err != nil || ok {
			t.Fatalf("vertical invisible: %v %v", ok, err)
		}
		_, ok, err = fixIV.NodeVD(invisID)
		if err != nil || ok {
			t.Fatalf("indexed invisible: %v %v", ok, err)
		}
		if got := tr.Disk.Stats().Sub(before).Reads; got != 0 {
			t.Fatalf("invisible NodeVD cost %d reads in vertical schemes", got)
		}
	}
}

func TestSchemeErrorPaths(t *testing.T) {
	tr, _ := fixture(t)
	n := tr.Grid.NumCells()
	if err := fixH.SetCell(cells.CellID(n)); err == nil {
		t.Fatal("horizontal out-of-range cell accepted")
	}
	if err := fixV.SetCell(cells.CellID(-1)); err == nil {
		t.Fatal("vertical negative cell accepted")
	}
	if err := fixIV.SetCell(cells.CellID(n + 5)); err == nil {
		t.Fatal("indexed out-of-range cell accepted")
	}
	_ = fixH.SetCell(0)
	_ = fixV.SetCell(0)
	_ = fixIV.SetCell(0)
	bad := core.NodeID(tr.NumNodes() + 3)
	if _, _, err := fixH.NodeVD(bad); err == nil {
		t.Fatal("horizontal bad node accepted")
	}
	if _, _, err := fixV.NodeVD(bad); err == nil {
		t.Fatal("vertical bad node accepted")
	}
	if _, _, err := fixIV.NodeVD(bad); err == nil {
		t.Fatal("indexed bad node accepted")
	}
	// Fresh schemes require SetCell before NodeVD.
	freshDisk := storage.NewDisk(0, storage.DefaultCostModel())
	vis2 := sparseVisData(t, 4, 2, 2, 0.5, 3)
	h2, err := BuildHorizontal(freshDisk, vis2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h2.NodeVD(0); err == nil {
		t.Fatal("NodeVD before SetCell accepted")
	}
	v2, err := BuildVertical(freshDisk, vis2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v2.NodeVD(0); err == nil {
		t.Fatal("vertical NodeVD before SetCell accepted")
	}
	iv2, err := BuildIndexedVertical(freshDisk, vis2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := iv2.NodeVD(0); err == nil {
		t.Fatal("indexed NodeVD before SetCell accepted")
	}
}

func TestQueryEquivalenceAcrossSchemes(t *testing.T) {
	tr, _ := fixture(t)
	etas := []float64{0, 0.0005, 0.002, 0.008}
	for _, eta := range etas {
		var ref *core.QueryResult
		for _, s := range []core.VStore{fixH, fixV, fixIV} {
			tr.SetVStore(s)
			res, err := tr.Query(3, eta)
			if err != nil {
				t.Fatalf("%s eta=%v: %v", s.Name(), eta, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if len(res.Items) != len(ref.Items) {
				t.Fatalf("%s eta=%v: %d items, ref %d", s.Name(), eta, len(res.Items), len(ref.Items))
			}
			for i := range res.Items {
				a, b := res.Items[i], ref.Items[i]
				if a.ObjectID != b.ObjectID || a.NodeID != b.NodeID ||
					a.Level != b.Level || math.Abs(a.DoV-b.DoV) > 1e-12 {
					t.Fatalf("%s eta=%v item %d: %+v != %+v", s.Name(), eta, i, a, b)
				}
			}
		}
	}
}

func TestQuerySearchCostOrdering(t *testing.T) {
	tr, _ := fixture(t)
	// For a fresh cell the horizontal scheme's V-page reads are scattered
	// (one seek per node), while the vertical schemes scan nearly
	// sequentially; simulated search time must reflect that (Figure 7).
	eta := 0.0
	var times []float64
	for _, s := range []core.VStore{fixH, fixV, fixIV} {
		tr.SetVStore(s)
		// Average over all cells for stability; alternate cells to defeat
		// the same-cell flip optimization.
		var total float64
		for c := 0; c < tr.Grid.NumCells(); c++ {
			res, err := tr.Query(cells.CellID(c), eta)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Stats.SimTime.Seconds()
		}
		times = append(times, total)
	}
	if !(times[0] > times[1] && times[0] > times[2]) {
		t.Fatalf("horizontal %v should be slowest (vertical %v, indexed %v)",
			times[0], times[1], times[2])
	}
}
