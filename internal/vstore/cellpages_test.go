package vstore

import (
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/scene"
	"repro/internal/storage"
)

// A private fixture with its own disk: the coverage tests below install a
// buffer pool, which must not leak hit/miss behavior into the shared
// fixture's I/O accounting.
var (
	cpOnce sync.Once
	cpDisk *storage.Disk
	cpVis  *core.VisData
	cpH    *Horizontal
	cpV    *Vertical
	cpIV   *IndexedVertical
)

func cellPagesFixture(t *testing.T) {
	t.Helper()
	cpOnce.Do(func() {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 2, 2
		p.BuildingsPerBlock = 3
		p.BlobsPerBlock = 1
		p.BlobDetail = 8
		p.NominalBytes = 8 << 20
		sc := scene.Generate(p)
		d := storage.NewDisk(0, storage.DefaultCostModel())
		bp := core.DefaultBuildParams()
		bp.Grid = cells.NewGrid(sc.ViewRegion, 4, 4)
		bp.DirsPerViewpoint = 128
		bp.SamplesPerCell = 1
		_, vis, err := core.Build(sc, d, bp)
		if err != nil {
			panic(err)
		}
		cpDisk, cpVis = d, vis
		if cpH, err = BuildHorizontal(d, vis, 0); err != nil {
			panic(err)
		}
		if cpV, err = BuildVertical(d, vis, 0); err != nil {
			panic(err)
		}
		if cpIV, err = BuildIndexedVertical(d, vis, 0); err != nil {
			panic(err)
		}
	})
	if cpDisk == nil {
		t.Fatal("cellpages fixture failed")
	}
}

// CellPages must cover every page the demand path reads for that cell
// (segment flip and V-pages alike): after warming exactly the listed
// pages into a large buffer pool, a fresh session's SetCell + NodeVD
// sweep must run at zero disk I/O. This is the contract the prefetcher
// depends on, proven through the same pool it warms in production.
func TestCellPagesCoverDemandReads(t *testing.T) {
	cellPagesFixture(t)
	d := cpDisk
	d.SetCacheSize(int(d.NumPages()) + 1)
	defer d.SetCacheSize(0)

	schemes := []struct {
		name  string
		pager core.CellPager
		view  func() core.VStore
	}{
		{"horizontal", cpH, func() core.VStore { return cpH.View(d.NewClient()) }},
		{"vertical", cpV, func() core.VStore { return cpV.View(d.NewClient()) }},
		{"indexed", cpIV, func() core.VStore { return cpIV.View(d.NewClient()) }},
	}
	for _, s := range schemes {
		t.Run(s.name, func(t *testing.T) {
			for _, cell := range []cells.CellID{0, 5, 15} {
				pages, err := s.pager.CellPages(d, cell)
				if err != nil {
					t.Fatal(err)
				}
				seen := map[storage.PageID]bool{}
				for _, p := range pages {
					if seen[p] {
						t.Fatalf("cell %d: page %d listed twice", cell, p)
					}
					seen[p] = true
					if err := d.PrefetchPage(p, nil); err != nil {
						t.Fatal(err)
					}
				}
				c := d.NewClient()
				view := s.view()
				if err := view.SetCell(cell); err != nil {
					t.Fatal(err)
				}
				visible := 0
				for id := 0; id < cpVis.NumNodes; id++ {
					_, ok, err := view.NodeVD(core.NodeID(id))
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						visible++
					}
				}
				if st := c.Stats(); st.Reads != 0 {
					t.Fatalf("cell %d: %d demand reads missed the warmed pool (%d pages listed)",
						cell, st.Reads, len(pages))
				}
				if visible == 0 {
					t.Fatalf("cell %d: no visible nodes — coverage proof is vacuous", cell)
				}
				// Pool counters live in the pool itself, so read them
				// before the reset below discards it.
				if hits := d.Stats().PrefetchHits; hits == 0 {
					t.Fatalf("cell %d: warmed pages produced no prefetch hits", cell)
				}
				// Invalidate so the next cell starts cold: re-warm via a
				// fresh pool rather than carrying state across subcases.
				d.SetCacheSize(0)
				d.SetCacheSize(int(d.NumPages()) + 1)
			}
		})
	}
}

// CellPages must not move the scheme's cell cursor: a view mid-query on
// cell A must answer identically after CellPages for cell B runs against
// the same underlying layout.
func TestCellPagesIsReadOnly(t *testing.T) {
	cellPagesFixture(t)
	d := cpDisk
	view := cpV.View(d.NewClient()).(*Vertical)
	if err := view.SetCell(3); err != nil {
		t.Fatal(err)
	}
	before, okBefore, err := view.NodeVD(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := view.CellPages(d, 7); err != nil {
		t.Fatal(err)
	}
	if view.cur != 3 || !view.hasCell {
		t.Fatalf("CellPages moved the cursor to %d", view.cur)
	}
	after, okAfter, err := view.NodeVD(0)
	if err != nil {
		t.Fatal(err)
	}
	if okBefore != okAfter || len(before) != len(after) {
		t.Fatalf("CellPages disturbed an active view: before ok=%v n=%d, after ok=%v n=%d",
			okBefore, len(before), okAfter, len(after))
	}
}

// The horizontal VD cache must avoid repeat V-page reads within its
// bound, count hits in Stats, stay per-view, and evict at its capacity.
func TestHorizontalVDCache(t *testing.T) {
	cellPagesFixture(t)
	d := cpDisk
	base := *cpH // private copy so the shared scheme stays cache-free
	base.EnableVDCache(4 * cpVis.NumNodes)

	c := d.NewClient()
	view := base.View(c).(*Horizontal)
	if err := view.SetCell(0); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < cpVis.NumNodes; id++ {
		if _, _, err := view.NodeVD(core.NodeID(id)); err != nil {
			t.Fatal(err)
		}
	}
	cold := c.Stats()
	if cold.VDCacheHits != 0 {
		t.Fatalf("cold pass hit the cache: %d", cold.VDCacheHits)
	}
	if cold.Reads == 0 {
		t.Fatal("cold pass read nothing")
	}
	for id := 0; id < cpVis.NumNodes; id++ {
		if _, _, err := view.NodeVD(core.NodeID(id)); err != nil {
			t.Fatal(err)
		}
	}
	warm := c.Stats().Sub(cold)
	if warm.Reads != 0 {
		t.Fatalf("warm pass still read %d pages", warm.Reads)
	}
	if warm.VDCacheHits != int64(cpVis.NumNodes) {
		t.Fatalf("warm pass VDCacheHits = %d, want %d", warm.VDCacheHits, cpVis.NumNodes)
	}
	if view.VDCacheHits() != int64(cpVis.NumNodes) {
		t.Fatalf("view hit counter = %d, want %d", view.VDCacheHits(), cpVis.NumNodes)
	}

	// A sibling view must start cold: caches are per-view, never shared.
	c2 := d.NewClient()
	view2 := base.View(c2).(*Horizontal)
	if err := view2.SetCell(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := view2.NodeVD(0); err != nil {
		t.Fatal(err)
	}
	if got := c2.Stats().VDCacheHits; got != 0 {
		t.Fatalf("fresh view inherited warm cache: %d hits", got)
	}

	// Eviction bound: with capacity 1 an alternating two-node access
	// pattern always evicts before re-use, so it never hits and the cache
	// never exceeds one entry.
	tiny := *cpH
	tiny.EnableVDCache(1)
	c3 := d.NewClient()
	view3 := tiny.View(c3).(*Horizontal)
	if err := view3.SetCell(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := view3.NodeVD(0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := view3.NodeVD(1); err != nil {
			t.Fatal(err)
		}
	}
	if got := c3.Stats().VDCacheHits; got != 0 {
		t.Fatalf("capacity-1 cache produced %d hits on alternating nodes", got)
	}
	if n := len(view3.vdCache.entries); n > 1 {
		t.Fatalf("capacity-1 cache holds %d entries", n)
	}
}

// The base schemes keep the cache off: the Figure 7 comparison
// (horizontal slowest) depends on the uncached cost model.
func TestHorizontalVDCacheOffByDefault(t *testing.T) {
	cellPagesFixture(t)
	if cpH.vdCache != nil || cpH.vdCacheCap != 0 {
		t.Fatal("horizontal VD cache enabled by default")
	}
	if v := cpH.View(cpDisk.NewClient()).(*Horizontal); v.vdCache != nil {
		t.Fatal("view of uncached scheme got a cache")
	}
}
