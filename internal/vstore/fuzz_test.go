package vstore

import (
	"encoding/binary"
	"testing"

	"repro/internal/core"
)

// FuzzDecodePointerSegment drives the vertical scheme's V-page-index
// segment reader (§4.2) with arbitrary bytes and geometry. A successful
// decode must yield exactly numNodes pointers, each nilSlot or a valid
// slot — anything else is a path for corrupt segments to become
// out-of-range reads mid-query.
func FuzzDecodePointerSegment(f *testing.F) {
	good := make([]byte, 3*pointerBytes)
	var nilPtr int64 = nilSlot
	binary.LittleEndian.PutUint64(good[0:], uint64(nilPtr))
	binary.LittleEndian.PutUint64(good[8:], 0)
	binary.LittleEndian.PutUint64(good[16:], 1)
	f.Add(good, 3, int64(2))
	f.Add([]byte{}, 0, int64(0))
	f.Add([]byte{0xff}, 1, int64(4))
	f.Fuzz(func(t *testing.T, data []byte, numNodes int, numSlots int64) {
		if numNodes > 1<<16 {
			return // bound allocation, not behavior
		}
		seg, err := decodePointerSegment(data, numNodes, numSlots)
		if err != nil {
			return
		}
		if len(seg) != numNodes {
			t.Fatalf("decoded %d pointers, want %d", len(seg), numNodes)
		}
		for i, p := range seg {
			if p != nilSlot && (p < 0 || p >= numSlots) {
				t.Fatalf("pointer %d = %d escaped validation (%d slots)", i, p, numSlots)
			}
		}
	})
}

// FuzzDecodeIndexSegment drives the indexed-vertical scheme's segment
// reader (§4.3): every accepted entry must reference a valid node and
// slot, with no duplicate nodes.
func FuzzDecodeIndexSegment(f *testing.F) {
	good := make([]byte, 2*segEntryBytes)
	binary.LittleEndian.PutUint32(good[0:], 0)
	binary.LittleEndian.PutUint64(good[4:], 0)
	binary.LittleEndian.PutUint32(good[segEntryBytes:], 5)
	binary.LittleEndian.PutUint64(good[segEntryBytes+4:], 1)
	f.Add(good, 2, 8, int64(2))
	f.Add([]byte{}, 0, 0, int64(0))
	f.Add([]byte{0x01, 0x02, 0x03}, 1, 2, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, count, numNodes int, numSlots int64) {
		if count > 1<<16 {
			return // bound allocation, not behavior
		}
		m, err := decodeIndexSegment(data, count, numNodes, numSlots)
		if err != nil {
			return
		}
		if len(m) != count {
			t.Fatalf("decoded %d entries, want %d (duplicate slipped through?)", len(m), count)
		}
		for id, slot := range m {
			if int(id) < 0 || int(id) >= numNodes {
				t.Fatalf("node %d escaped validation (%d nodes)", id, numNodes)
			}
			if slot < 0 || slot >= numSlots {
				t.Fatalf("slot %d escaped validation (%d slots)", slot, numSlots)
			}
		}
	})
}

// FuzzDecodeVPage drives the V-page codec with arbitrary bytes.
func FuzzDecodeVPage(f *testing.F) {
	good, _ := encodeVPage([]core.VD{{DoV: 0.5, NVO: 2}, {DoV: 0, NVO: 0}}, 4096)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		vd, err := decodeVPage(data)
		if err == nil && vd != nil {
			// Round-trip whatever decoded cleanly.
			if _, err := encodeVPage(vd, 1<<20); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}
