package vstore

import (
	"testing"

	"repro/internal/core"
)

// FuzzDecodeVPage drives the V-page codec with arbitrary bytes.
func FuzzDecodeVPage(f *testing.F) {
	good, _ := encodeVPage([]core.VD{{DoV: 0.5, NVO: 2}, {DoV: 0, NVO: 0}}, 4096)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		vd, err := decodeVPage(data)
		if err == nil && vd != nil {
			// Round-trip whatever decoded cleanly.
			if _, err := encodeVPage(vd, 1<<20); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}
