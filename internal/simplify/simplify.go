// Package simplify implements polygon simplification with quadric error
// metrics (Garland & Heckbert, SIGGRAPH'97) — the algorithm behind qslim,
// the tool the paper uses to generate internal LoDs (§5.1, reference [6]).
//
// The simplifier performs iterative edge collapse: each vertex accumulates
// the quadric (squared point-plane distance form) of its incident triangle
// planes; the edge whose contraction minimizes the summed quadric error is
// collapsed first, using a heap keyed by error. Topology bookkeeping is
// deliberately simple (no explicit half-edge structure): after each
// collapse, degenerate triangles are dropped and affected edge costs are
// recomputed lazily, which is the standard "lazy deletion" variant.
package simplify

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// quadric is a symmetric 4x4 quadric form Q; the error of placing a vertex
// at homogeneous position v is vᵀQv. Only the 10 unique coefficients are
// stored.
type quadric struct {
	a2, ab, ac, ad float64
	b2, bc, bd     float64
	c2, cd         float64
	d2             float64
}

func (q *quadric) add(o *quadric) {
	q.a2 += o.a2
	q.ab += o.ab
	q.ac += o.ac
	q.ad += o.ad
	q.b2 += o.b2
	q.bc += o.bc
	q.bd += o.bd
	q.c2 += o.c2
	q.cd += o.cd
	q.d2 += o.d2
}

// planeQuadric builds the fundamental quadric of plane ax+by+cz+d=0 with
// unit normal (a,b,c), weighted by w (triangle area weighting makes the
// metric scale-invariant).
func planeQuadric(n geom.Vec3, d, w float64) quadric {
	return quadric{
		a2: w * n.X * n.X, ab: w * n.X * n.Y, ac: w * n.X * n.Z, ad: w * n.X * d,
		b2: w * n.Y * n.Y, bc: w * n.Y * n.Z, bd: w * n.Y * d,
		c2: w * n.Z * n.Z, cd: w * n.Z * d,
		d2: w * d * d,
	}
}

// eval returns vᵀQv for v = (p, 1).
func (q *quadric) eval(p geom.Vec3) float64 {
	return q.a2*p.X*p.X + 2*q.ab*p.X*p.Y + 2*q.ac*p.X*p.Z + 2*q.ad*p.X +
		q.b2*p.Y*p.Y + 2*q.bc*p.Y*p.Z + 2*q.bd*p.Y +
		q.c2*p.Z*p.Z + 2*q.cd*p.Z +
		q.d2
}

// optimalPoint solves ∇(vᵀQv) = 0 for the contraction target. If the 3x3
// system is singular (e.g. planar neighborhoods), ok is false and callers
// fall back to candidate endpoints/midpoint.
func (q *quadric) optimalPoint() (geom.Vec3, bool) {
	// Solve [a2 ab ac; ab b2 bc; ac bc c2] x = -[ad; bd; cd].
	m := [3][3]float64{
		{q.a2, q.ab, q.ac},
		{q.ab, q.b2, q.bc},
		{q.ac, q.bc, q.c2},
	}
	rhs := [3]float64{-q.ad, -q.bd, -q.cd}
	det := m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
	if math.Abs(det) < 1e-12 {
		return geom.Vec3{}, false
	}
	inv := 1 / det
	x := (rhs[0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(rhs[1]*m[2][2]-m[1][2]*rhs[2]) +
		m[0][2]*(rhs[1]*m[2][1]-m[1][1]*rhs[2])) * inv
	y := (m[0][0]*(rhs[1]*m[2][2]-m[1][2]*rhs[2]) -
		rhs[0]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*rhs[2]-rhs[1]*m[2][0])) * inv
	z := (m[0][0]*(m[1][1]*rhs[2]-rhs[1]*m[2][1]) -
		m[0][1]*(m[1][0]*rhs[2]-rhs[1]*m[2][0]) +
		rhs[0]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])) * inv
	p := geom.Vec3{X: x, Y: y, Z: z}
	if !p.IsFinite() {
		return geom.Vec3{}, false
	}
	return p, true
}

type edge struct {
	v0, v1  uint32 // v0 < v1
	cost    float64
	target  geom.Vec3
	version int // lazy-deletion stamp: stale entries are skipped on pop
}

type edgeHeap []*edge

func (h edgeHeap) Len() int            { return len(h) }
func (h edgeHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(*edge)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type simplifier struct {
	verts    []geom.Vec3
	quadrics []quadric
	parent   []uint32 // union-find over collapsed vertices
	version  []int    // per-vertex collapse stamp for lazy heap deletion
	tris     [][3]uint32
	triLive  []bool
	vtris    [][]int // vertex -> incident triangle ids (after find)
	h        edgeHeap
	liveTris int
}

func (s *simplifier) find(v uint32) uint32 {
	for s.parent[v] != v {
		s.parent[v] = s.parent[s.parent[v]]
		v = s.parent[v]
	}
	return v
}

// Simplify returns a copy of m reduced to at most targetTris triangles (but
// never below 1 for a non-empty input). The input mesh is not modified.
// If m already has at most targetTris triangles, a clone is returned.
func Simplify(m *mesh.Mesh, targetTris int) *mesh.Mesh {
	if targetTris < 1 {
		targetTris = 1
	}
	if m.NumTriangles() <= targetTris {
		return m.Clone()
	}

	s := &simplifier{
		verts:    append([]geom.Vec3(nil), m.Verts...),
		quadrics: make([]quadric, len(m.Verts)),
		parent:   make([]uint32, len(m.Verts)),
		version:  make([]int, len(m.Verts)),
		tris:     make([][3]uint32, m.NumTriangles()),
		triLive:  make([]bool, m.NumTriangles()),
		vtris:    make([][]int, len(m.Verts)),
	}
	for i := range s.parent {
		s.parent[i] = uint32(i)
	}
	for i := 0; i < m.NumTriangles(); i++ {
		t := [3]uint32{m.Tris[3*i], m.Tris[3*i+1], m.Tris[3*i+2]}
		s.tris[i] = t
		s.triLive[i] = true
		for _, v := range t {
			s.vtris[v] = append(s.vtris[v], i)
		}
	}
	s.liveTris = m.NumTriangles()

	// Accumulate fundamental quadrics.
	for i, t := range s.tris {
		a, b, c := s.verts[t[0]], s.verts[t[1]], s.verts[t[2]]
		nvec := b.Sub(a).Cross(c.Sub(a))
		area := nvec.Len() / 2
		if area < 1e-15 {
			s.triLive[i] = false
			s.liveTris--
			continue
		}
		n := nvec.Normalize()
		d := -n.Dot(a)
		q := planeQuadric(n, d, area)
		for _, v := range t {
			s.quadrics[v].add(&q)
		}
	}

	// Count edge incidence so boundary edges (used by exactly one live
	// triangle) can be constrained. qslim does the same: without boundary
	// penalties, an open sheet has zero quadric error everywhere and
	// collapses away entirely, destroying surface area.
	edgeCount := make(map[uint64]int)
	edgeTri := make(map[uint64]int)
	key := func(v0, v1 uint32) uint64 {
		if v0 > v1 {
			v0, v1 = v1, v0
		}
		return uint64(v0)<<32 | uint64(v1)
	}
	for i, t := range s.tris {
		if !s.triLive[i] {
			continue
		}
		for k := 0; k < 3; k++ {
			ek := key(t[k], t[(k+1)%3])
			edgeCount[ek]++
			edgeTri[ek] = i
		}
	}
	// Deterministic edge order: map iteration order is randomized, and
	// both the float additions below and equal-cost heap pops are order
	// sensitive, so a sorted key list keeps simplification reproducible
	// (the persistence layer regenerates scenes and must get identical
	// meshes).
	keys := make([]uint64, 0, len(edgeCount))
	for ek := range edgeCount {
		keys = append(keys, ek)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	for _, ek := range keys {
		if edgeCount[ek] != 1 {
			continue
		}
		v0 := uint32(ek >> 32)
		v1 := uint32(ek & 0xffffffff)
		ti := edgeTri[ek]
		t := s.tris[ti]
		a, b, c := s.verts[t[0]], s.verts[t[1]], s.verts[t[2]]
		faceN := b.Sub(a).Cross(c.Sub(a)).Normalize()
		edgeDir := s.verts[v1].Sub(s.verts[v0])
		// Constraint plane contains the edge and is perpendicular to the
		// triangle, so motion off the boundary line is penalized.
		n := edgeDir.Cross(faceN).Normalize()
		if n.Len2() == 0 {
			continue
		}
		d := -n.Dot(s.verts[v0])
		w := edgeDir.Len2() * 100 // strong boundary weight, à la qslim
		q := planeQuadric(n, d, w)
		s.quadrics[v0].add(&q)
		s.quadrics[v1].add(&q)
	}

	// Seed the heap with every mesh edge (same deterministic order).
	for _, ek := range keys {
		s.pushEdge(uint32(ek>>32), uint32(ek&0xffffffff))
	}
	heap.Init(&s.h)

	for s.liveTris > targetTris && s.h.Len() > 0 {
		e := heap.Pop(&s.h).(*edge)
		v0, v1 := s.find(e.v0), s.find(e.v1)
		if v0 == v1 {
			continue // already merged
		}
		// Stale if either endpoint changed since the edge was scored.
		if e.version != s.version[v0]+s.version[v1] {
			continue
		}
		s.collapse(v0, v1, e.target)
	}

	return s.extract()
}

func (s *simplifier) pushEdge(v0, v1 uint32) {
	q := s.quadrics[v0]
	q.add(&s.quadrics[v1])
	target, ok := q.optimalPoint()
	cost := math.Inf(1)
	if ok {
		cost = q.eval(target)
	}
	// Fall back to the best of the endpoints and midpoint.
	for _, cand := range []geom.Vec3{s.verts[v0], s.verts[v1], s.verts[v0].Lerp(s.verts[v1], 0.5)} {
		if c := q.eval(cand); c < cost {
			cost, target = c, cand
		}
	}
	if cost < 0 {
		cost = 0 // numerical noise
	}
	s.h = append(s.h, &edge{v0: v0, v1: v1, cost: cost, target: target,
		version: s.version[v0] + s.version[v1]})
}

// collapse merges v1 into v0, placing v0 at target.
func (s *simplifier) collapse(v0, v1 uint32, target geom.Vec3) {
	s.verts[v0] = target
	s.quadrics[v0].add(&s.quadrics[v1])
	s.parent[v1] = v0
	s.version[v0]++

	// Move v1's triangles to v0, dropping those that become degenerate.
	for _, ti := range s.vtris[v1] {
		if !s.triLive[ti] {
			continue
		}
		t := &s.tris[ti]
		// A triangle that spanned the collapsed edge now has two corners
		// with the same root and is degenerate.
		r0, r1, r2 := s.find(t[0]), s.find(t[1]), s.find(t[2])
		if r0 == r1 || r1 == r2 || r0 == r2 {
			s.triLive[ti] = false
			s.liveTris--
		} else {
			s.vtris[v0] = append(s.vtris[v0], ti)
		}
	}
	s.vtris[v1] = nil

	// Re-score edges incident to v0.
	neighbors := make(map[uint32]bool)
	live := s.vtris[v0][:0]
	for _, ti := range s.vtris[v0] {
		if !s.triLive[ti] {
			continue
		}
		live = append(live, ti)
		t := s.tris[ti]
		for k := 0; k < 3; k++ {
			r := s.find(t[k])
			if r != v0 {
				neighbors[r] = true
			}
		}
	}
	s.vtris[v0] = live
	// Sorted neighbor order keeps equal-cost heap contents deterministic.
	ns := make([]uint32, 0, len(neighbors))
	for n := range neighbors {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	for _, n := range ns {
		a, b := v0, n
		if a > b {
			a, b = b, a
		}
		s.pushEdge(a, b)
		heap.Fix(&s.h, s.h.Len()-1)
	}
}

// extract builds the output mesh from live triangles.
func (s *simplifier) extract() *mesh.Mesh {
	out := &mesh.Mesh{}
	remap := make(map[uint32]uint32)
	for i, t := range s.tris {
		if !s.triLive[i] {
			continue
		}
		var idx [3]uint32
		for k := 0; k < 3; k++ {
			r := s.find(t[k])
			id, ok := remap[r]
			if !ok {
				id = uint32(len(out.Verts))
				out.Verts = append(out.Verts, s.verts[r])
				remap[r] = id
			}
			idx[k] = id
		}
		if idx[0] == idx[1] || idx[1] == idx[2] || idx[0] == idx[2] {
			continue
		}
		out.Tris = append(out.Tris, idx[0], idx[1], idx[2])
	}
	return out
}

// BuildLoDChain produces an n-level LoD chain for m. Level 0 is m itself;
// each subsequent level has its triangle budget multiplied by ratio
// (0 < ratio < 1). This mirrors the paper's per-object LoD preprocessing
// with qslim: fixed reduction ratios per level.
func BuildLoDChain(m *mesh.Mesh, levels int, ratio float64) *mesh.LoDChain {
	if levels < 1 {
		levels = 1
	}
	if ratio <= 0 || ratio >= 1 {
		ratio = 0.25
	}
	chain := &mesh.LoDChain{Levels: make([]*mesh.Mesh, 0, levels)}
	chain.Levels = append(chain.Levels, m)
	budget := float64(m.NumTriangles())
	prev := m
	for i := 1; i < levels; i++ {
		budget *= ratio
		target := int(budget)
		if target < 4 {
			target = 4
		}
		next := Simplify(prev, target)
		if next.NumTriangles() > prev.NumTriangles() {
			next = prev.Clone()
		}
		chain.Levels = append(chain.Levels, next)
		prev = next
	}
	return chain
}
