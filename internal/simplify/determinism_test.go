package simplify

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mesh"
)

// TestSimplifyDeterministic guards the persistence layer: regenerating a
// scene must reproduce bit-identical LoD chains.
func TestSimplifyDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := mesh.NewBlob(geom.V(0, 0, 0), 2, 14, seed)
		a := Simplify(m, m.NumTriangles()/4)
		b := Simplify(m, m.NumTriangles()/4)
		if a.NumVerts() != b.NumVerts() || a.NumTriangles() != b.NumTriangles() {
			t.Fatalf("seed %d: shapes differ", seed)
		}
		for i := range a.Verts {
			if a.Verts[i] != b.Verts[i] {
				t.Fatalf("seed %d: vertex %d differs", seed, i)
			}
		}
		for i := range a.Tris {
			if a.Tris[i] != b.Tris[i] {
				t.Fatalf("seed %d: index %d differs", seed, i)
			}
		}
	}
}
