package simplify

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/mesh"
)

func TestSimplifyNoopBelowTarget(t *testing.T) {
	m := mesh.NewBox(geom.BoxAt(geom.V(0, 0, 0), 1))
	out := Simplify(m, 100)
	if out.NumTriangles() != 12 {
		t.Fatalf("got %d triangles", out.NumTriangles())
	}
	// Must be a copy, not the same backing array.
	out.Verts[0] = geom.V(9, 9, 9)
	if m.Verts[0] == out.Verts[0] {
		t.Fatal("Simplify returned aliased mesh")
	}
}

func TestSimplifySphereReduces(t *testing.T) {
	m := mesh.NewSphere(geom.V(0, 0, 0), 5, 16, 32)
	start := m.NumTriangles()
	out := Simplify(m, start/4)
	if out.NumTriangles() > start/4 {
		t.Fatalf("simplified to %d, want <= %d", out.NumTriangles(), start/4)
	}
	if out.NumTriangles() < 4 {
		t.Fatalf("over-simplified to %d", out.NumTriangles())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// Input must be untouched.
	if m.NumTriangles() != start {
		t.Fatal("input mesh modified")
	}
	// The simplified sphere should stay near the original surface: all
	// vertices within a tolerance band of the radius.
	for i, v := range out.Verts {
		r := v.Len()
		if r < 3.5 || r > 6.5 {
			t.Fatalf("vertex %d drifted to radius %v", i, r)
		}
	}
	// Bounds should not grow much.
	ob := out.Bounds()
	ib := m.Bounds().Expand(1.0)
	if !ib.Contains(ob) {
		t.Fatalf("bounds grew: %v vs %v", ob, m.Bounds())
	}
}

func TestSimplifyPreservesBoxShape(t *testing.T) {
	// A box is already minimal in planar regions: QEM should be able to cut
	// a tessellated box back near 12 triangles with tiny error.
	box := geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 4))
	m := mesh.NewSphere(geom.V(2, 2, 2), 1, 12, 24) // placeholder fine mesh inside
	_ = m
	// Each face is an independent (unwelded) sheet, so the floor is 2
	// triangles per face; 24 leaves the greedy collapse room to keep all
	// six faces intact.
	fine := tessellatedBox(box, 4)
	out := Simplify(fine, 24)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.NumTriangles() > 24 {
		t.Fatalf("box simplified to %d triangles", out.NumTriangles())
	}
	// Surface area should stay close to the box's.
	want := box.SurfaceArea()
	got := out.SurfaceArea()
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("area drifted: got %v want %v", got, want)
	}
}

// tessellatedBox builds a box where each face is an n x n grid of quads.
func tessellatedBox(b geom.AABB, n int) *mesh.Mesh {
	var parts []*mesh.Mesh
	size := b.Size()
	// For each of the 6 faces, generate a grid.
	for axis := 0; axis < 3; axis++ {
		u := (axis + 1) % 3
		v := (axis + 2) % 3
		for _, side := range []float64{0, 1} {
			face := &mesh.Mesh{}
			fixed := b.Min.Axis(axis) + side*size.Axis(axis)
			for i := 0; i <= n; i++ {
				for j := 0; j <= n; j++ {
					p := geom.Vec3{}
					p = p.WithAxis(axis, fixed)
					p = p.WithAxis(u, b.Min.Axis(u)+size.Axis(u)*float64(i)/float64(n))
					p = p.WithAxis(v, b.Min.Axis(v)+size.Axis(v)*float64(j)/float64(n))
					face.Verts = append(face.Verts, p)
				}
			}
			at := func(i, j int) uint32 { return uint32(i*(n+1) + j) }
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a, bb, c, d := at(i, j), at(i+1, j), at(i, j+1), at(i+1, j+1)
					face.Tris = append(face.Tris, a, bb, c, bb, d, c)
				}
			}
			parts = append(parts, face)
		}
	}
	return mesh.Merge(parts...)
}

func TestBuildLoDChain(t *testing.T) {
	m := mesh.NewBlob(geom.V(0, 0, 0), 3, 16, 11)
	chain := BuildLoDChain(m, 4, 0.25)
	if chain.NumLevels() != 4 {
		t.Fatalf("levels = %d", chain.NumLevels())
	}
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	if chain.Finest() != m {
		t.Fatal("level 0 should be the input mesh")
	}
	// Each level roughly quarter of the previous.
	for i := 1; i < chain.NumLevels(); i++ {
		prev := chain.Levels[i-1].NumTriangles()
		cur := chain.Levels[i].NumTriangles()
		if cur > prev {
			t.Fatalf("level %d has more triangles than level %d", i, i-1)
		}
	}
	last := chain.Coarsest().NumTriangles()
	if last > m.NumTriangles()/16 && last > 8 {
		t.Fatalf("coarsest level too fine: %d of %d", last, m.NumTriangles())
	}
}

func TestBuildLoDChainDegenerateParams(t *testing.T) {
	m := mesh.NewBox(geom.BoxAt(geom.V(0, 0, 0), 1))
	c := BuildLoDChain(m, 0, 0.5)
	if c.NumLevels() != 1 {
		t.Fatalf("levels = %d", c.NumLevels())
	}
	c2 := BuildLoDChain(m, 3, -1)
	if c2.NumLevels() != 3 {
		t.Fatalf("levels = %d", c2.NumLevels())
	}
	if err := c2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyDegenerateInputs(t *testing.T) {
	// Empty mesh.
	empty := &mesh.Mesh{}
	if out := Simplify(empty, 10); out.NumTriangles() != 0 {
		t.Fatal("empty mesh grew")
	}
	// Mesh with a zero-area triangle only.
	deg := &mesh.Mesh{
		Verts: []geom.Vec3{{X: 0}, {X: 1}, {X: 2}},
		Tris:  []uint32{0, 1, 2},
	}
	out := Simplify(deg, 0) // target clamps to 1; degenerate tri dropped or kept
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPropSimplifyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		m := mesh.NewBlob(geom.V(0, 0, 0), 2, 10+int(seed%8), seed)
		target := 10 + int(seed%50)
		out := Simplify(m, target)
		if err := out.Validate(); err != nil {
			return false
		}
		// Never more triangles than the input.
		if out.NumTriangles() > m.NumTriangles() {
			return false
		}
		// Bounds may shrink but must stay within a modestly expanded input
		// bound (QEM optimal placement can move vertices slightly outward).
		margin := m.Bounds().Size().Len() * 0.2
		return m.Bounds().Expand(margin).Contains(out.Bounds())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
