package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randBox(r *rand.Rand, world float64, maxSize float64) geom.AABB {
	c := geom.V(r.Float64()*world, r.Float64()*world, r.Float64()*world)
	return geom.BoxAt(c, 0.1+r.Float64()*maxSize/2)
}

func buildRandom(t *testing.T, n int, seed int64) (*Tree, []geom.AABB) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr := New(0, 0)
	boxes := make([]geom.AABB, n)
	for i := 0; i < n; i++ {
		boxes[i] = randBox(r, 1000, 20)
		tr.Insert(boxes[i], int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after %d inserts: %v", n, err)
	}
	return tr, boxes
}

func bruteSearch(boxes []geom.AABB, q geom.AABB) []int64 {
	var out []int64
	for i, b := range boxes {
		if b.Intersects(q) {
			out = append(out, int64(i))
		}
	}
	return out
}

func sortedEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int64(nil), a...)
	bs := append([]int64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestNewDefaults(t *testing.T) {
	tr := New(0, 0)
	if tr.MaxEntries() != DefaultMaxEntries {
		t.Fatalf("max = %d", tr.MaxEntries())
	}
	if tr.MinEntries() < 1 || tr.MinEntries() > tr.MaxEntries()/2 {
		t.Fatalf("min = %d", tr.MinEntries())
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty tree shape wrong")
	}
	// Invalid min falls back.
	tr2 := New(100, 8)
	if tr2.MinEntries() != 4 {
		t.Fatalf("min = %d", tr2.MinEntries())
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tr := New(2, 4)
	boxes := []geom.AABB{
		geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)),
		geom.Box(geom.V(5, 5, 5), geom.V(6, 6, 6)),
		geom.Box(geom.V(0.5, 0.5, 0.5), geom.V(2, 2, 2)),
	}
	for i, b := range boxes {
		tr.Insert(b, int64(i))
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d", tr.Len())
	}
	got := tr.Search(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), nil)
	if !sortedEqual(got, []int64{0, 2}) {
		t.Fatalf("got %v", got)
	}
	got = tr.Search(geom.Box(geom.V(10, 10, 10), geom.V(11, 11, 11)), nil)
	if len(got) != 0 {
		t.Fatalf("got %v for empty query", got)
	}
}

func TestSplitGrowsTree(t *testing.T) {
	tr := New(2, 4)
	for i := 0; i < 20; i++ {
		tr.Insert(geom.BoxAt(geom.V(float64(i)*10, 0, 0), 1), int64(i))
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d after 20 inserts with fanout 4", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything findable.
	got := tr.Search(tr.Bounds(), nil)
	if len(got) != 20 {
		t.Fatalf("found %d of 20", len(got))
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	tr, boxes := buildRandom(t, 500, 42)
	r := rand.New(rand.NewSource(43))
	for q := 0; q < 100; q++ {
		query := randBox(r, 1000, 200)
		got := tr.Search(query, nil)
		want := bruteSearch(boxes, query)
		if !sortedEqual(got, want) {
			t.Fatalf("query %d: got %d items, want %d", q, len(got), len(want))
		}
	}
}

func TestSearchFnEarlyStop(t *testing.T) {
	tr, _ := buildRandom(t, 200, 7)
	count := 0
	tr.SearchFn(tr.Bounds(), func(id int64, mbr geom.AABB) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("visited %d, want 5", count)
	}
	// Visited node count is positive and bounded by total nodes.
	visited := tr.SearchFn(geom.BoxAt(geom.V(-1e6, 0, 0), 1), func(int64, geom.AABB) bool { return true })
	if visited < 1 || visited > tr.NumNodes() {
		t.Fatalf("visited %d nodes", visited)
	}
}

func TestDelete(t *testing.T) {
	tr, boxes := buildRandom(t, 300, 11)
	// Delete half.
	for i := 0; i < 150; i++ {
		if !tr.Delete(boxes[i], int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Deleted items are gone; surviving items findable.
	all := tr.Search(tr.Bounds().Expand(1), nil)
	seen := make(map[int64]bool)
	for _, id := range all {
		seen[id] = true
	}
	for i := 0; i < 150; i++ {
		if seen[int64(i)] {
			t.Fatalf("deleted item %d still present", i)
		}
	}
	for i := 150; i < 300; i++ {
		if !seen[int64(i)] {
			t.Fatalf("item %d lost", i)
		}
	}
	// Deleting a non-existent item returns false.
	if tr.Delete(geom.BoxAt(geom.V(1e9, 0, 0), 1), 99999) {
		t.Fatal("phantom delete succeeded")
	}
}

func TestDeleteAll(t *testing.T) {
	tr, boxes := buildRandom(t, 100, 13)
	for i := range boxes {
		if !tr.Delete(boxes[i], int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d", tr.Len())
	}
	if got := tr.Search(geom.BoxAt(geom.V(500, 500, 500), 1e5), nil); len(got) != 0 {
		t.Fatalf("emptied tree returned %v", got)
	}
	// Tree still usable after emptying.
	tr.Insert(geom.BoxAt(geom.V(0, 0, 0), 1), 1)
	if tr.Len() != 1 {
		t.Fatal("reinsert after empty failed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWalkDepthFirst(t *testing.T) {
	tr, _ := buildRandom(t, 200, 17)
	var depths []int
	nodes := 0
	tr.WalkDepthFirst(func(n *Node, depth int) {
		nodes++
		depths = append(depths, depth)
		if depth == 0 && n != tr.Root() {
			t.Fatal("first node at depth 0 is not root")
		}
	})
	if nodes != tr.NumNodes() {
		t.Fatalf("walk visited %d, NumNodes says %d", nodes, tr.NumNodes())
	}
	if depths[0] != 0 {
		t.Fatal("walk did not start at root")
	}
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth+1 != tr.Height() {
		t.Fatalf("max depth %d vs height %d", maxDepth, tr.Height())
	}
}

func TestClusteredInsertOverlapStaysReasonable(t *testing.T) {
	// Ang-Tan split minimizes overlap; verify sibling overlap at the root
	// stays small for a clustered workload.
	r := rand.New(rand.NewSource(5))
	tr := New(0, 0)
	id := int64(0)
	for c := 0; c < 10; c++ {
		center := geom.V(r.Float64()*10000, r.Float64()*10000, 0)
		for i := 0; i < 100; i++ {
			off := geom.V(r.NormFloat64()*50, r.NormFloat64()*50, r.Float64()*30)
			tr.Insert(geom.BoxAt(center.Add(off), 2), id)
			id++
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root.Leaf {
		t.Fatal("tree unexpectedly shallow")
	}
	var overlap, total float64
	for i := range root.Entries {
		total += root.Entries[i].MBR.Volume()
		for j := i + 1; j < len(root.Entries); j++ {
			overlap += root.Entries[i].MBR.Intersect(root.Entries[j].MBR).Volume()
		}
	}
	if total > 0 && overlap/total > 0.5 {
		t.Fatalf("root overlap ratio %v too high", overlap/total)
	}
}

func TestPropInsertSearchDelete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + int(r.Int31n(150))
		tr := New(2, 4+int(r.Int31n(12)))
		boxes := make([]geom.AABB, n)
		for i := 0; i < n; i++ {
			boxes[i] = randBox(r, 500, 30)
			tr.Insert(boxes[i], int64(i))
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		// Every inserted item findable via its own box.
		for i := 0; i < n; i++ {
			found := false
			for _, id := range tr.Search(boxes[i], nil) {
				if id == int64(i) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// Random deletions keep invariants.
		for i := 0; i < n/3; i++ {
			if !tr.Delete(boxes[i], int64(i)) {
				return false
			}
		}
		return tr.CheckInvariants() == nil && tr.Len() == n-n/3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEntryMBRContainment(t *testing.T) {
	// Every node's entry MBR contains all descendant item boxes.
	tr, boxes := buildRandom(t, 400, 23)
	_ = boxes
	var check func(n *Node) geom.AABB
	ok := true
	check = func(n *Node) geom.AABB {
		b := geom.EmptyAABB()
		for _, e := range n.Entries {
			if n.Leaf {
				b = b.Union(e.MBR)
				continue
			}
			sub := check(e.Child)
			if !e.MBR.Expand(1e-9).Contains(sub) {
				ok = false
			}
			b = b.Union(e.MBR)
		}
		return b
	}
	check(tr.Root())
	if !ok {
		t.Fatal("MBR containment violated")
	}
}

func BenchmarkInsert(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(0, 0)
	boxes := make([]geom.AABB, b.N)
	for i := range boxes {
		boxes[i] = randBox(r, 10000, 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(boxes[i], int64(i))
	}
}

func BenchmarkSearch(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr := New(0, 0)
	for i := 0; i < 10000; i++ {
		tr.Insert(randBox(r, 10000, 20), int64(i))
	}
	queries := make([]geom.AABB, 256)
	for i := range queries {
		queries[i] = randBox(r, 10000, 500)
	}
	var dst []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Search(queries[i%len(queries)], dst[:0])
	}
}
