// Package rtree implements a 3-dimensional R-tree (Guttman, SIGMOD'84) with
// the Ang–Tan linear node-splitting algorithm (SSD'97), the combination the
// paper uses as the HDoV-tree backbone: "an R-tree spatial index is created
// to organize the object models. The insertion algorithm applies a linear
// node splitting algorithm to minimize the overlap of the bounding boxes"
// (§5.1).
//
// The tree is an in-memory structure; the HDoV-tree builder walks its nodes
// in depth-first order to assign on-disk node IDs, and the REVIEW baseline
// runs window queries against it directly.
package rtree

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Entry is one slot of a node: either a child pointer (internal nodes) or an
// item reference (leaf nodes). Fields are exported so that the HDoV-tree
// builder and the storage layer can mirror the structure; they must be
// treated as read-only outside this package.
type Entry struct {
	MBR    geom.AABB
	Child  *Node // non-nil in internal nodes
	ItemID int64 // valid in leaf nodes
}

// Node is an R-tree node. Exported for read-only structural access.
type Node struct {
	Leaf    bool
	Entries []Entry
	parent  *Node
}

// Tree is a 3D R-tree. The zero value is not usable; call New.
type Tree struct {
	root       *Node
	minEntries int
	maxEntries int
	size       int
	height     int
}

// DefaultMinEntries and DefaultMaxEntries are the fan-out bounds used when
// New is given non-positive values. M=8 gives trees of height 4-6 for the
// city datasets, matching the paper's reported tree shapes.
const (
	DefaultMinEntries = 3
	DefaultMaxEntries = 8
)

// New creates an empty R-tree with the given fan-out bounds. min must be at
// most max/2, per Guttman; out-of-range values fall back to defaults.
func New(minEntries, maxEntries int) *Tree {
	if maxEntries < 2 {
		maxEntries = DefaultMaxEntries
	}
	if minEntries < 1 || minEntries > maxEntries/2 {
		minEntries = maxEntries / 2
		if minEntries < 1 {
			minEntries = 1
		}
	}
	return &Tree{
		root:       &Node{Leaf: true},
		minEntries: minEntries,
		maxEntries: maxEntries,
		height:     1,
	}
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a tree that is a single leaf).
func (t *Tree) Height() int { return t.height }

// MinEntries returns the minimum fan-out m (used by the paper's bound
// N_vnode <= N_vobj * log_m N_obj, equation 7).
func (t *Tree) MinEntries() int { return t.minEntries }

// MaxEntries returns the maximum fan-out M (the M of equation 4).
func (t *Tree) MaxEntries() int { return t.maxEntries }

// Root returns the root node for read-only structural walks.
func (t *Tree) Root() *Node { return t.root }

// Bounds returns the MBR of everything in the tree.
func (t *Tree) Bounds() geom.AABB {
	return nodeMBR(t.root)
}

func nodeMBR(n *Node) geom.AABB {
	b := geom.EmptyAABB()
	for _, e := range n.Entries {
		b = b.Union(e.MBR)
	}
	return b
}

// Insert adds an item with the given bounding box.
func (t *Tree) Insert(mbr geom.AABB, id int64) {
	leaf := t.chooseLeaf(t.root, mbr)
	leaf.Entries = append(leaf.Entries, Entry{MBR: mbr, ItemID: id})
	t.size++
	t.adjustTree(leaf)
}

// chooseLeaf descends from n picking the child needing least enlargement
// (ties: smaller volume), Guttman's ChooseLeaf.
func (t *Tree) chooseLeaf(n *Node, mbr geom.AABB) *Node {
	for !n.Leaf {
		best := -1
		bestEnl := math.Inf(1)
		bestVol := math.Inf(1)
		for i := range n.Entries {
			enl := n.Entries[i].MBR.Enlargement(mbr)
			vol := n.Entries[i].MBR.Volume()
			if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
				best, bestEnl, bestVol = i, enl, vol
			}
		}
		n = n.Entries[best].Child
	}
	return n
}

// adjustTree propagates MBR updates and splits from n to the root.
func (t *Tree) adjustTree(n *Node) {
	for {
		var splitOff *Node
		if len(n.Entries) > t.maxEntries {
			splitOff = t.splitNode(n)
		}
		p := n.parent
		if p == nil {
			if splitOff != nil {
				// Root split: grow the tree.
				newRoot := &Node{Leaf: false}
				newRoot.Entries = append(newRoot.Entries,
					Entry{MBR: nodeMBR(n), Child: n},
					Entry{MBR: nodeMBR(splitOff), Child: splitOff},
				)
				n.parent = newRoot
				splitOff.parent = newRoot
				t.root = newRoot
				t.height++
			}
			return
		}
		// Refresh n's MBR in its parent.
		for i := range p.Entries {
			if p.Entries[i].Child == n {
				p.Entries[i].MBR = nodeMBR(n)
				break
			}
		}
		if splitOff != nil {
			splitOff.parent = p
			p.Entries = append(p.Entries, Entry{MBR: nodeMBR(splitOff), Child: splitOff})
		}
		n = p
	}
}

// splitNode splits an overflowing node in place using the Ang–Tan linear
// algorithm and returns the new sibling holding the moved entries.
//
// Ang–Tan: for each axis, partition entries by whether they are closer to
// the node MBR's lower or upper boundary along that axis; choose the axis
// with the most balanced partition, breaking ties by the smallest overlap
// between the two group MBRs, then by smallest total coverage.
func (t *Tree) splitNode(n *Node) *Node {
	box := nodeMBR(n)
	type candidate struct {
		inLower  []bool
		nLower   int
		balance  int     // |count difference|
		overlap  float64 // volume of MBR intersection
		coverage float64 // total volume
	}
	best := candidate{balance: math.MaxInt32}
	for axis := 0; axis < 3; axis++ {
		c := candidate{inLower: make([]bool, len(n.Entries))}
		lo := box.Min.Axis(axis)
		hi := box.Max.Axis(axis)
		for i, e := range n.Entries {
			distLo := e.MBR.Min.Axis(axis) - lo
			distHi := hi - e.MBR.Max.Axis(axis)
			if distLo < distHi {
				c.inLower[i] = true
				c.nLower++
			}
		}
		c.balance = abs(2*c.nLower - len(n.Entries))
		b1, b2 := geom.EmptyAABB(), geom.EmptyAABB()
		for i, e := range n.Entries {
			if c.inLower[i] {
				b1 = b1.Union(e.MBR)
			} else {
				b2 = b2.Union(e.MBR)
			}
		}
		c.overlap = b1.Intersect(b2).Volume()
		c.coverage = b1.Volume() + b2.Volume()
		if c.balance < best.balance ||
			(c.balance == best.balance && c.overlap < best.overlap) ||
			(c.balance == best.balance && c.overlap == best.overlap && c.coverage < best.coverage) {
			best = c
		}
	}

	// Degenerate distributions (all entries in one group) fall back to a
	// balanced split along the longest axis by MBR center, which Ang–Tan
	// prescribe when a group would violate the minimum fill.
	group1 := make([]Entry, 0, len(n.Entries))
	group2 := make([]Entry, 0, len(n.Entries))
	if best.nLower < t.minEntries || len(n.Entries)-best.nLower < t.minEntries {
		axis := box.LongestAxis()
		order := make([]int, len(n.Entries))
		for i := range order {
			order[i] = i
		}
		// Insertion sort by center (nodes are small: <= maxEntries+1).
		for i := 1; i < len(order); i++ {
			for j := i; j > 0; j-- {
				a := n.Entries[order[j]].MBR.Center().Axis(axis)
				b := n.Entries[order[j-1]].MBR.Center().Axis(axis)
				if a < b {
					order[j], order[j-1] = order[j-1], order[j]
				} else {
					break
				}
			}
		}
		half := len(order) / 2
		for i, idx := range order {
			if i < half {
				group1 = append(group1, n.Entries[idx])
			} else {
				group2 = append(group2, n.Entries[idx])
			}
		}
	} else {
		for i, e := range n.Entries {
			if best.inLower[i] {
				group1 = append(group1, e)
			} else {
				group2 = append(group2, e)
			}
		}
	}

	sibling := &Node{Leaf: n.Leaf, Entries: group2, parent: n.parent}
	n.Entries = group1
	if !n.Leaf {
		for i := range n.Entries {
			n.Entries[i].Child.parent = n
		}
		for i := range sibling.Entries {
			sibling.Entries[i].Child.parent = sibling
		}
	}
	return sibling
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Search appends to dst the IDs of all items whose MBR intersects query, and
// returns the extended slice. The traversal order is deterministic
// (depth-first, entry order).
func (t *Tree) Search(query geom.AABB, dst []int64) []int64 {
	return searchNode(t.root, query, dst)
}

func searchNode(n *Node, query geom.AABB, dst []int64) []int64 {
	for _, e := range n.Entries {
		if !e.MBR.Intersects(query) {
			continue
		}
		if n.Leaf {
			dst = append(dst, e.ItemID)
		} else {
			dst = searchNode(e.Child, query, dst)
		}
	}
	return dst
}

// SearchFn visits every item whose MBR intersects query; returning false
// from the visitor stops the search. visitedNodes counts the nodes touched,
// the quantity REVIEW's I/O accounting charges.
func (t *Tree) SearchFn(query geom.AABB, visit func(id int64, mbr geom.AABB) bool) (visitedNodes int) {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		visitedNodes++
		for _, e := range n.Entries {
			if !e.MBR.Intersects(query) {
				continue
			}
			if n.Leaf {
				if !visit(e.ItemID, e.MBR) {
					return false
				}
			} else if !walk(e.Child) {
				return false
			}
		}
		return true
	}
	walk(t.root)
	return visitedNodes
}

// Delete removes the item with the given id and MBR. It returns false if no
// such item exists. Underfull nodes are condensed: their remaining entries
// are reinserted, per Guttman's CondenseTree.
func (t *Tree) Delete(mbr geom.AABB, id int64) bool {
	leaf, idx := t.findLeaf(t.root, mbr, id)
	if leaf == nil {
		return false
	}
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)
	t.size--
	t.condenseTree(leaf)
	// Shrink the root if it has a single child and is not a leaf.
	for !t.root.Leaf && len(t.root.Entries) == 1 {
		t.root = t.root.Entries[0].Child
		t.root.parent = nil
		t.height--
	}
	return true
}

func (t *Tree) findLeaf(n *Node, mbr geom.AABB, id int64) (*Node, int) {
	if n.Leaf {
		for i, e := range n.Entries {
			if e.ItemID == id && e.MBR == mbr {
				return n, i
			}
		}
		return nil, -1
	}
	for _, e := range n.Entries {
		if e.MBR.Contains(mbr) {
			if leaf, i := t.findLeaf(e.Child, mbr, id); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, -1
}

func (t *Tree) condenseTree(n *Node) {
	type orphan struct {
		node  *Node
		depth int // leaf distance, to reinsert at the right level
	}
	var orphans []orphan
	depth := 0
	for n.parent != nil {
		p := n.parent
		if len(n.Entries) < t.minEntries {
			// Remove n from its parent and remember it for reinsertion.
			for i := range p.Entries {
				if p.Entries[i].Child == n {
					p.Entries = append(p.Entries[:i], p.Entries[i+1:]...)
					break
				}
			}
			orphans = append(orphans, orphan{node: n, depth: depth})
		} else {
			for i := range p.Entries {
				if p.Entries[i].Child == n {
					p.Entries[i].MBR = nodeMBR(n)
					break
				}
			}
		}
		n = p
		depth++
	}
	// Reinsert orphaned entries. Leaf orphans reinsert items; internal
	// orphans reinsert their child subtrees at the proper level.
	for _, o := range orphans {
		if o.node.Leaf {
			for _, e := range o.node.Entries {
				t.size-- // Insert will re-increment
				t.Insert(e.MBR, e.ItemID)
			}
		} else {
			for _, e := range o.node.Entries {
				t.insertSubtree(e, o.depth-1)
			}
		}
	}
}

// insertSubtree reinserts a subtree whose leaves are `depth` levels below
// it, choosing a host node at the same level.
func (t *Tree) insertSubtree(e Entry, depth int) {
	// Descend from the root to the level whose children are `depth+1` deep.
	target := t.height - 2 - depth // number of descent steps from root
	n := t.root
	for steps := 0; steps < target && !n.Leaf; steps++ {
		best := -1
		bestEnl := math.Inf(1)
		for i := range n.Entries {
			enl := n.Entries[i].MBR.Enlargement(e.MBR)
			if enl < bestEnl {
				best, bestEnl = i, enl
			}
		}
		n = n.Entries[best].Child
	}
	e.Child.parent = n
	n.Entries = append(n.Entries, e)
	t.adjustTree(n)
}

// CheckInvariants validates the structural invariants of the R-tree and
// returns the first violation found, or nil. Used by tests and by the
// database loader's self-check.
func (t *Tree) CheckInvariants() error {
	var count int
	var walk func(n *Node, depth int) error
	leafDepth := -1
	walk = func(n *Node, depth int) error {
		if n != t.root {
			if len(n.Entries) < t.minEntries {
				return fmt.Errorf("rtree: node at depth %d underfull: %d < %d", depth, len(n.Entries), t.minEntries)
			}
		}
		if len(n.Entries) > t.maxEntries {
			return fmt.Errorf("rtree: node at depth %d overfull: %d > %d", depth, len(n.Entries), t.maxEntries)
		}
		if n.Leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			count += len(n.Entries)
			return nil
		}
		for i, e := range n.Entries {
			if e.Child == nil {
				return fmt.Errorf("rtree: internal entry %d has nil child", i)
			}
			if e.Child.parent != n {
				return fmt.Errorf("rtree: child parent pointer broken at depth %d", depth)
			}
			childBox := nodeMBR(e.Child)
			if !e.MBR.Expand(1e-9).Contains(childBox) {
				return fmt.Errorf("rtree: entry MBR %v does not contain child MBR %v", e.MBR, childBox)
			}
			if err := walk(e.Child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d items reachable", t.size, count)
	}
	if leafDepth >= 0 && leafDepth+1 != t.height {
		return fmt.Errorf("rtree: height %d but leaves at depth %d", t.height, leafDepth)
	}
	return nil
}

// WalkDepthFirst visits every node in depth-first preorder, the order the
// vertical storage scheme lays V-pages out in: "The V-pages of a cell are
// sorted in the order of the tree nodes accessed in the depth-first
// traversal" (§4.2). The visitor receives the node and its depth.
func (t *Tree) WalkDepthFirst(visit func(n *Node, depth int)) {
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		visit(n, depth)
		if n.Leaf {
			return
		}
		for _, e := range n.Entries {
			walk(e.Child, depth+1)
		}
	}
	walk(t.root, 0)
}

// Adopt wraps externally reconstructed nodes into a Tree, fixing parent
// pointers and recomputing size and height. The incremental-update path
// uses it to resurrect the R-tree backbone from a reopened HDoV-tree's
// node mirror: the mirror preserves structure, entry order and MBRs
// exactly, so the adopted tree is bit-identical (for all future
// insert/delete evolutions) to the tree that was live when the database
// was saved. Fan-out bounds fall back to defaults like New. Adopt returns
// an error if the structure is not a valid R-tree under those bounds.
func Adopt(root *Node, minEntries, maxEntries int) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("rtree: adopt: nil root")
	}
	t := New(minEntries, maxEntries)
	t.root = root
	root.parent = nil
	size, height := 0, 0
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if depth+1 > height {
			height = depth + 1
		}
		if n.Leaf {
			size += len(n.Entries)
			return
		}
		for i := range n.Entries {
			if n.Entries[i].Child == nil {
				continue
			}
			n.Entries[i].Child.parent = n
			walk(n.Entries[i].Child, depth+1)
		}
	}
	walk(root, 0)
	t.size = size
	t.height = height
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("rtree: adopt: %w", err)
	}
	return t, nil
}

// NumNodes returns the total number of nodes in the tree (N_node of §4).
func (t *Tree) NumNodes() int {
	n := 0
	t.WalkDepthFirst(func(*Node, int) { n++ })
	return n
}
