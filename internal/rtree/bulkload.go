package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Item is one object for bulk loading: its bounding box and identifier.
type Item struct {
	MBR geom.AABB
	ID  int64
}

// BulkLoad builds a packed R-tree with the Sort-Tile-Recursive algorithm
// (Leutenegger, Lopez, Edgington: "STR: a simple and efficient algorithm
// for R-tree packing", ICDE 1997), extended to three dimensions: items are
// sorted into x-slabs, each slab into y-runs, each run packed into leaves
// by z. Upper levels are packed recursively from the level below's MBRs.
//
// The result is a valid Tree (all invariants hold, Search/Delete/Insert
// work); compared to one-by-one insertion with the Ang–Tan split it has
// near-100% leaf fill and much lower sibling overlap — the HDoV build
// pipeline exposes it as an alternative backbone (ablation D8).
func BulkLoad(items []Item, minEntries, maxEntries int) *Tree {
	t := New(minEntries, maxEntries)
	if len(items) == 0 {
		return t
	}
	// Leaf level.
	leafEntries := make([]Entry, len(items))
	for i, it := range items {
		leafEntries[i] = Entry{MBR: it.MBR, ItemID: it.ID}
	}
	nodes := packLevel(leafEntries, true, t.minEntries, t.maxEntries)
	t.size = len(items)
	t.height = 1

	// Pack upward until a single node remains.
	for len(nodes) > 1 {
		entries := make([]Entry, len(nodes))
		for i, n := range nodes {
			entries[i] = Entry{MBR: nodeMBR(n), Child: n}
		}
		parents := packLevel(entries, false, t.minEntries, t.maxEntries)
		for _, p := range parents {
			for i := range p.Entries {
				p.Entries[i].Child.parent = p
			}
		}
		nodes = parents
		t.height++
	}
	t.root = nodes[0]
	return t
}

// packLevel tiles entries into nodes of up to maxE entries using STR's
// slab/run/pack recursion over the three axes of the entry centers.
func packLevel(entries []Entry, leaf bool, minE, maxE int) []*Node {
	nNodes := (len(entries) + maxE - 1) / maxE
	if nNodes <= 1 {
		n := &Node{Leaf: leaf, Entries: append([]Entry(nil), entries...)}
		return []*Node{n}
	}

	center := func(e Entry, axis int) float64 { return e.MBR.Center().Axis(axis) }

	// Slabs along x.
	sx := int(math.Ceil(math.Cbrt(float64(nNodes))))
	perSlab := sx * sx * maxE // capacity of one x-slab (sx·sx nodes)
	sort.SliceStable(entries, func(i, j int) bool { return center(entries[i], 0) < center(entries[j], 0) })

	var out []*Node
	for xo := 0; xo < len(entries); {
		xhi := min(xo+perSlab, len(entries))
		// A tail slab shorter than the min fill merges into this one.
		if len(entries)-xhi < minE {
			xhi = len(entries)
		}
		slab := entries[xo:xhi]
		xo = xhi
		// Runs along y within the slab.
		slabNodes := (len(slab) + maxE - 1) / maxE
		sy := int(math.Ceil(math.Sqrt(float64(slabNodes))))
		perRun := sy * maxE
		sort.SliceStable(slab, func(i, j int) bool { return center(slab[i], 1) < center(slab[j], 1) })
		for yo := 0; yo < len(slab); {
			yhi := min(yo+perRun, len(slab))
			if len(slab)-yhi < minE {
				yhi = len(slab)
			}
			run := slab[yo:yhi]
			yo = yhi
			sort.SliceStable(run, func(i, j int) bool { return center(run[i], 2) < center(run[j], 2) })
			out = append(out, packRun(run, leaf, minE, maxE)...)
		}
	}
	return out
}

// packRun chunks one z-sorted run into nodes of maxE entries, splitting
// the tail so no node falls below minE (the min-fill invariant): when the
// remainder would be short, the last two chunks are evened out.
func packRun(run []Entry, leaf bool, minE, maxE int) []*Node {
	var out []*Node
	n := len(run)
	for off := 0; off < n; {
		remain := n - off
		take := maxE
		if remain <= maxE {
			take = remain
		} else if remain < maxE+minE {
			// The tail after a full chunk would be underfull: split the
			// remainder evenly across two nodes.
			take = remain - minE
			if take > maxE {
				take = maxE
			}
			if take < minE {
				take = minE
			}
		}
		chunk := run[off : off+take]
		out = append(out, &Node{Leaf: leaf, Entries: append([]Entry(nil), chunk...)})
		off += take
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// OverlapRatio measures sibling MBR overlap at the root level: the summed
// pairwise intersection volume divided by the summed child volume. Lower
// is better; bulk loading should beat incremental insertion (ablation D8).
func (t *Tree) OverlapRatio() float64 {
	root := t.root
	if root.Leaf || len(root.Entries) < 2 {
		return 0
	}
	var overlap, total float64
	for i := range root.Entries {
		total += root.Entries[i].MBR.Volume()
		for j := i + 1; j < len(root.Entries); j++ {
			overlap += root.Entries[i].MBR.Intersect(root.Entries[j].MBR).Volume()
		}
	}
	if total == 0 {
		return 0
	}
	return overlap / total
}

// FillFactor returns the mean leaf occupancy as a fraction of maxEntries.
func (t *Tree) FillFactor() float64 {
	var entries, leaves int
	t.WalkDepthFirst(func(n *Node, _ int) {
		if n.Leaf {
			entries += len(n.Entries)
			leaves++
		}
	})
	if leaves == 0 {
		return 0
	}
	return float64(entries) / float64(leaves*t.maxEntries)
}
