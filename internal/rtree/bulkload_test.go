package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{MBR: randBox(r, 1000, 20), ID: int64(i)}
	}
	return items
}

func TestBulkLoadInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 63, 64, 65, 500, 2000} {
		items := randItems(r, n)
		tr := BulkLoad(items, 3, 8)
		if tr.Len() != n {
			t.Fatalf("n=%d: len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadSearchMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	items := randItems(r, 700)
	tr := BulkLoad(items, 3, 8)
	boxes := make([]geom.AABB, len(items))
	for i, it := range items {
		boxes[i] = it.MBR
	}
	for q := 0; q < 100; q++ {
		query := randBox(r, 1000, 150)
		got := tr.Search(query, nil)
		want := bruteSearch(boxes, query)
		if !sortedEqual(got, want) {
			t.Fatalf("query %d: got %d, want %d", q, len(got), len(want))
		}
	}
}

func TestBulkLoadPackedShape(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	items := randItems(r, 1000)
	packed := BulkLoad(items, 3, 8)
	// Near-full leaves.
	if ff := packed.FillFactor(); ff < 0.85 {
		t.Fatalf("fill factor %v, want >= 0.85", ff)
	}
	// Height close to the information-theoretic minimum.
	minHeight := int(math.Ceil(math.Log(float64(len(items))) / math.Log(8)))
	if packed.Height() > minHeight+1 {
		t.Fatalf("height %d, packed minimum ~%d", packed.Height(), minHeight)
	}
	// Packed construction beats incremental insertion on node count.
	incremental := New(3, 8)
	for _, it := range items {
		incremental.Insert(it.MBR, it.ID)
	}
	if packed.NumNodes() >= incremental.NumNodes() {
		t.Fatalf("packed %d nodes, incremental %d", packed.NumNodes(), incremental.NumNodes())
	}
}

func TestBulkLoadLowerOverlap(t *testing.T) {
	// Averaged over several uniform datasets, STR's root-level sibling
	// overlap should not exceed incremental insertion's.
	var packedSum, incSum float64
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(40 + seed))
		items := randItems(r, 800)
		packed := BulkLoad(items, 3, 8)
		incremental := New(3, 8)
		for _, it := range items {
			incremental.Insert(it.MBR, it.ID)
		}
		packedSum += packed.OverlapRatio()
		incSum += incremental.OverlapRatio()
	}
	if packedSum > incSum {
		t.Fatalf("bulk overlap %v > incremental %v", packedSum, incSum)
	}
}

func TestBulkLoadedTreeIsDynamic(t *testing.T) {
	// A bulk-loaded tree must accept subsequent inserts and deletes.
	r := rand.New(rand.NewSource(35))
	items := randItems(r, 300)
	tr := BulkLoad(items, 3, 8)
	for i := 0; i < 100; i++ {
		tr.Insert(randBox(r, 1000, 20), int64(1000+i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if !tr.Delete(items[i].MBR, items[i].ID) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300+100-150 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr := BulkLoad(nil, 3, 8)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty bulk load malformed")
	}
	tr.Insert(geom.BoxAt(geom.V(0, 0, 0), 1), 1)
	if tr.Len() != 1 {
		t.Fatal("empty bulk-loaded tree not usable")
	}
	one := BulkLoad([]Item{{MBR: geom.BoxAt(geom.V(1, 1, 1), 1), ID: 5}}, 3, 8)
	if got := one.Search(geom.BoxAt(geom.V(1, 1, 1), 2), nil); len(got) != 1 || got[0] != 5 {
		t.Fatalf("single-item search = %v", got)
	}
}

func TestPropBulkLoadAllFindable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(r.Int31n(400))
		items := randItems(r, n)
		tr := BulkLoad(items, 2, 4+int(r.Int31n(12)))
		if tr.CheckInvariants() != nil {
			return false
		}
		for _, it := range items {
			found := false
			for _, id := range tr.Search(it.MBR, nil) {
				if id == it.ID {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := randItems(r, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(items, 3, 8)
	}
}
