package core

import (
	"fmt"

	"repro/internal/cells"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/scene"
	"repro/internal/storage"
)

// TreeManifest is the view-invariant metadata needed to reopen a built
// HDoV-tree over its saved disk image: the node-record layout, the object
// payload directory, and the measured traversal constants. Node structure
// itself is reread from the on-disk records. All fields are exported for
// JSON serialization (package dbfile).
type TreeManifest struct {
	NumNodes     int
	NodePageBase storage.PageID
	NodeStride   int
	SMeasured    float64
	RhoMeasured  float64
	Params       BuildManifest
	Grid         GridManifest
	ObjExtents   [][]Extent
}

// BuildManifest is the JSON-able subset of BuildParams.
type BuildManifest struct {
	FanoutMin, FanoutMax int
	InternalLoDLevels    int
	S                    float64
	InternalLoDRatio     float64
	DirsPerViewpoint     int
	SamplesPerCell       int
	VPageBytes           int
}

// GridManifest serializes a viewing-cell grid.
type GridManifest struct {
	MinX, MinY, MinZ float64
	MaxX, MaxY, MaxZ float64
	NX, NY           int
}

func gridManifest(g *cells.Grid) GridManifest {
	return GridManifest{
		MinX: g.Bounds.Min.X, MinY: g.Bounds.Min.Y, MinZ: g.Bounds.Min.Z,
		MaxX: g.Bounds.Max.X, MaxY: g.Bounds.Max.Y, MaxZ: g.Bounds.Max.Z,
		NX: g.NX, NY: g.NY,
	}
}

// Grid reconstructs the viewing-cell grid. Manifests are untrusted input,
// so degenerate cell counts or empty bounds are an error rather than
// silently clamped.
func (m GridManifest) Grid() (*cells.Grid, error) {
	b := geom.Box(geom.V(m.MinX, m.MinY, m.MinZ), geom.V(m.MaxX, m.MaxY, m.MaxZ))
	return cells.NewGridChecked(b, m.NX, m.NY)
}

// Manifest captures everything needed to reopen this tree.
func (t *Tree) Manifest() TreeManifest {
	return TreeManifest{
		NumNodes:     len(t.Nodes),
		NodePageBase: t.nodePageBase,
		NodeStride:   t.nodeStride,
		SMeasured:    t.SMeasured,
		RhoMeasured:  t.RhoMeasured,
		Params: BuildManifest{
			FanoutMin:         t.Params.FanoutMin,
			FanoutMax:         t.Params.FanoutMax,
			InternalLoDLevels: t.Params.InternalLoDLevels,
			S:                 t.Params.S,
			InternalLoDRatio:  t.Params.InternalLoDRatio,
			DirsPerViewpoint:  t.Params.DirsPerViewpoint,
			SamplesPerCell:    t.Params.SamplesPerCell,
			VPageBytes:        t.Params.VPageBytes,
		},
		Grid:       gridManifest(t.Grid),
		ObjExtents: t.ObjExtents,
	}
}

// OpenTree reopens a tree over its saved disk image: node records are
// reread (and re-validated) from disk, the in-memory internal-LoD meshes
// are decoded from their payload extents, and the object directory comes
// from the manifest. The scene must be the same deterministic generation
// the tree was built from; Open callers regenerate it from the saved
// CityParams. No I/O is charged: opening a database is setup, not
// workload.
//
// hdov:construction-window — rehydrates nodes from the manifest; the
// tree is handed to callers only after this returns.
func OpenTree(sc *scene.Scene, d *storage.Disk, m TreeManifest) (*Tree, error) {
	if sc == nil || d == nil {
		return nil, fmt.Errorf("core: open: nil scene or disk")
	}
	if m.NumNodes < 1 || m.NodeStride < 1 {
		return nil, fmt.Errorf("core: open: bad manifest (%d nodes, stride %d)", m.NumNodes, m.NodeStride)
	}
	if len(m.ObjExtents) != len(sc.Objects) {
		return nil, fmt.Errorf("core: open: manifest has %d object directories, scene has %d objects",
			len(m.ObjExtents), len(sc.Objects))
	}
	grid, err := m.Grid.Grid()
	if err != nil {
		return nil, fmt.Errorf("core: open: %w", err)
	}
	t := &Tree{
		Scene: sc,
		Grid:  grid,
		Disk:  d,
		IO:    d.NewClient(),
		Params: BuildParams{
			FanoutMin:         m.Params.FanoutMin,
			FanoutMax:         m.Params.FanoutMax,
			InternalLoDLevels: m.Params.InternalLoDLevels,
			S:                 m.Params.S,
			InternalLoDRatio:  m.Params.InternalLoDRatio,
			DirsPerViewpoint:  m.Params.DirsPerViewpoint,
			SamplesPerCell:    m.Params.SamplesPerCell,
			VPageBytes:        m.Params.VPageBytes,
		},
		SMeasured:    m.SMeasured,
		RhoMeasured:  m.RhoMeasured,
		ObjExtents:   m.ObjExtents,
		nodePageBase: m.NodePageBase,
		nodeStride:   m.NodeStride,
		bb:           &backbone{},
	}
	t.Params.Grid = t.Grid

	// Reread node records via PeekPage so opening charges no I/O.
	t.Nodes = make([]*Node, m.NumNodes)
	for id := 0; id < m.NumNodes; id++ {
		buf := make([]byte, 0, m.NodeStride*d.PageSize())
		for pg := 0; pg < m.NodeStride; pg++ {
			page, err := d.PeekPage(t.NodePage(NodeID(id)) + storage.PageID(pg))
			if err != nil {
				return nil, fmt.Errorf("core: open: node %d: %w", id, err)
			}
			buf = append(buf, page...)
		}
		n, err := DecodeNodeRecord(buf)
		if err != nil {
			return nil, fmt.Errorf("core: open: node %d: %w", id, err)
		}
		if n.ID != NodeID(id) {
			return nil, fmt.Errorf("core: open: node record %d claims ID %d", id, n.ID)
		}
		n.Page = t.NodePage(NodeID(id))
		t.Nodes[id] = n
	}

	// Decode the internal-LoD chains from their payload extents.
	for _, n := range t.Nodes {
		chain := &mesh.LoDChain{Levels: make([]*mesh.Mesh, len(n.InternalExtents))}
		for li, ex := range n.InternalExtents {
			raw, err := peekBytes(d, ex.Start, int(ex.RealBytes))
			if err != nil {
				return nil, fmt.Errorf("core: open: node %d LoD %d: %w", n.ID, li, err)
			}
			msh, err := mesh.Decode(raw)
			if err != nil {
				return nil, fmt.Errorf("core: open: node %d LoD %d: %w", n.ID, li, err)
			}
			chain.Levels[li] = msh
		}
		n.InternalLoD = chain
	}

	if err := t.CheckStructure(); err != nil {
		return nil, fmt.Errorf("core: open: %w", err)
	}
	return t, nil
}

// peekBytes reads length bytes starting at page start without charging
// I/O.
func peekBytes(d *storage.Disk, start storage.PageID, length int) ([]byte, error) {
	n := d.PagesFor(int64(length))
	out := make([]byte, 0, n*d.PageSize())
	for i := 0; i < n; i++ {
		p, err := d.PeekPage(start + storage.PageID(i))
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	}
	return out[:length], nil
}

// CheckStructure validates the in-memory tree mirror: preorder IDs,
// balanced heights, descendant counts, and object references. Open runs
// it as a self-check; tests use it directly.
func (t *Tree) CheckStructure() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("core: empty tree")
	}
	for i, n := range t.Nodes {
		if n == nil {
			return fmt.Errorf("core: node %d missing", i)
		}
		if n.ID != NodeID(i) {
			return fmt.Errorf("core: node %d has ID %d", i, n.ID)
		}
		sumDesc := 0
		for ei, e := range n.Entries {
			if n.Leaf {
				if e.ObjectID < 0 || int(e.ObjectID) >= len(t.Scene.Objects) {
					return fmt.Errorf("core: node %d entry %d: object %d out of range", i, ei, e.ObjectID)
				}
				sumDesc++
				continue
			}
			if int(e.ChildID) <= i || int(e.ChildID) >= len(t.Nodes) {
				return fmt.Errorf("core: node %d entry %d: child %d not in preorder", i, ei, e.ChildID)
			}
			c := t.Nodes[e.ChildID]
			if c.SubtreeHeight != n.SubtreeHeight-1 {
				return fmt.Errorf("core: node %d child %d: unbalanced heights", i, e.ChildID)
			}
			if int(e.DescCount) != c.LeafDescendants {
				return fmt.Errorf("core: node %d entry %d: DescCount %d, child has %d",
					i, ei, e.DescCount, c.LeafDescendants)
			}
			sumDesc += c.LeafDescendants
		}
		if sumDesc != n.LeafDescendants {
			return fmt.Errorf("core: node %d: %d descendants recorded, %d reachable", i, n.LeafDescendants, sumDesc)
		}
	}
	return nil
}
