package core

import (
	"testing"

	"repro/internal/scene"
	"repro/internal/storage"
)

// FuzzDecodeNodeRecord drives the on-disk record decoder with arbitrary
// bytes: it must return an error or a node, never panic or over-allocate.
func FuzzDecodeNodeRecord(f *testing.F) {
	// Seed with valid records of each node shape.
	sc, d := fuzzFixture(f)
	_ = d
	for _, n := range sc.Nodes {
		f.Add(n.EncodeRecord())
	}
	f.Add([]byte{})
	f.Add([]byte{0x48, 0x44, 0x4f, 0x56})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNodeRecord(data)
		if err == nil && n == nil {
			t.Fatal("nil node with nil error")
		}
		if err == nil {
			// Decoded nodes must be internally consistent enough to
			// re-encode without panicking.
			_ = n.RecordSize()
			_ = n.EncodeRecord()
		}
	})
}

// fuzzFixture builds one small tree for seeding.
func fuzzFixture(f *testing.F) (*Tree, int) {
	f.Helper()
	sc := scene.Generate(func() scene.CityParams {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 1, 1
		p.BuildingsPerBlock = 4
		p.BlobsPerBlock = 1
		p.BlobDetail = 6
		p.NominalBytes = 0
		return p
	}())
	d := storage.NewDisk(0, storage.DefaultCostModel())
	bp := DefaultBuildParams()
	bp.DirsPerViewpoint = 64
	bp.SamplesPerCell = 1
	tr, _, err := Build(sc, d, bp)
	if err != nil {
		f.Fatal(err)
	}
	return tr, 0
}
