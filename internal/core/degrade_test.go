package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/cells"
	"repro/internal/storage"
)

// cleanFaults restores the shared fixture after a fault-injection test:
// the process-cached tree must come back pristine for later tests.
func cleanFaults(t *testing.T, tr *Tree) {
	t.Helper()
	t.Cleanup(func() {
		tr.FaultTolerant = false
		tr.Disk.ClearFaults()
		tr.Disk.ClearQuarantine()
	})
}

// TestDegradedChildNodeFault: with FaultTolerant set, a corrupt child node
// record no longer aborts the query — the child's internal LoD (resolved
// from the parent's entry) stands in, a Degradation is recorded, and the
// damaged pages are quarantined so later frames skip the seek.
func TestDegradedChildNodeFault(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	tr.FaultTolerant = true
	child := tr.Root().Entries[0].ChildID
	page := tr.NodePage(child)
	tr.Disk.CorruptPage(page)
	t.Cleanup(func() { tr.Disk.HealPage(page) })

	degraded := 0
	for c := 0; c < tr.Grid.NumCells(); c++ {
		res, err := tr.Query(cells.CellID(c), 0)
		if err != nil {
			t.Fatalf("cell %d: %v", c, err)
		}
		for _, d := range res.Degradations {
			degraded++
			if d.Cause != CauseNodeRecord {
				t.Fatalf("cell %d: cause = %v, want node-record", c, d.Cause)
			}
			if d.Node != child {
				t.Fatalf("cell %d: degraded node %d, want %d", c, d.Node, child)
			}
			if d.SubstituteNode == NilNode {
				t.Fatalf("cell %d: no substitute found", c)
			}
			found := false
			for _, it := range res.Items {
				if it.IsInternal() && it.NodeID == d.SubstituteNode && it.Level == d.SubstituteLevel {
					found = true
				}
			}
			if !found {
				t.Fatalf("cell %d: substitute LoD (node %d level %d) not in Items",
					c, d.SubstituteNode, d.SubstituteLevel)
			}
		}
	}
	if degraded == 0 {
		t.Skip("corrupted subtree never visited (fully hidden)")
	}
	if !tr.Disk.IsQuarantined(page) {
		t.Fatal("failed page not quarantined")
	}
}

// TestDegradedQuarantineAvoidsReseek: once quarantined, a damaged node
// record costs no further media time — the second degraded query is not
// slower than the first.
func TestDegradedQuarantineAvoidsReseek(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	tr.FaultTolerant = true
	child := tr.Root().Entries[0].ChildID
	page := tr.NodePage(child)
	tr.Disk.CorruptPage(page)
	t.Cleanup(func() { tr.Disk.HealPage(page) })

	var first, second *QueryResult
	for c := 0; c < tr.Grid.NumCells(); c++ {
		res, err := tr.Query(cells.CellID(c), 0)
		if err != nil {
			t.Fatalf("cell %d: %v", c, err)
		}
		if len(res.Degradations) > 0 {
			first = res
			second, err = tr.Query(cells.CellID(c), 0)
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if first == nil {
		t.Skip("corrupted subtree never visited")
	}
	if len(second.Degradations) == 0 {
		t.Fatal("second query lost the degradation record")
	}
	if second.Stats.LightIO > first.Stats.LightIO {
		t.Fatalf("second query read more pages (%d) than first (%d) despite quarantine",
			second.Stats.LightIO, first.Stats.LightIO)
	}
}

// TestDegradedRootFault: even a corrupt root record answers the query with
// the root's internal LoD from the in-memory mirror.
func TestDegradedRootFault(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	tr.FaultTolerant = true
	page := tr.NodePage(0)
	tr.Disk.CorruptPage(page)
	t.Cleanup(func() { tr.Disk.HealPage(page) })

	res, err := tr.Query(0, 0.001)
	if err != nil {
		t.Fatalf("root fault not absorbed: %v", err)
	}
	if len(res.Degradations) != 1 {
		t.Fatalf("%d degradations, want 1", len(res.Degradations))
	}
	d := res.Degradations[0]
	if d.Cause != CauseNodeRecord || d.Node != 0 || d.SubstituteNode != 0 {
		t.Fatalf("unexpected degradation %+v", d)
	}
	if len(res.Items) != 1 || !res.Items[0].IsInternal() || res.Items[0].NodeID != 0 {
		t.Fatalf("items = %+v, want the root internal LoD", res.Items)
	}
}

// TestDegradedCellFlipFault: a media fault while flipping the viewing cell
// (no visibility data at all) still answers with the whole-scene LoD.
func TestDegradedCellFlipFault(t *testing.T) {
	tr, _ := fixture(t)
	cleanFaults(t, tr)
	saved := tr.VStoreScheme()
	tr.SetVStore(&corruptFlipVStore{})
	t.Cleanup(func() { tr.SetVStore(saved) })

	if _, err := tr.Query(0, 0.001); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("strict mode: err = %v, want ErrCorrupt", err)
	}
	tr.FaultTolerant = true
	res, err := tr.Query(0, 0.001)
	if err != nil {
		t.Fatalf("cell-flip fault not absorbed: %v", err)
	}
	if len(res.Degradations) != 1 || res.Degradations[0].Cause != CauseCellFlip {
		t.Fatalf("degradations = %+v, want one cell-flip", res.Degradations)
	}
	if len(res.Items) != 1 || res.Items[0].NodeID != 0 {
		t.Fatalf("items = %+v, want the root internal LoD", res.Items)
	}
}

type corruptFlipVStore struct{}

func (corruptFlipVStore) Name() string     { return "corrupt-flip" }
func (corruptFlipVStore) SizeBytes() int64 { return 0 }
func (corruptFlipVStore) SetCell(cells.CellID) error {
	return &storage.CorruptError{Page: 3}
}
func (corruptFlipVStore) NodeVD(NodeID) ([]VD, bool, error) { return nil, false, nil }

// TestDegradedPayloadFault: a corrupt payload extent during FetchPayloads
// swaps in a sibling LoD level of the same object/node instead of failing.
func TestDegradedPayloadFault(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	tr.FaultTolerant = true
	res, err := tr.Query(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Skip("empty cell")
	}
	it := res.Items[0]
	page := it.Extent.Start
	tr.Disk.CorruptPage(page)
	t.Cleanup(func() { tr.Disk.HealPage(page) })

	n, err := tr.FetchPayloads(res, nil)
	if err != nil {
		t.Fatalf("payload fault not absorbed: %v", err)
	}
	if len(res.Degradations) == 0 {
		t.Fatal("no degradation recorded")
	}
	d := res.Degradations[0]
	if d.Cause != CausePayload {
		t.Fatalf("cause = %v, want payload", d.Cause)
	}
	if d.SubstituteLevel >= 0 {
		// A readable sibling level was swapped in and fetched.
		if res.Items[0].Level != d.SubstituteLevel {
			t.Fatalf("item level %d, degradation says %d", res.Items[0].Level, d.SubstituteLevel)
		}
		if res.Items[0].Extent.Start == page {
			t.Fatal("item still points at the corrupt extent")
		}
		if n != len(res.Items) {
			t.Fatalf("fetched %d of %d", n, len(res.Items))
		}
	} else if n != len(res.Items)-1 {
		t.Fatalf("fetched %d, want %d (item dropped)", n, len(res.Items)-1)
	}
}

// TestFaultTolerantNoFaultsIdentical: with no faults firing, fault-
// tolerant traversal returns byte-identical results — zero behavior
// change.
func TestFaultTolerantNoFaultsIdentical(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	pass := func() []*QueryResult {
		out := make([]*QueryResult, tr.Grid.NumCells())
		for c := 0; c < tr.Grid.NumCells(); c++ {
			res, err := tr.Query(cells.CellID(c), 0.001)
			if err != nil {
				t.Fatal(err)
			}
			// SimTime depends on disk head position carried over from
			// whatever ran before this pass; the read *sequence* is pinned
			// by the I/O counters and Items below, so drop it from the
			// comparison.
			res.Stats.SimTime = 0
			out[c] = res
		}
		return out
	}
	tr.FaultTolerant = false
	strict := pass()
	tr.FaultTolerant = true
	tolerant := pass()
	for c := range strict {
		if !reflect.DeepEqual(strict[c].Items, tolerant[c].Items) {
			t.Fatalf("cell %d: items differ with FaultTolerant set", c)
		}
		if !reflect.DeepEqual(strict[c].Stats, tolerant[c].Stats) {
			t.Fatalf("cell %d: stats differ: %+v vs %+v", c, strict[c].Stats, tolerant[c].Stats)
		}
		if len(tolerant[c].Degradations) != 0 {
			t.Fatalf("cell %d: phantom degradations %+v", c, tolerant[c].Degradations)
		}
	}
}

// TestQueryTransientFaultAbsorbed: transient faults are retried away even
// in strict mode; the only trace is Stats.Retries.
func TestQueryTransientFaultAbsorbed(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	ref, err := tr.Query(1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	tr.Disk.InjectPageFault(tr.NodePage(0), storage.FaultTransient, 2)
	res, err := tr.Query(1, 0.001)
	if err != nil {
		t.Fatalf("transient fault surfaced: %v", err)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("no retries counted")
	}
	if !reflect.DeepEqual(ref.Items, res.Items) {
		t.Fatal("transient fault changed the answer set")
	}
}

// TestDegradedStrictModeUnchanged: with FaultTolerant off, corrupt pages
// still abort the query exactly as before.
func TestDegradedStrictModeUnchanged(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	page := tr.NodePage(0)
	tr.Disk.CorruptPage(page)
	t.Cleanup(func() { tr.Disk.HealPage(page) })
	if _, err := tr.Query(0, 0.001); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
