package core

import (
	"repro/internal/storage"
)

// Session support: one built Tree can serve many concurrent query
// sessions. The view-invariant structure (Nodes, ObjExtents, the disk
// layout) is immutable after Build/OpenTree and shared; what a session
// needs of its own is (a) a storage.Client so its I/O and simulated time
// are attributed to it alone, and (b) a view of the storage scheme,
// because the vertical and indexed-vertical schemes keep a current-cell
// cursor (the flipped segment of §4.2–4.3) that two sessions in
// different cells would fight over.

// Session returns an independent query view of the tree: same structure
// and disk, fresh I/O accounting, own storage-scheme cursor, own
// traversal worker pool. The base tree remains usable; sessions are not
// themselves re-sessionable trees in any deeper sense (Session of a
// session just works — it is another shallow view).
//
// A session's Query/FetchPayloads/LoadMesh may run concurrently with
// other sessions'. A single session is still one logical walker: do not
// share one session between goroutines.
func (t *Tree) Session() *Tree {
	s := *t
	s.IO = t.Disk.NewClient()
	if t.vstore != nil {
		if v, ok := t.vstore.(VStoreViewer); ok {
			s.vstore = v.View(s.IO)
		}
	}
	if s.Parallel > 1 {
		s.parSem = make(chan struct{}, s.Parallel-1)
	}
	// Frame-coherence state is strictly per-session: a fresh session
	// starts with no retained cut and an empty result free list, never
	// sharing either with the tree (or session) it was derived from.
	s.cut = nil
	s.resPool = &resultPool{}
	return &s
}

// SetParallel bounds the traversal fan-out: queries on this tree (or on
// sessions derived from it afterwards) descend up to n child subtrees
// concurrently. n <= 1 restores the strictly serial traversal of Figure
// 3. The answer set is identical either way — parallel subtree results
// are merged in entry order — but per-branch worker scheduling changes
// which read hits the disk first, so seek-sensitive accounting (Stats.
// Seeks, SimTime) may differ from the serial run; page counts do not.
func (t *Tree) SetParallel(n int) {
	if n < 0 {
		n = 0
	}
	t.Parallel = n
	if n > 1 {
		t.parSem = make(chan struct{}, n-1)
	} else {
		t.parSem = nil
	}
}

// reader returns the handle query-path reads go through: the session's
// client when one exists, else the disk itself (identical accounting,
// minus per-session attribution).
func (t *Tree) reader() storage.Reader {
	if t.IO != nil {
		return t.IO
	}
	return t.Disk
}

// statsNow snapshots the accounting the session's queries are measured
// against: the client's own counters when one exists, else the global
// disk counters (exact only while the disk has a single user).
func (t *Tree) statsNow() storage.Stats {
	if t.IO != nil {
		return t.IO.Stats()
	}
	return t.Disk.Stats()
}
