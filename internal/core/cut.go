package core

import (
	"context"
	"fmt"

	"repro/internal/cells"
	"repro/internal/storage"
)

// Frame-coherent incremental traversal. A walkthrough viewer moves between
// *adjacent* cells, and the Figure 3 traversal's shape changes only where
// DoV values cross the η threshold — almost nowhere, between neighbors. A
// session can therefore keep the previous query's traversal cut (the
// frontier where the descent terminated, with the decision per entry) and,
// on the next query, re-evaluate that cut against the new cell's V-data:
// entries whose DoV rose re-expand, subtrees whose DoV fell collapse, and
// every retained interior node answers from its cached record instead of a
// disk read. V-data is ALWAYS re-read for the new cell (it is
// view-variant by definition); only the view-invariant node records are
// reused. The answer set is byte-identical to a from-root traversal — the
// differential suite asserts exactly that across all three schemes.
//
// Fault handling is deliberately blunt: the incremental path absorbs
// nothing. Any error — corrupt V-page, quarantined record, decode failure
// — invalidates the whole cut and falls back to a plain Query, which
// degrades (or fails) exactly like a fresh full traversal would. A
// degraded query never seeds a cut, so a stale frontier can never be
// re-served after a fault.

// cutNode is one retained node of the previous query's traversal tree:
// the decoded record (view-invariant, so reusable across cells) and the
// children that were descended into last time, in entry order.
type cutNode struct {
	id       NodeID
	node     *Node // cached decoded record; nil until first visited
	children []*cutNode
}

// CoherenceStats counts how a session's QueryCoherent calls were served.
type CoherenceStats struct {
	// Incremental counts queries served through the cut machinery — a
	// cold start is included (its seed cut is just the root, so every
	// node shows up in Expanded); Full counts fallbacks to plain Query
	// after a traversal fault or decode error invalidated the cut.
	Incremental int64
	Full        int64
	// NodesReused counts node records served from the cut instead of
	// disk; Expanded and Collapsed count cut edits (subtrees newly
	// descended into, and subtrees dropped because their entry's decision
	// changed or a fault forced a rebuild).
	NodesReused int64
	Expanded    int64
	Collapsed   int64
}

// cutState is a session's cut between queries: valid for one η only —
// changing the threshold moves the frontier everywhere, so it rebuilds.
type cutState struct {
	root  *cutNode
	eta   float64
	valid bool
	stats CoherenceStats
}

// QueryCoherentContext is QueryContext with incremental cut maintenance:
// identical answer set (the differential suite asserts byte-identity,
// Degradations included), but node records retained from this session's
// previous query are served from memory, so a warm adjacent-cell query
// pays only the V-data reads. Use on a Session driving a walkthrough; on
// a cold cut, after an η change, or after any traversal fault it
// transparently runs the full query. While a shed policy is active it
// also delegates to the full query — the cut is valid for one η, and a
// policy-relaxed η would thrash it — so shedding trades the warm path
// for fidelity control. Not safe for concurrent use — like every other
// method of one session.
func (t *Tree) QueryCoherentContext(ctx context.Context, cell cells.CellID, eta float64) (*QueryResult, error) {
	if t.vstore == nil {
		return nil, ErrNoVStore
	}
	if eta < 0 {
		eta = 0
	}
	if t.Shed().active() {
		t.InvalidateCut()
		return t.QueryContext(ctx, cell, eta)
	}
	if t.cut == nil {
		t.cut = &cutState{}
	}
	cs := t.cut
	if !cs.valid || cs.eta != eta {
		cs.root = &cutNode{id: 0}
		cs.eta = eta
		cs.valid = true
	}
	tc, _, done := t.begin(ctx, eta)
	defer done()
	before := t.statsNow()
	res := t.getResult(cell, eta)
	err := t.vstore.SetCell(cell)
	if err == nil {
		err = t.searchCut(tc, cs.root, eta, res)
	}
	if err != nil {
		// Fail fast: drop the cut and answer with a full traversal, which
		// absorbs (or reports) the fault exactly as a cold query would.
		// The wasted incremental reads stay on this session's account;
		// the returned result's Stats cover only the full traversal.
		// Cancellation is different: an abandoned query must not buy a
		// second traversal, so context errors abort outright (the cut is
		// still dropped — it may be half-rewritten).
		cs.valid = false
		cs.root = nil
		t.Recycle(res)
		if ctx.Err() != nil {
			return nil, err
		}
		cs.stats.Full++
		return t.QueryContext(ctx, cell, eta)
	}
	cs.stats.Incremental++
	d := t.statsNow().Sub(before)
	res.Stats.LightIO = d.LightReads
	res.Stats.HeavyIO = d.HeavyReads
	res.Stats.Retries = d.Retries
	res.Stats.SimTime = d.SimTime
	for _, it := range res.Items {
		res.Stats.TotalPolygons += it.Polygons
		res.Stats.TotalBytes += it.Extent.NominalBytes
	}
	return res, nil
}

// CoherenceStats returns this session's incremental-traversal counters.
func (t *Tree) CoherenceStats() CoherenceStats {
	if t.cut == nil {
		return CoherenceStats{}
	}
	return t.cut.stats
}

// InvalidateCut drops the retained cut; the next QueryCoherent runs a
// full traversal. Callers that mutate the disk under a live session (test
// harnesses injecting faults, repair tools) should invalidate explicitly
// rather than rely on quarantine detection.
func (t *Tree) InvalidateCut() {
	if t.cut != nil {
		t.cut.valid = false
		t.cut.root = nil
	}
}

// cutRecord returns cn's node record, from the cut cache when possible.
// A cached record whose pages have since been quarantined is dropped and
// re-read — the re-read surfaces the fault instead of masking it.
// (Corruption injected after caching without quarantine is invisible
// here, exactly as it is invisible to a page sitting in the buffer pool.)
func (t *Tree) cutRecord(cn *cutNode, res *QueryResult) (*Node, error) {
	if cn.node != nil && !t.recordQuarantined(cn.id) {
		t.cut.stats.NodesReused++
		return cn.node, nil
	}
	cn.node = nil
	node, err := t.ReadNodeRecord(cn.id)
	if err != nil {
		return nil, err
	}
	res.Stats.NodesVisited++
	cn.node = node
	return node, nil
}

// recordQuarantined reports whether any page of id's record is parked.
func (t *Tree) recordQuarantined(id NodeID) bool {
	start := t.NodePage(id)
	for i := 0; i < t.nodeStride; i++ {
		if t.Disk.IsQuarantined(start + storage.PageID(i)) {
			return true
		}
	}
	return false
}

// child returns the retained cut child for id, if the previous traversal
// descended into it. Children are kept in entry order and nodes have
// bounded fan-out, so the linear scan is cheaper than any map.
func (cn *cutNode) child(id NodeID) *cutNode {
	for _, c := range cn.children {
		if c.id == id {
			return c
		}
	}
	return nil
}

// searchCut is searchNode re-rooted on the retained cut: the same Figure 3
// decisions in the same entry order — so the same Items — but node records
// come from the cut where retained, and the cut is rewritten in place to
// the new traversal's shape. Always serial: the cut structure is the
// shared mutable state a fan-out would have to lock, and the records it
// saves are exactly the reads parallelism would have overlapped. No fault
// absorption here — any error aborts to the caller's full-query fallback.
func (t *Tree) searchCut(tc travCtx, cn *cutNode, eta float64, res *QueryResult) error {
	if err := tc.err(); err != nil {
		return err
	}
	node, err := t.cutRecord(cn, res)
	if err != nil {
		return err
	}
	vd, ok, err := t.vstore.NodeVD(cn.id)
	if err != nil {
		return err
	}
	if !ok {
		// Whole node invisible in this cell: the cut keeps cn (the record
		// cache stays warm — a neighbor may flip it visible again) but
		// drops the subtree below the frontier.
		t.collapse(cn)
		return nil
	}
	if len(vd) < len(node.Entries) {
		return fmt.Errorf("core: node %d has %d entries but V-page has %d", cn.id, len(node.Entries), len(vd))
	}
	var keep []*cutNode
	for ei, e := range node.Entries {
		v := vd[ei]
		if v.DoV <= 0 {
			res.Stats.BranchesCut++
			if !node.Leaf && cn.child(e.ChildID) != nil {
				t.cut.stats.Collapsed++
			}
			continue
		}
		if node.Leaf {
			k := LeafDetail(v.DoV)
			lvl := chooseLevel(k, len(t.ObjExtents[e.ObjectID]))
			obj := t.Scene.Object(e.ObjectID)
			res.Items = append(res.Items, ResultItem{
				ObjectID: e.ObjectID,
				NodeID:   NilNode,
				DoV:      v.DoV,
				Detail:   k,
				Level:    lvl,
				Polygons: obj.LoDs.PolygonsFor(k),
				Extent:   t.ObjExtents[e.ObjectID][lvl],
			})
			continue
		}
		k := InternalDetail(v.DoV, eta)
		internalPolys := interpolatePolys(e.LoDPolys, k)
		avgObjPolys := 0.0
		if e.DescCount > 0 {
			avgObjPolys = float64(e.DescPolys) / float64(e.DescCount)
		}
		if len(e.LoDRefs) > 0 && v.DoV <= eta && (t.DisableTerminationHeuristic ||
			TerminateHeuristic(internalPolys, avgObjPolys, t.RhoMeasured, v.NVO)) {
			lvl := chooseLevel(k, len(e.LoDRefs))
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1,
				NodeID:   e.ChildID,
				DoV:      v.DoV,
				Detail:   k,
				Level:    lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			})
			res.Stats.EarlyStops++
			if cn.child(e.ChildID) != nil {
				t.cut.stats.Collapsed++
			}
			continue
		}
		c := cn.child(e.ChildID)
		if c == nil {
			c = &cutNode{id: e.ChildID}
			t.cut.stats.Expanded++
		}
		if err := t.searchCut(tc, c, eta, res); err != nil {
			return err
		}
		keep = append(keep, c)
	}
	cn.children = keep
	return nil
}

// collapse drops cn's subtree from the cut (the frontier moved above it),
// counting one collapse per retained descendant edge.
func (t *Tree) collapse(cn *cutNode) {
	for _, c := range cn.children {
		t.cut.stats.Collapsed++
		t.collapse(c)
	}
	cn.children = nil
}
