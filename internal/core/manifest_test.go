package core

import (
	"testing"

	"repro/internal/scene"
	"repro/internal/storage"
)

func TestTreeManifestOpenRoundTrip(t *testing.T) {
	tr, _ := fixture(t)
	m := tr.Manifest()
	got, err := OpenTree(tr.Scene, tr.Disk, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != tr.NumNodes() {
		t.Fatalf("nodes %d vs %d", got.NumNodes(), tr.NumNodes())
	}
	if got.SMeasured != tr.SMeasured || got.RhoMeasured != tr.RhoMeasured {
		t.Fatal("constants changed")
	}
	if got.Grid.NumCells() != tr.Grid.NumCells() || got.Grid.Bounds != tr.Grid.Bounds {
		t.Fatal("grid changed")
	}
	if err := got.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// Reopened internal LoDs decode to the recorded polygon counts.
	for i, n := range got.Nodes {
		for li := range n.InternalPolys {
			if n.InternalLoD.Levels[li].NumTriangles() != tr.Nodes[i].InternalPolys[li] {
				t.Fatalf("node %d level %d polys changed", i, li)
			}
		}
	}
}

func TestOpenTreeValidation(t *testing.T) {
	tr, _ := fixture(t)
	m := tr.Manifest()

	if _, err := OpenTree(nil, tr.Disk, m); err == nil {
		t.Fatal("nil scene accepted")
	}
	if _, err := OpenTree(tr.Scene, nil, m); err == nil {
		t.Fatal("nil disk accepted")
	}
	bad := m
	bad.NumNodes = 0
	if _, err := OpenTree(tr.Scene, tr.Disk, bad); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad = m
	bad.NodeStride = 0
	if _, err := OpenTree(tr.Scene, tr.Disk, bad); err == nil {
		t.Fatal("zero stride accepted")
	}
	bad = m
	bad.ObjExtents = bad.ObjExtents[:1]
	if _, err := OpenTree(tr.Scene, tr.Disk, bad); err == nil {
		t.Fatal("object directory mismatch accepted")
	}
	// A wrong page base makes record decoding fail loudly.
	bad = m
	bad.NodePageBase += 3
	if _, err := OpenTree(tr.Scene, tr.Disk, bad); err == nil {
		t.Fatal("shifted page base accepted")
	}
	// Scene/manifest mismatch (different scene).
	other := scene.Generate(func() scene.CityParams {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 1, 1
		p.BuildingsPerBlock = 2
		p.BlobsPerBlock = 0
		p.NominalBytes = 0
		return p
	}())
	if _, err := OpenTree(other, tr.Disk, m); err == nil {
		t.Fatal("wrong scene accepted")
	}
}

func TestCheckStructureCatchesCorruption(t *testing.T) {
	// Rebuild a private tree so mutations don't poison the shared fixture.
	sc := scene.Generate(func() scene.CityParams {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 1, 1
		p.BuildingsPerBlock = 4
		p.BlobsPerBlock = 2
		p.BlobDetail = 6
		p.NominalBytes = 0
		return p
	}())
	d := storage.NewDisk(0, storage.DefaultCostModel())
	bp := DefaultBuildParams()
	bp.DirsPerViewpoint = 64
	bp.SamplesPerCell = 1
	tr, _, err := Build(sc, d, bp)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckStructure(); err != nil {
		t.Fatal(err)
	}
	// Each corruption is detected.
	save := tr.Nodes[0].LeafDescendants
	tr.Nodes[0].LeafDescendants++
	if tr.CheckStructure() == nil {
		t.Fatal("descendant corruption not caught")
	}
	tr.Nodes[0].LeafDescendants = save

	if !tr.Nodes[0].Leaf {
		saveID := tr.Nodes[0].Entries[0].ChildID
		tr.Nodes[0].Entries[0].ChildID = 0 // self-reference breaks preorder
		if tr.CheckStructure() == nil {
			t.Fatal("preorder corruption not caught")
		}
		tr.Nodes[0].Entries[0].ChildID = saveID
	}

	saveNode := tr.Nodes[len(tr.Nodes)-1]
	tr.Nodes[len(tr.Nodes)-1] = nil
	if tr.CheckStructure() == nil {
		t.Fatal("nil node not caught")
	}
	tr.Nodes[len(tr.Nodes)-1] = saveNode
}
