package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/cells"
	"repro/internal/geom"
)

// memVStore serves VD straight from a VisData field with no I/O — it
// isolates traversal semantics from storage-scheme behavior (the schemes
// have their own equivalence tests in package vstore).
type memVStore struct {
	vis *VisData
	cur cells.CellID
}

func (m *memVStore) Name() string     { return "mem" }
func (m *memVStore) SizeBytes() int64 { return 0 }
func (m *memVStore) SetCell(c cells.CellID) error {
	m.cur = c
	return nil
}
func (m *memVStore) NodeVD(id NodeID) ([]VD, bool, error) {
	vd := m.vis.PerCell[m.cur][id]
	if vd == nil {
		return nil, false, nil
	}
	return vd, true, nil
}

// visibleObjectSet returns the ground-truth visible objects of a cell.
func visibleObjectSet(tr *Tree, vis *VisData, cell cells.CellID) map[int64]float64 {
	out := make(map[int64]float64)
	perNode := vis.PerCell[cell]
	for id, vd := range perNode {
		if vd == nil || !tr.Nodes[id].Leaf {
			continue
		}
		for ei, v := range vd {
			if v.DoV > 0 {
				out[tr.Nodes[id].Entries[ei].ObjectID] = v.DoV
			}
		}
	}
	return out
}

// coveredSet expands a result into the set of represented objects.
func coveredSet(tr *Tree, items []ResultItem) map[int64]bool {
	out := make(map[int64]bool)
	for _, it := range items {
		if it.ObjectID >= 0 {
			out[it.ObjectID] = true
			continue
		}
		tr.DescendantObjects(it.NodeID, func(id int64) { out[id] = true })
	}
	return out
}

func withMemStore(t *testing.T) (*Tree, *VisData) {
	tr, vis := fixture(t)
	tr.SetVStore(&memVStore{vis: vis})
	return tr, vis
}

func TestQueryEtaZeroIsNaive(t *testing.T) {
	tr, vis := withMemStore(t)
	for c := 0; c < tr.Grid.NumCells(); c++ {
		cell := cells.CellID(c)
		res, err := tr.Query(cell, 0)
		if err != nil {
			t.Fatal(err)
		}
		// At eta = 0 the tree degenerates to the (cell, list-of-objects)
		// method: every item is an object, none internal.
		truth := visibleObjectSet(tr, vis, cell)
		if len(res.Items) != len(truth) {
			t.Fatalf("cell %d: %d items, want %d", cell, len(res.Items), len(truth))
		}
		for _, it := range res.Items {
			if it.IsInternal() {
				t.Fatalf("cell %d: internal item at eta=0", cell)
			}
			dov, ok := truth[it.ObjectID]
			if !ok {
				t.Fatalf("cell %d: object %d not in truth", cell, it.ObjectID)
			}
			if math.Abs(it.DoV-dov) > 1e-12 {
				t.Fatalf("cell %d object %d: DoV %v, want %v", cell, it.ObjectID, it.DoV, dov)
			}
			if want := LeafDetail(dov); math.Abs(it.Detail-want) > 1e-12 {
				t.Fatalf("cell %d object %d: detail %v, want %v", cell, it.ObjectID, it.Detail, want)
			}
		}
		if res.Stats.EarlyStops != 0 {
			t.Fatalf("cell %d: %d early stops at eta=0", cell, res.Stats.EarlyStops)
		}
	}
}

func TestQueryCoversAllVisibleObjects(t *testing.T) {
	tr, vis := withMemStore(t)
	for _, eta := range []float64{0.0001, 0.001, 0.008, 0.05} {
		for c := 0; c < tr.Grid.NumCells(); c++ {
			cell := cells.CellID(c)
			res, err := tr.Query(cell, eta)
			if err != nil {
				t.Fatal(err)
			}
			truth := visibleObjectSet(tr, vis, cell)
			covered := coveredSet(tr, res.Items)
			for objID := range truth {
				if !covered[objID] {
					t.Fatalf("eta=%v cell %d: visible object %d not covered", eta, cell, objID)
				}
			}
		}
	}
}

func TestQueryMonotoneInEta(t *testing.T) {
	tr, _ := withMemStore(t)
	etas := []float64{0, 0.0002, 0.001, 0.004, 0.02}
	// The trend must be monotone, but small local bumps are intrinsic to
	// the averaged s/rho in the equation-3 guard — the paper's own
	// Table 3 rises at eta=0.0001 before falling. Allow a bounded local
	// rise and require an aggregate decrease.
	var firstPolys, lastPolys float64
	var firstNodes, lastNodes int
	for c := 0; c < tr.Grid.NumCells(); c += 3 {
		cell := cells.CellID(c)
		prevPolys := math.Inf(1)
		prevStops := -1
		prevNodes := 1 << 30
		for i, eta := range etas {
			res, err := tr.Query(cell, eta)
			if err != nil {
				t.Fatal(err)
			}
			// Early terminations can only increase with eta; nodes
			// visited can only decrease.
			if res.Stats.EarlyStops < prevStops {
				t.Fatalf("cell %d: early stops fell from %d to %d at eta=%v",
					cell, prevStops, res.Stats.EarlyStops, eta)
			}
			if res.Stats.NodesVisited > prevNodes {
				t.Fatalf("cell %d: nodes visited rose from %d to %d at eta=%v",
					cell, prevNodes, res.Stats.NodesVisited, eta)
			}
			if res.Stats.TotalPolygons > prevPolys*1.10 {
				t.Fatalf("cell %d: polygons rose >10%% from %v to %v at eta=%v",
					cell, prevPolys, res.Stats.TotalPolygons, eta)
			}
			prevStops = res.Stats.EarlyStops
			prevNodes = res.Stats.NodesVisited
			prevPolys = res.Stats.TotalPolygons
			if i == 0 {
				firstPolys += res.Stats.TotalPolygons
				firstNodes += res.Stats.NodesVisited
			}
			if i == len(etas)-1 {
				lastPolys += res.Stats.TotalPolygons
				lastNodes += res.Stats.NodesVisited
			}
		}
	}
	// The VD = (DoV, NVO) design cannot see which descendants are the
	// heavy ones, so polygons may drift a few percent (the paper's
	// Table 3 bumps too); nodes visited must strictly fall.
	if lastPolys > firstPolys*1.05 {
		t.Fatalf("aggregate polygons rose >5%%: %v at eta=0 vs %v at eta=%v",
			firstPolys, lastPolys, etas[len(etas)-1])
	}
	if lastNodes >= firstNodes {
		t.Fatalf("aggregate nodes visited did not fall: %d vs %d", firstNodes, lastNodes)
	}
}

func TestQueryEarlyStopsAppear(t *testing.T) {
	tr, _ := withMemStore(t)
	// Across all cells, a generous threshold must produce at least one
	// internal-LoD answer somewhere (otherwise the HDoV machinery is
	// inert and the experiments are vacuous).
	total := 0
	for c := 0; c < tr.Grid.NumCells(); c++ {
		res, err := tr.Query(cells.CellID(c), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Stats.EarlyStops
	}
	if total == 0 {
		t.Fatal("no early terminations at eta=0.05")
	}
}

func TestQueryStatsConsistency(t *testing.T) {
	tr, _ := withMemStore(t)
	res, err := tr.Query(5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	var polys float64
	var bytes int64
	for _, it := range res.Items {
		polys += it.Polygons
		bytes += it.Extent.NominalBytes
		if it.DoV <= 0 {
			t.Fatal("emitted item with zero DoV")
		}
		if it.Detail < 0 || it.Detail > 1 {
			t.Fatalf("detail %v out of range", it.Detail)
		}
	}
	if math.Abs(polys-res.Stats.TotalPolygons) > 1e-9 {
		t.Fatal("TotalPolygons inconsistent")
	}
	if bytes != res.Stats.TotalBytes {
		t.Fatal("TotalBytes inconsistent")
	}
	if res.Stats.NodesVisited < 1 {
		t.Fatal("no nodes visited")
	}
}

func TestFetchPayloads(t *testing.T) {
	tr, _ := withMemStore(t)
	res, err := tr.Query(2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Skip("cell empty")
	}
	before := tr.Disk.Stats()
	n, err := tr.FetchPayloads(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Items) {
		t.Fatalf("fetched %d of %d", n, len(res.Items))
	}
	d := tr.Disk.Stats().Sub(before)
	var wantPages int64
	for _, it := range res.Items {
		wantPages += int64(it.Extent.Pages(tr.Disk))
	}
	if d.HeavyReads != wantPages {
		t.Fatalf("heavy reads %d, want %d", d.HeavyReads, wantPages)
	}
	if d.LightReads != 0 {
		t.Fatal("payload fetch charged light I/O")
	}
	// Skip-all fetches nothing.
	before = tr.Disk.Stats()
	n, err = tr.FetchPayloads(res, func(ResultItem) bool { return true })
	if err != nil || n != 0 {
		t.Fatalf("skip-all fetched %d, err %v", n, err)
	}
	if tr.Disk.Stats().Sub(before).HeavyReads != 0 {
		t.Fatal("skip-all charged I/O")
	}
}

func TestLoadMesh(t *testing.T) {
	tr, _ := withMemStore(t)
	res, err := tr.Query(2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Items {
		m, err := tr.LoadMesh(it)
		if err != nil {
			t.Fatalf("item %+v: %v", it, err)
		}
		if m.NumTriangles() == 0 {
			t.Fatalf("item %+v: empty mesh", it)
		}
		// The loaded mesh must be the chosen LoD level.
		if it.ObjectID >= 0 {
			want := tr.Scene.Object(it.ObjectID).LoDs.Levels[it.Level].NumTriangles()
			if m.NumTriangles() != want {
				t.Fatalf("object %d level %d: %d tris, want %d", it.ObjectID, it.Level, m.NumTriangles(), want)
			}
		} else {
			want := tr.Nodes[it.NodeID].InternalPolys[it.Level]
			if m.NumTriangles() != want {
				t.Fatalf("node %d level %d: %d tris, want %d", it.NodeID, it.Level, m.NumTriangles(), want)
			}
		}
	}
}

func TestQueryPrioritizedSameAnswerSet(t *testing.T) {
	tr, _ := withMemStore(t)
	eye := tr.Grid.Center(5)
	f := geom.NewFrustum(eye, geom.V(1, 0.3, 0), geom.V(0, 0, 1), math.Pi/3, 4.0/3, 0.5, 1000)
	for _, eta := range []float64{0, 0.001, 0.01} {
		plain, err := tr.Query(5, eta)
		if err != nil {
			t.Fatal(err)
		}
		prio, err := tr.QueryPrioritized(5, eta, f)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.Items) != len(prio.Items) {
			t.Fatalf("eta=%v: %d vs %d items", eta, len(plain.Items), len(prio.Items))
		}
		key := func(it ResultItem) [2]int64 { return [2]int64{it.ObjectID, int64(it.NodeID)} }
		a := make([][2]int64, len(plain.Items))
		b := make([][2]int64, len(prio.Items))
		for i := range plain.Items {
			a[i] = key(plain.Items[i])
			b[i] = key(prio.Items[i])
		}
		less := func(s [][2]int64) func(i, j int) bool {
			return func(i, j int) bool {
				if s[i][0] != s[j][0] {
					return s[i][0] < s[j][0]
				}
				return s[i][1] < s[j][1]
			}
		}
		sort.Slice(a, less(a))
		sort.Slice(b, less(b))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("eta=%v: answer sets differ", eta)
			}
		}
	}
}

func TestQueryPrioritizedFrontLoadsInView(t *testing.T) {
	tr, _ := withMemStore(t)
	eye := tr.Grid.Center(5)
	look := geom.V(1, 0, 0)
	f := geom.NewFrustum(eye, look, geom.V(0, 0, 1), math.Pi/3, 4.0/3, 0.5, 1000)
	prio, err := tr.QueryPrioritized(5, 0.0005, f)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := tr.Query(5, 0.0005)
	if err != nil {
		t.Fatal(err)
	}
	if len(prio.Items) < 4 {
		t.Skip("too few items to measure ordering")
	}
	inView := func(it ResultItem) bool {
		var b geom.AABB
		if it.ObjectID >= 0 {
			b = tr.Scene.Object(it.ObjectID).MBR
		} else {
			b = geom.EmptyAABB()
			for _, e := range tr.Nodes[it.NodeID].Entries {
				b = b.Union(e.MBR)
			}
		}
		return f.IntersectsAABB(b)
	}
	// The extension's claim is earlier delivery of in-view geometry, not a
	// total ordering: subtrees mix in- and out-of-view objects, so the
	// right metric is that in-view items accumulate at least as fast as in
	// the unprioritized depth-first order (prefix-mass dominance).
	mass := func(items []ResultItem) float64 {
		var auc float64
		n := len(items)
		for i, it := range items {
			if inView(it) {
				auc += float64(n - i)
			}
		}
		return auc
	}
	if mass(prio.Items) < mass(plain.Items) {
		t.Fatalf("prioritized in-view prefix mass %v < plain %v",
			mass(prio.Items), mass(plain.Items))
	}
}
