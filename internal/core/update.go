package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cells"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/scene"
	"repro/internal/visibility"
)

// Incremental scene maintenance (DESIGN.md §15). ApplyOps evolves a built
// HDoV-tree through a batch of insert/delete/move operations without
// rebuilding from scratch:
//
//   - the R-tree backbone is updated in place (Guttman insert/delete with
//     the same Ang–Tan splits a from-scratch evolution would perform, so
//     topology is deterministic and shared with the rebuild reference);
//   - internal LoDs are rebuilt only for nodes whose subtree changed —
//     every other node reuses the previous epoch's chain and on-disk
//     extents verbatim;
//   - per-cell DoV fields are re-cast only for viewing cells one of whose
//     sampling rays reaches a changed object's bounding box (old or new
//     position); untouched cells reuse their retained raw DoV;
//   - every page written is freshly allocated (the simulated disk is
//     append-only from the tree's perspective), so the previous epoch's
//     tree, payloads and V-pages remain fully readable: concurrent
//     sessions pinned to the old tree keep seeing a consistent snapshot.
//
// The correctness contract — enforced by the rebuild-differential harness
// in update_differential_test.go — is that the updated tree answers every
// query byte-identically (modulo on-disk addresses) to a tree built from
// scratch over the replayed scene with the same deterministically evolved
// backbone.

// UpdateStats reports what an ApplyOps call did, for tests and the
// dynupdate experiment.
type UpdateStats struct {
	// Ops is the number of operations applied.
	Ops int
	// TouchedCells is how many viewing cells had their DoV field re-cast;
	// TotalCells is the grid size. The difference is the cells served from
	// the retained raw field.
	TouchedCells int
	TotalCells   int
	// LoDReused / LoDRebuilt count nodes whose internal-LoD chain was
	// adopted from the previous epoch vs. re-simplified.
	LoDReused  int
	LoDRebuilt int
	// PagesAppended is the number of disk pages the update allocated.
	PagesAppended int64
}

// entrySig is the identity of one R-tree entry for the purposes of the
// internal-LoD cache: the child pointer (internal) or item ID (leaf) plus
// the exact MBR. Signatures are order-sensitive — mesh aggregation merges
// parts in entry order, so a reordered node must rebuild.
type entrySig struct {
	child *rtree.Node
	item  int64
	mbr   geom.AABB
}

// nodeSnap pairs a pre-update mirrored node with its entry signatures.
type nodeSnap struct {
	old *Node
	sig []entrySig
}

// ApplyOps applies ops to the tree and returns the next epoch's tree and
// visibility data. The receiver tree and vis are never mutated (beyond
// transferring the private R-tree backbone to the new epoch) and stay
// fully queryable; on error nothing observable has changed.
//
// vis may be nil (a reopened database): every cell is then recomputed
// once, exactly as a fresh build would, and the returned VisData carries
// raw DoV so subsequent updates localize.
//
// The caller owns republishing: building vstore schemes over the returned
// VisData and swapping sessions over to the new tree.
func ApplyOps(t *Tree, vis *VisData, ops []scene.Op) (*Tree, *VisData, []scene.OpEffect, *UpdateStats, error) {
	if t == nil || t.Scene == nil || t.Disk == nil {
		return nil, nil, nil, nil, fmt.Errorf("core: update: nil tree")
	}
	if len(ops) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("core: update: empty op batch")
	}
	stats := &UpdateStats{Ops: len(ops)}
	pagesBefore := t.Disk.NumPages()

	if err := t.ensureRTree(); err != nil {
		return nil, nil, nil, nil, err
	}

	// Snapshot entry signatures BEFORE mutating the backbone: the cache
	// compares post-update entries against what each surviving R-tree node
	// looked like in the previous epoch.
	oldSnap := make(map[*rtree.Node]*nodeSnap, len(t.bb.nodes))
	for i, rn := range t.bb.nodes {
		sig := make([]entrySig, len(rn.Entries))
		for j := range rn.Entries {
			e := &rn.Entries[j]
			sig[j] = entrySig{child: e.Child, item: e.ItemID, mbr: e.MBR}
		}
		oldSnap[rn] = &nodeSnap{old: t.Nodes[i], sig: sig}
	}

	// Apply the ops: copy-on-write scene evolution plus the deterministic
	// R-tree op sequence the rebuild reference replays.
	sc2 := t.Scene.CloneShell()
	effects := make([]scene.OpEffect, 0, len(ops))
	rt := t.bb.rt
	fail := func(err error) (*Tree, *VisData, []scene.OpEffect, *UpdateStats, error) {
		// The backbone diverged from the mirror mid-batch; drop it so the
		// next update reconstructs the pre-batch state from the mirror.
		t.bb.rt, t.bb.nodes = nil, nil
		return nil, nil, nil, nil, err
	}
	for i, op := range ops {
		eff, err := sc2.ApplyOp(op)
		if err != nil {
			return fail(fmt.Errorf("core: update op %d: %w", i, err))
		}
		switch eff.Kind {
		case scene.OpInsert:
			rt.Insert(eff.NewMBR, eff.ObjectID)
		case scene.OpDelete:
			if !rt.Delete(eff.OldMBR, eff.ObjectID) {
				return fail(fmt.Errorf("core: update op %d: object %d not in R-tree", i, eff.ObjectID))
			}
		case scene.OpMove:
			if !rt.Delete(eff.OldMBR, eff.ObjectID) {
				return fail(fmt.Errorf("core: update op %d: object %d not in R-tree", i, eff.ObjectID))
			}
			rt.Insert(eff.NewMBR, eff.ObjectID)
		}
		effects = append(effects, eff)
	}
	if rt.Len() != sc2.NumAlive() {
		return fail(fmt.Errorf("core: update: R-tree has %d items, scene has %d alive", rt.Len(), sc2.NumAlive()))
	}

	// The backbone now belongs to the next epoch; the old tree keeps its
	// mirror (its queryable structure) but loses the live rt. Only holder
	// contents change — the Tree struct itself stays frozen, so sessions
	// being created off the old tree right now copy a stable struct.
	t.bb.rt, t.bb.nodes = nil, nil

	// Next epoch's tree shell. Grid, disk and params carry over; the shed
	// policy slot is shared so a policy flip reaches both epochs.
	p := t.Params
	p.Grid = t.Grid
	p = normalizeBuildParams(sc2, p)
	t2 := &Tree{
		Scene:                       sc2,
		Grid:                        p.Grid,
		Disk:                        t.Disk,
		Params:                      p,
		IO:                          t.Disk.NewClient(),
		bb:                          &backbone{rt: rt},
		DisableTerminationHeuristic: t.DisableTerminationHeuristic,
		FaultTolerant:               t.FaultTolerant,
		shed:                        t.shed,
	}
	if t.Parallel > 1 {
		t2.SetParallel(t.Parallel)
	}
	t2.mirror(rt)

	// Internal LoDs: reuse chains for nodes whose subtree provably did not
	// change. Cleanliness is bottom-up: a node is clean iff its R-tree node
	// survived with identical entries (same children/items, same MBRs, same
	// order) and every child is clean. Children have higher preorder IDs,
	// so a reverse-ID scan resolves child cleanliness first — the same
	// order buildInternalLoDs consumes the answers in.
	clean := make([]bool, len(t2.Nodes))
	for i := len(t2.Nodes) - 1; i >= 0; i-- {
		rn := t2.bb.nodes[i]
		snap := oldSnap[rn]
		if snap == nil || len(snap.sig) != len(rn.Entries) {
			continue
		}
		ok := true
		for j := range rn.Entries {
			e := &rn.Entries[j]
			s := snap.sig[j]
			if e.Child != s.child || e.ItemID != s.item || e.MBR != s.mbr {
				ok = false
				break
			}
			if !t2.Nodes[i].Leaf && !clean[t2.Nodes[i].Entries[j].ChildID] {
				ok = false
				break
			}
		}
		clean[i] = ok
	}
	err := t2.buildInternalLoDs(func(n *Node) *Node {
		if clean[n.ID] {
			stats.LoDReused++
			return oldSnap[t2.bb.nodes[n.ID]].old
		}
		stats.LoDRebuilt++
		return nil
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}

	t2.RhoMeasured = measureRho(sc2)

	// Object payloads: unchanged objects (and tombstones — their geometry
	// is frozen) keep their extents; inserted and moved objects get fresh
	// pages.
	t2.ObjExtents = make([][]Extent, len(sc2.Objects))
	for id, o := range sc2.Objects {
		if id < len(t.ObjExtents) && (o.Dead || t.Scene.Objects[id] == o) {
			t2.ObjExtents[id] = t.ObjExtents[id]
			continue
		}
		exts, werr := t2.writeObjectPayload(o)
		if werr != nil {
			return nil, nil, nil, nil, werr
		}
		t2.ObjExtents[id] = exts
	}

	// Node records are always rewritten: preorder IDs shift under any
	// topology change and the records are small.
	if err := t2.writeNodeRecords(); err != nil {
		return nil, nil, nil, nil, err
	}
	if err := t2.CheckStructure(); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: update: %w", err)
	}
	if err := rt.CheckInvariants(); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("core: update: %w", err)
	}

	// Visibility: localized re-cast.
	changed := changedBoxes(effects)
	vis2, err := t2.updateVisibility(vis, changed, stats)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	stats.PagesAppended = int64(t.Disk.NumPages() - pagesBefore)
	return t2, vis2, effects, stats, nil
}

// ensureRTree reconstructs the live R-tree backbone from the node mirror
// when the tree was reopened from disk. The mirror preserves structure,
// entry order and MBRs exactly, so the adopted backbone evolves bit-
// identically to the one that was live when the database was saved.
func (t *Tree) ensureRTree() error {
	if t.bb == nil {
		t.bb = &backbone{}
	}
	if t.bb.rt != nil {
		return nil
	}
	rnodes := make([]*rtree.Node, len(t.Nodes))
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := t.Nodes[i]
		rn := &rtree.Node{Leaf: n.Leaf, Entries: make([]rtree.Entry, len(n.Entries))}
		for j, e := range n.Entries {
			if n.Leaf {
				rn.Entries[j] = rtree.Entry{MBR: e.MBR, ItemID: e.ObjectID}
			} else {
				rn.Entries[j] = rtree.Entry{MBR: e.MBR, Child: rnodes[e.ChildID]}
			}
		}
		rnodes[i] = rn
	}
	rt, err := rtree.Adopt(rnodes[0], t.Params.FanoutMin, t.Params.FanoutMax)
	if err != nil {
		return fmt.Errorf("core: update: %w", err)
	}
	t.bb.rt = rt
	t.bb.nodes = rnodes
	return nil
}

// changedBoxes collects the bounding boxes whose contents changed: old and
// new positions of every affected object, empties dropped.
func changedBoxes(effects []scene.OpEffect) []geom.AABB {
	var boxes []geom.AABB
	for _, e := range effects {
		if !e.OldMBR.IsEmpty() {
			boxes = append(boxes, e.OldMBR)
		}
		if !e.NewMBR.IsEmpty() {
			boxes = append(boxes, e.NewMBR)
		}
	}
	return boxes
}

// updateVisibility recomputes the per-cell DoV fields after a scene
// change. A cell whose sampling rays reach none of the changed boxes keeps
// its retained raw DoV (zero-extended for inserted objects — by
// construction their DoV there is exactly zero); every other cell is
// re-cast with a fresh engine over the new scene. Quantization and
// aggregation rerun for every cell either way, because both depend on the
// (possibly shifted) tree topology. The result is bit-identical to a
// from-scratch precompute: an untouched cell's rays attribute to the same
// nearest occluders at the same distances, since no changed geometry lies
// on any of them and hit distances are never range-clipped (maxDist is the
// scene diameter, which only grows).
func (t *Tree) updateVisibility(oldVis *VisData, changed []geom.AABB, stats *UpdateStats) (*VisData, error) {
	grid := t.Grid
	stats.TotalCells = grid.NumCells()
	if t.Params.UseItemBuffer || oldVis == nil || oldVis.RawDoV == nil {
		// No retained raw field to localize against (or the rasterizer
		// backend, whose fields are not per-object ray attributions):
		// recompute everything, exactly as a fresh build would.
		stats.TouchedCells = grid.NumCells()
		return t.precomputeVisibility(), nil
	}

	eng := visibility.NewEngine(t.Scene, t.Params.DirsPerViewpoint)
	vis := &VisData{
		NumNodes:  len(t.Nodes),
		Grid:      grid,
		PerCell:   make(map[cells.CellID][][]VD, grid.NumCells()),
		CellShift: make([]uint8, grid.NumCells()),
		RawDoV:    make([][]float64, grid.NumCells()),
	}
	workers := t.Params.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type cellResult struct {
		cell    cells.CellID
		vd      [][]VD
		shift   uint8
		raw     []float64
		touched bool
	}
	jobs := make(chan cells.CellID)
	results := make(chan cellResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range jobs {
				samples := grid.SamplePoints(cell, t.Params.SamplesPerCell)
				oldRaw := oldVis.RawDoV[cell]
				touched := oldRaw == nil
				for _, box := range changed {
					if touched {
						break
					}
					if eng.AnyRayHitsBox(samples, box) {
						touched = true
					}
				}
				var raw []float64
				if touched {
					raw = eng.RegionDoV(samples)
				} else {
					raw = make([]float64, len(t.Scene.Objects))
					copy(raw, oldRaw)
				}
				vd, shift := t.quantizeCell(raw, t.Params.DoVQuantBits, t.Params.QuantSafeEtas)
				results <- cellResult{cell: cell, vd: vd, shift: shift, raw: raw, touched: touched}
			}
		}()
	}
	go func() {
		for c := 0; c < grid.NumCells(); c++ {
			jobs <- cells.CellID(c)
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		vis.PerCell[r.cell] = r.vd
		vis.CellShift[r.cell] = r.shift
		vis.RawDoV[r.cell] = r.raw
		if r.touched {
			stats.TouchedCells++
		}
	}
	return vis, nil
}
