// Degraded-mode traversal: the HDoV-tree's defining property — every
// internal node carries an internal LoD that can stand in for its whole
// subtree — is exactly the structure needed to survive media failure. When
// Tree.FaultTolerant is set, a corrupt child-node page, V-page, or payload
// extent does not abort the query: the traversal substitutes the deepest
// readable ancestor's internal LoD, records a structured Degradation event
// on the result, and quarantines the failed pages so repeated frames stop
// re-seeking them. With no faults firing, fault-tolerant traversal is
// byte-identical to the strict one.
package core

import (
	"errors"
	"fmt"

	"repro/internal/cells"
	"repro/internal/storage"
)

// ErrBadRecord marks a node record that was readable but failed to decode
// — silent media corruption, as opposed to an explicit read error.
var ErrBadRecord = errors.New("core: bad node record")

// FaultCause classifies which read failed during a fault-tolerant
// traversal.
type FaultCause uint8

const (
	// CauseNodeRecord: a node-record page was unreadable or undecodable.
	CauseNodeRecord FaultCause = iota
	// CauseVPage: the node's visibility data (V-page or V-page-index
	// slot) was unreadable.
	CauseVPage
	// CausePayload: a payload extent failed during FetchPayloads.
	CausePayload
	// CauseCellFlip: the storage scheme's cell-flip read failed, so no
	// visibility data was available for the whole frame.
	CauseCellFlip
	// CauseShed: no media failed — the query was answered at reduced
	// fidelity by an active ShedPolicy (η relaxation or depth
	// truncation). Overload shedding reuses the degradation stream so
	// reduced fidelity is always visible and counted (DESIGN.md §14).
	CauseShed
)

func (c FaultCause) String() string {
	switch c {
	case CauseNodeRecord:
		return "node-record"
	case CauseVPage:
		return "v-page"
	case CausePayload:
		return "payload"
	case CauseCellFlip:
		return "cell-flip"
	case CauseShed:
		return "shed"
	default:
		return fmt.Sprintf("FaultCause(%d)", int(c))
	}
}

// Degradation is one structured record of LoD degradation: which subtree's
// data could not be read, why, and which internal LoD stood in for it.
type Degradation struct {
	// Cell is the viewing cell of the degraded query.
	Cell cells.CellID
	// Node is the subtree whose data failed (NilNode for cell-flip faults
	// and for object-payload faults).
	Node NodeID
	// Object is the object whose payload failed (payload faults on object
	// items; -1 otherwise).
	Object int64
	// Cause classifies the failed read.
	Cause FaultCause
	// Page is the first failing page (storage.NilPage when the failure
	// was a decode error on readable pages).
	Page storage.PageID
	// SubstituteNode and SubstituteLevel identify the internal LoD that
	// stood in for the lost branch (NilNode / -1 if nothing readable was
	// found — the branch is simply absent from the frame).
	SubstituteNode  NodeID
	SubstituteLevel int
}

// lodSource is one rung of the ancestor ladder threaded through the
// traversal: a node whose internal-LoD references are already in hand
// (read from its parent's entry or its own record), so substituting it
// needs no further access to damaged media.
type lodSource struct {
	node  NodeID
	refs  []Extent
	polys []int
}

// degradable reports whether err is a media fault the fault-tolerant
// traversal may absorb. Structural errors (out-of-range pages, layout
// mismatches) still abort: they indicate bugs, not bad sectors.
func degradable(err error) bool {
	return errors.Is(err, storage.ErrCorrupt) || errors.Is(err, ErrBadRecord)
}

// nodeRecordRange reports whether page falls inside the node-record
// region, distinguishing node faults from V-page faults.
func (t *Tree) nodeRecordRange(page storage.PageID) bool {
	return page >= t.nodePageBase &&
		page < t.nodePageBase+storage.PageID(len(t.Nodes)*t.nodeStride)
}

// quarantineNodeRecord parks every page of a node's record.
func (t *Tree) quarantineNodeRecord(id NodeID) {
	start := t.NodePage(id)
	for i := 0; i < t.nodeStride; i++ {
		t.Disk.Quarantine(start + storage.PageID(i))
	}
}

// absorbFault decides whether a fault-tolerant traversal may absorb the
// error that aborted the descent into child. On yes it quarantines the
// damaged pages and returns the classified cause; on no the error must
// propagate.
func (t *Tree) absorbFault(err error, child NodeID) (FaultCause, storage.PageID, bool) {
	if !t.FaultTolerant || !degradable(err) {
		return 0, storage.NilPage, false
	}
	var ce *storage.CorruptError
	if errors.As(err, &ce) {
		t.Disk.Quarantine(ce.Page)
		if t.nodeRecordRange(ce.Page) {
			t.quarantineNodeRecord(child)
			return CauseNodeRecord, ce.Page, true
		}
		return CauseVPage, ce.Page, true
	}
	// Decode failure on readable pages: quarantine the whole record.
	t.quarantineNodeRecord(child)
	return CauseNodeRecord, storage.NilPage, true
}

// extentReadable reports whether no page of the extent is quarantined.
// It consults only the quarantine set — knowledge recovery code earned by
// observing failures — never the corruption map, which a real system
// cannot see without reading.
func (t *Tree) extentReadable(e Extent) bool {
	n := e.Pages(t.Disk)
	for i := 0; i < n; i++ {
		if t.Disk.IsQuarantined(e.Start + storage.PageID(i)) {
			return false
		}
	}
	return true
}

// pickReadableLevel returns the level closest to want whose extent is not
// quarantined, preferring coarser levels (higher indices) — a degraded
// frame should err toward less detail, not more I/O.
func (t *Tree) pickReadableLevel(refs []Extent, want int) (int, bool) {
	if want < 0 {
		want = 0
	}
	if want >= len(refs) {
		want = len(refs) - 1
	}
	for lvl := want; lvl < len(refs); lvl++ {
		if t.extentReadable(refs[lvl]) {
			return lvl, true
		}
	}
	for lvl := want - 1; lvl >= 0; lvl-- {
		if t.extentReadable(refs[lvl]) {
			return lvl, true
		}
	}
	return -1, false
}

// substitute stands the deepest readable ancestor's internal LoD in for
// the subtree under failed, appending a result item (unless that node's
// LoD already stands in for a sibling failure) and a Degradation event.
func (t *Tree) substitute(res *QueryResult, anc []lodSource, failed NodeID, dov, k float64, cause FaultCause, page storage.PageID) {
	deg := Degradation{
		Cell: res.Cell, Node: failed, Object: -1, Cause: cause, Page: page,
		SubstituteNode: NilNode, SubstituteLevel: -1,
	}
	for s := len(anc) - 1; s >= 0; s-- {
		src := anc[s]
		if len(src.refs) == 0 {
			continue
		}
		lvl, ok := t.pickReadableLevel(src.refs, chooseLevel(k, len(src.refs)))
		if !ok {
			continue
		}
		deg.SubstituteNode = src.node
		deg.SubstituteLevel = lvl
		if !res.substituted[src.node] {
			if res.substituted == nil {
				res.substituted = make(map[NodeID]bool)
			}
			res.substituted[src.node] = true
			poly := 0.0
			if lvl < len(src.polys) {
				poly = float64(src.polys[lvl])
			}
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1, NodeID: src.node, DoV: dov, Detail: k,
				Level: lvl, Polygons: poly, Extent: src.refs[lvl],
			})
		}
		break
	}
	res.Degradations = append(res.Degradations, deg)
}

// rootFallback answers a query whose root access (cell flip, root record,
// or root V-page) failed: the root's internal LoD from the in-memory
// mirror — the one piece of the tree a production system keeps replicated
// in its superblock — stands in for the entire scene at the coarsest
// readable level. Returns false if the error is not absorbable.
func (t *Tree) rootFallback(res *QueryResult, err error, cause FaultCause) bool {
	if !t.FaultTolerant || !degradable(err) || len(t.Nodes) == 0 {
		return false
	}
	page := storage.NilPage
	var ce *storage.CorruptError
	if errors.As(err, &ce) {
		t.Disk.Quarantine(ce.Page)
		page = ce.Page
		if cause != CauseCellFlip {
			if t.nodeRecordRange(ce.Page) {
				t.quarantineNodeRecord(0)
				cause = CauseNodeRecord
			} else {
				cause = CauseVPage
			}
		}
	} else if cause == CauseNodeRecord {
		t.quarantineNodeRecord(0)
	}
	root := t.Nodes[0]
	// Nothing is known about per-entry DoV, so detail 0 selects the
	// coarsest whole-scene stand-in.
	t.substitute(res, []lodSource{{node: 0, refs: root.InternalExtents, polys: root.InternalPolys}},
		0, 0, 0, cause, page)
	return true
}
