package core

import (
	"sync"

	"repro/internal/cells"
)

// Result recycling. A walkthrough issues one query per frame and promptly
// discards the answer, so the hot path's allocations are dominated by
// QueryResult headers and their Items/Degradations backing arrays. A
// session carries a small free list: Recycle returns a result to it, and
// the next query reuses the slices at their grown capacity. The base tree
// has no pool (resPool nil) — recycling is per-session, so two sessions
// can never trade backing arrays.

// resultPoolCap bounds the free list. Serial sessions only ever hold one
// result; the parallel fan-out holds one sub-result per in-flight branch,
// so the bound tracks realistic fan-out, not result volume.
const resultPoolCap = 64

// resultPool is a bounded LIFO free list of QueryResults. The mutex is
// for the parallel traversal, whose branch workers get and put
// sub-results concurrently.
type resultPool struct {
	mu   sync.Mutex
	free []*QueryResult
}

func (p *resultPool) get() *QueryResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		return r
	}
	return nil
}

func (p *resultPool) put(r *QueryResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < resultPoolCap {
		p.free = append(p.free, r)
	}
}

// getResult allocates a result, reusing a recycled one when the session
// has a pool. Reused results keep their Items/Degradations capacity —
// that retained growth is the entire point.
func (t *Tree) getResult(cell cells.CellID, eta float64) *QueryResult {
	if t.resPool != nil {
		if r := t.resPool.get(); r != nil {
			r.Cell = cell
			r.Eta = eta
			return r
		}
	}
	return &QueryResult{Cell: cell, Eta: eta}
}

// Recycle returns res to the session's free list for reuse by a later
// query. The caller must not retain res, its Items, or its Degradations
// afterwards — the next query overwrites them in place. On a tree without
// a pool (the base tree) Recycle is a no-op, so callers can recycle
// unconditionally.
func (t *Tree) Recycle(res *QueryResult) {
	if t.resPool == nil || res == nil {
		return
	}
	res.Items = res.Items[:0]
	res.Degradations = res.Degradations[:0]
	res.Stats = QueryStats{}
	res.substituted = nil
	t.resPool.put(res)
}
