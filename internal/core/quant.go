package core

import "math"

// Build-time DoV quantization. The paper observes that DoV values only
// need enough precision to rank against the η thresholds a deployment
// queries with — our sampled DoV already carries ~sqrt(v(1-v)/N) noise —
// so the codec V-page layer (vstore, DESIGN.md §13) stores them as
// fixed-point integers instead of raw float64s. For query results to stay
// byte-identical between the raw and codec storage paths, the rounding
// cannot happen at encode time: it happens once, here, during the build,
// and both paths then store and return exactly the same (already dyadic)
// float64 values. The codec merely transports them losslessly.
//
// Snapping is per cell and validated against the exact data: the
// aggregated tree built from snapped leaf DoVs must classify every node
// entry on the same side of every safeguarded η as the tree built from
// the raw values. On a collision the cell's grid is widened
// (quantWidenStep more fraction bits at a time); a cell that still
// collides at maxQuantShift keeps its raw values (QuantShiftRaw), which
// the codec stores in its exact raw64 fallback mode.

// DefaultDoVQuantBits is the default dyadic grid: leaf DoVs become
// multiples of 2^-16. One grid step (1.5e-5) sits far below the sampling
// noise of the default ray budgets (≥ 2.4e-4), so snapping is invisible
// next to the measurement error the values already carry.
const DefaultDoVQuantBits = 16

// maxQuantShift is the widest snapping grid before a cell falls back to
// raw values: beyond 52 fraction bits a unit count no longer fits a
// float64 mantissa exactly.
const maxQuantShift = 52

// quantWidenStep is how many fraction bits a collision adds per retry.
const quantWidenStep = 8

// QuantShiftRaw marks a cell whose DoV values were left unquantized (the
// per-cell fallback when no safe grid exists, or quantization disabled).
const QuantShiftRaw uint8 = 0xFF

// DefaultQuantSafeEtas returns the η thresholds quantization must never
// reorder a value across: every operating point used by the paper's
// figures and the experiment harness. Builds that will be queried at other
// thresholds can extend the list via BuildParams.QuantSafeEtas.
func DefaultQuantSafeEtas() []float64 {
	return []float64{0, 0.0003, 0.0005, 0.001, 0.002, 0.004, 0.008}
}

// snapDoV rounds d onto the dyadic grid with the given fraction bits,
// preserving positivity: a strictly positive DoV never snaps to zero (it
// rounds up to one grid unit), so visibility (DoV > 0, NVO) is exactly
// preserved. Values the grid cannot represent exactly in float64 are
// returned unchanged.
func snapDoV(d float64, shift int) float64 {
	if d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
		return d
	}
	u := math.Round(math.Ldexp(d, shift))
	if u < 1 {
		u = 1
	}
	if u >= 1<<53 {
		return d // grid unit count would lose integer exactness
	}
	return math.Ldexp(u, -shift)
}

// quantizeCell snaps one cell's per-object DoV field and re-aggregates the
// tree from the snapped leaves. Internal sums stay exact in float64
// because the leaves are same-grid dyadic multiples whose total is far
// below 2^53 units, so the parent-sum invariant of §3.2 holds with zero
// error. The returned shift is the grid that validated, or QuantShiftRaw
// when the cell keeps its raw values.
func (t *Tree) quantizeCell(objDoV []float64, bits int, etas []float64) ([][]VD, uint8) {
	raw := t.aggregate(objDoV)
	if bits < 0 {
		return raw, QuantShiftRaw
	}
	snapped := make([]float64, len(objDoV))
	for shift := bits; shift <= maxQuantShift; shift += quantWidenStep {
		for i, d := range objDoV {
			snapped[i] = snapDoV(d, shift)
		}
		vd := t.aggregate(snapped)
		if quantSafe(raw, vd, etas) {
			return vd, uint8(shift)
		}
	}
	return raw, QuantShiftRaw
}

// quantSafe reports whether the snapped aggregation classifies every node
// entry identically to the raw one: same visibility (nil-ness and NVO)
// and the same side of every safeguarded η for every DoV. This is the
// build-time validation the codec's byte-identity guarantee rests on.
func quantSafe(raw, snap [][]VD, etas []float64) bool {
	if len(raw) != len(snap) {
		return false
	}
	for i := range raw {
		if (raw[i] == nil) != (snap[i] == nil) {
			return false
		}
		if raw[i] == nil {
			continue
		}
		if len(raw[i]) != len(snap[i]) {
			return false
		}
		for ei := range raw[i] {
			r, q := raw[i][ei], snap[i][ei]
			if q.DoV < 0 || r.NVO != q.NVO {
				return false
			}
			for _, eta := range etas {
				if (r.DoV <= eta) != (q.DoV <= eta) {
					return false
				}
			}
		}
	}
	return true
}
