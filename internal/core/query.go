package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cells"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/storage"
)

// ResultItem is one element of a visibility-query answer set: either an
// object LoD (line 5 of Figure 3, equation 6) or an internal LoD of a node
// whose branch the traversal terminated (line 8, equation 5).
type ResultItem struct {
	// ObjectID >= 0 for object items; -1 for internal-LoD items.
	ObjectID int64
	// NodeID >= 0 for internal-LoD items; NilNode for object items.
	NodeID NodeID
	// DoV is the entry's degree of visibility.
	DoV float64
	// Detail is the continuous detail coefficient k of equations 5/6.
	Detail float64
	// Level is the discrete LoD level selected for retrieval.
	Level int
	// Polygons is the interpolated polygon count (the render-cost model
	// input).
	Polygons float64
	// Extent locates the payload of the selected level on disk.
	Extent Extent
}

// IsInternal reports whether the item is an internal LoD.
func (it ResultItem) IsInternal() bool { return it.NodeID != NilNode }

// QueryStats summarizes the cost of one visibility query.
type QueryStats struct {
	NodesVisited  int // node records read (light)
	BranchesCut   int // entries pruned with DoV == 0 (line 3)
	EarlyStops    int // branches answered by an internal LoD (line 8)
	LightIO       int64
	HeavyIO       int64
	SimTime       time.Duration
	TotalPolygons float64
	TotalBytes    int64 // nominal payload bytes of the answer set
}

// QueryResult is the answer set of a visibility query.
type QueryResult struct {
	Cell  cells.CellID
	Eta   float64
	Items []ResultItem
	Stats QueryStats
}

// ErrNoVStore is returned by Query before SetVStore.
var ErrNoVStore = errors.New("core: no storage scheme attached (call SetVStore)")

// Query runs the threshold-based traversal of Figure 3 for the given cell
// and DoV threshold η. It charges light I/O for node records and V-pages
// (via the attached VStore); payload retrieval is separate (FetchPayloads)
// so experiments can account light-weight and total I/O independently, as
// Figures 8(a) and 8(b) do.
func (t *Tree) Query(cell cells.CellID, eta float64) (*QueryResult, error) {
	if t.vstore == nil {
		return nil, ErrNoVStore
	}
	if eta < 0 {
		eta = 0
	}
	before := t.Disk.Stats()
	res := &QueryResult{Cell: cell, Eta: eta}
	if err := t.vstore.SetCell(cell); err != nil {
		return nil, fmt.Errorf("core: cell flip: %w", err)
	}
	if err := t.searchNode(0, eta, res); err != nil {
		return nil, err
	}
	d := t.Disk.Stats().Sub(before)
	res.Stats.LightIO = d.LightReads
	res.Stats.HeavyIO = d.HeavyReads
	res.Stats.SimTime = d.SimTime
	for _, it := range res.Items {
		res.Stats.TotalPolygons += it.Polygons
		res.Stats.TotalBytes += it.Extent.NominalBytes
	}
	return res, nil
}

// searchNode is Algorithm Search(Node) of Figure 3.
func (t *Tree) searchNode(id NodeID, eta float64, res *QueryResult) error {
	node, err := t.ReadNodeRecord(id)
	if err != nil {
		return err
	}
	res.Stats.NodesVisited++
	vd, ok, err := t.vstore.NodeVD(id)
	if err != nil {
		return err
	}
	if !ok {
		return nil // whole node invisible in this cell
	}
	if len(vd) < len(node.Entries) {
		return fmt.Errorf("core: node %d has %d entries but V-page has %d", id, len(node.Entries), len(vd))
	}
	for ei, e := range node.Entries {
		v := vd[ei]
		// Line 3: completely hidden branch.
		if v.DoV <= 0 {
			res.Stats.BranchesCut++
			continue
		}
		// Lines 4-5: visible object.
		if node.Leaf {
			k := LeafDetail(v.DoV)
			lvl := chooseLevel(k, len(t.ObjExtents[e.ObjectID]))
			obj := t.Scene.Object(e.ObjectID)
			res.Items = append(res.Items, ResultItem{
				ObjectID: e.ObjectID,
				NodeID:   NilNode,
				DoV:      v.DoV,
				Detail:   k,
				Level:    lvl,
				Polygons: obj.LoDs.PolygonsFor(k),
				Extent:   t.ObjExtents[e.ObjectID][lvl],
			})
			continue
		}
		// Line 7: the equation-5 detail k is computed first because the
		// guard compares costs at the internal-LoD level that would
		// actually be retrieved (see TerminateHeuristic).
		k := InternalDetail(v.DoV, eta)
		internalPolys := interpolatePolys(e.LoDPolys, k)
		avgObjPolys := 0.0
		if e.DescCount > 0 {
			avgObjPolys = float64(e.DescPolys) / float64(e.DescCount)
		}
		if len(e.LoDRefs) > 0 && v.DoV <= eta && (t.DisableTerminationHeuristic ||
			TerminateHeuristic(internalPolys, avgObjPolys, t.RhoMeasured, v.NVO)) {
			// Line 8: answer the branch with the child's internal LoD,
			// whose references are co-located in the entry. (An entry
			// without LoD references — possible only for hand-built
			// trees — falls through to recursion.)
			lvl := chooseLevel(k, len(e.LoDRefs))
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1,
				NodeID:   e.ChildID,
				DoV:      v.DoV,
				Detail:   k,
				Level:    lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			})
			res.Stats.EarlyStops++
			continue
		}
		// Line 10: recurse.
		if err := t.searchNode(e.ChildID, eta, res); err != nil {
			return err
		}
	}
	return nil
}

// chooseLevel maps a continuous detail k in [0,1] (1 = finest) to a
// discrete level index among n levels, mirroring mesh.LoDChain.LevelFor.
func chooseLevel(k float64, n int) int {
	if n <= 1 {
		return 0
	}
	if k >= 1 {
		return 0
	}
	if k <= 0 {
		return n - 1
	}
	idx := int((1 - k) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// interpolatePolys evaluates the equation-5 polygon interpolation between
// the finest and coarsest internal LoD levels.
func interpolatePolys(polys []int, k float64) float64 {
	if len(polys) == 0 {
		return 0
	}
	hi := float64(polys[0])
	lo := float64(polys[len(polys)-1])
	if k >= 1 {
		return hi
	}
	if k <= 0 {
		return lo
	}
	return k*hi + (1-k)*lo
}

// FetchPayloads charges the heavy-weight I/O of retrieving every item's
// payload extent, skipping items for which skip returns true (the delta
// search of §5.4 passes a cache-hit predicate). It returns the number of
// items actually fetched.
func (t *Tree) FetchPayloads(res *QueryResult, skip func(ResultItem) bool) (int, error) {
	fetched := 0
	for _, it := range res.Items {
		if skip != nil && skip(it) {
			continue
		}
		ext := it.Extent
		if err := t.Disk.ReadExtent(ext.Start, ext.Pages(t.Disk), storage.ClassHeavy); err != nil {
			return fetched, err
		}
		fetched++
	}
	return fetched, nil
}

// LoadMesh decodes the actual mesh payload of a result item (the real
// bytes prefix of its extent), charging heavy I/O for the full nominal
// extent. Examples and the fidelity renderer use this.
func (t *Tree) LoadMesh(it ResultItem) (*mesh.Mesh, error) {
	buf, err := t.Disk.ReadBytes(it.Extent.Start, int(it.Extent.RealBytes), storage.ClassHeavy)
	if err != nil {
		return nil, err
	}
	return mesh.Decode(buf)
}

// QueryPrioritized is the DESIGN.md D5 extension (the paper's §6 future
// work): identical answer set to Query, but branches intersecting the view
// frustum are traversed first so the renderer receives in-view geometry
// earliest. The result carries, per item, the prefix position at which it
// became available; tests measure time-to-first-in-view-item.
func (t *Tree) QueryPrioritized(cell cells.CellID, eta float64, f geom.Frustum) (*QueryResult, error) {
	if t.vstore == nil {
		return nil, ErrNoVStore
	}
	if eta < 0 {
		eta = 0
	}
	before := t.Disk.Stats()
	res := &QueryResult{Cell: cell, Eta: eta}
	if err := t.vstore.SetCell(cell); err != nil {
		return nil, err
	}
	if err := t.searchNodePrioritized(0, eta, f, res); err != nil {
		return nil, err
	}
	d := t.Disk.Stats().Sub(before)
	res.Stats.LightIO = d.LightReads
	res.Stats.HeavyIO = d.HeavyReads
	res.Stats.SimTime = d.SimTime
	for _, it := range res.Items {
		res.Stats.TotalPolygons += it.Polygons
		res.Stats.TotalBytes += it.Extent.NominalBytes
	}
	return res, nil
}

func (t *Tree) searchNodePrioritized(id NodeID, eta float64, f geom.Frustum, res *QueryResult) error {
	node, err := t.ReadNodeRecord(id)
	if err != nil {
		return err
	}
	res.Stats.NodesVisited++
	vd, ok, err := t.vstore.NodeVD(id)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	// Order entries: frustum-intersecting first, then those whose bulk
	// lies ahead of the viewer (an intersecting box centered behind the
	// eye mostly holds behind-geometry), then nearest first.
	order := make([]int, len(node.Entries))
	for i := range order {
		order[i] = i
	}
	inView := make([]bool, len(node.Entries))
	ahead := make([]bool, len(node.Entries))
	dist := make([]float64, len(node.Entries))
	for i, e := range node.Entries {
		inView[i] = f.IntersectsAABB(e.MBR)
		ahead[i] = e.MBR.Center().Sub(f.Apex).Dot(f.Look) >= 0
		dist[i] = e.MBR.Dist2ToPoint(f.Apex)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if inView[ia] != inView[ib] {
			return inView[ia]
		}
		if ahead[ia] != ahead[ib] {
			return ahead[ia]
		}
		return dist[ia] < dist[ib]
	})
	for _, ei := range order {
		e := node.Entries[ei]
		v := vd[ei]
		if v.DoV <= 0 {
			res.Stats.BranchesCut++
			continue
		}
		if node.Leaf {
			k := LeafDetail(v.DoV)
			lvl := chooseLevel(k, len(t.ObjExtents[e.ObjectID]))
			obj := t.Scene.Object(e.ObjectID)
			res.Items = append(res.Items, ResultItem{
				ObjectID: e.ObjectID, NodeID: NilNode, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: obj.LoDs.PolygonsFor(k),
				Extent:   t.ObjExtents[e.ObjectID][lvl],
			})
			continue
		}
		k := InternalDetail(v.DoV, eta)
		internalPolys := interpolatePolys(e.LoDPolys, k)
		avgObjPolys := 0.0
		if e.DescCount > 0 {
			avgObjPolys = float64(e.DescPolys) / float64(e.DescCount)
		}
		if len(e.LoDRefs) > 0 && v.DoV <= eta && (t.DisableTerminationHeuristic ||
			TerminateHeuristic(internalPolys, avgObjPolys, t.RhoMeasured, v.NVO)) {
			lvl := chooseLevel(k, len(e.LoDRefs))
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1, NodeID: e.ChildID, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			})
			res.Stats.EarlyStops++
			continue
		}
		if err := t.searchNodePrioritized(e.ChildID, eta, f, res); err != nil {
			return err
		}
	}
	return nil
}
