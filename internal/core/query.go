package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cells"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/storage"
)

// ResultItem is one element of a visibility-query answer set: either an
// object LoD (line 5 of Figure 3, equation 6) or an internal LoD of a node
// whose branch the traversal terminated (line 8, equation 5).
type ResultItem struct {
	// ObjectID >= 0 for object items; -1 for internal-LoD items.
	ObjectID int64
	// NodeID >= 0 for internal-LoD items; NilNode for object items.
	NodeID NodeID
	// DoV is the entry's degree of visibility.
	DoV float64
	// Detail is the continuous detail coefficient k of equations 5/6.
	Detail float64
	// Level is the discrete LoD level selected for retrieval.
	Level int
	// Polygons is the interpolated polygon count (the render-cost model
	// input).
	Polygons float64
	// Extent locates the payload of the selected level on disk.
	Extent Extent
}

// IsInternal reports whether the item is an internal LoD.
func (it ResultItem) IsInternal() bool { return it.NodeID != NilNode }

// QueryStats summarizes the cost of one visibility query.
type QueryStats struct {
	NodesVisited  int // node records read (light)
	BranchesCut   int // entries pruned with DoV == 0 (line 3)
	EarlyStops    int // branches answered by an internal LoD (line 8)
	LightIO       int64
	HeavyIO       int64
	Retries       int64 // transient read faults absorbed by the disk
	SimTime       time.Duration
	TotalPolygons float64
	TotalBytes    int64 // nominal payload bytes of the answer set
}

// QueryResult is the answer set of a visibility query.
type QueryResult struct {
	Cell  cells.CellID
	Eta   float64
	Items []ResultItem
	Stats QueryStats
	// Degradations lists the media faults absorbed while answering (empty
	// unless Tree.FaultTolerant and faults fired; see degrade.go).
	Degradations []Degradation

	// substituted dedups internal-LoD stand-ins: when several siblings
	// fail, their shared ancestor's LoD appears in Items once.
	substituted map[NodeID]bool
}

// ErrNoVStore is returned by Query before SetVStore.
var ErrNoVStore = errors.New("core: no storage scheme attached (call SetVStore)")

// QueryContext runs the threshold-based traversal of Figure 3 for the
// given cell and DoV threshold η. It charges light I/O for node records
// and V-pages (via the attached VStore); payload retrieval is separate
// (FetchPayloadsContext) so experiments can account light-weight and
// total I/O independently, as Figures 8(a) and 8(b) do.
//
// The context bounds the traversal: cancellation and deadline expiry are
// observed within one node expansion (and before any further disk read),
// aborting with an error wrapping ctx.Err(). With an installed ShedPolicy
// the query answers at relaxed fidelity, recording CauseShed
// Degradations. With a background context and no policy the behavior —
// and the answer — is byte-identical to Query's.
func (t *Tree) QueryContext(ctx context.Context, cell cells.CellID, eta float64) (*QueryResult, error) {
	if t.vstore == nil {
		return nil, ErrNoVStore
	}
	if eta < 0 {
		eta = 0
	}
	tc, eff, done := t.begin(ctx, eta)
	defer done()
	before := t.statsNow()
	res := t.getResult(cell, eta)
	if err := t.vstore.SetCell(cell); err != nil {
		if !t.rootFallback(res, err, CauseCellFlip) {
			return nil, fmt.Errorf("core: cell flip: %w", err)
		}
	} else if err := t.searchNode(tc, 0, eff, res, nil); err != nil {
		// Only the root's own record/V-page failures reach here; deeper
		// faults are absorbed at their recursion sites.
		if !t.rootFallback(res, err, CauseNodeRecord) {
			return nil, err
		}
	}
	tc.shedMark(res)
	d := t.statsNow().Sub(before)
	res.Stats.LightIO = d.LightReads
	res.Stats.HeavyIO = d.HeavyReads
	res.Stats.Retries = d.Retries
	res.Stats.SimTime = d.SimTime
	for _, it := range res.Items {
		res.Stats.TotalPolygons += it.Polygons
		res.Stats.TotalBytes += it.Extent.NominalBytes
	}
	return res, nil
}

// searchNode is Algorithm Search(Node) of Figure 3. anc is the ancestor
// ladder of internal-LoD sources used by fault-tolerant substitution (nil
// at the root; see degrade.go). tc carries the cancellation checkpoint
// (polled here, once per node expansion) and the shed policy.
//
// hdov:hot-path
func (t *Tree) searchNode(tc travCtx, id NodeID, eta float64, res *QueryResult, anc []lodSource) error {
	if err := tc.err(); err != nil {
		return err
	}
	node, err := t.ReadNodeRecord(id)
	if err != nil {
		return err
	}
	res.Stats.NodesVisited++
	if len(anc) == 0 {
		anc = []lodSource{{node: id, refs: node.InternalExtents, polys: node.InternalPolys}}
	}
	vd, ok, err := t.vstore.NodeVD(id)
	if err != nil {
		return err
	}
	if !ok {
		return nil // whole node invisible in this cell
	}
	if len(vd) < len(node.Entries) {
		return fmt.Errorf("core: node %d has %d entries but V-page has %d", id, len(node.Entries), len(vd))
	}
	if t.parSem != nil && !node.Leaf {
		return t.searchEntriesParallel(tc, node, vd, eta, res, anc)
	}
	for ei, e := range node.Entries {
		v := vd[ei]
		// Line 3: completely hidden branch.
		if v.DoV <= 0 {
			res.Stats.BranchesCut++
			continue
		}
		// Lines 4-5: visible object.
		if node.Leaf {
			k := LeafDetail(v.DoV)
			lvl := chooseLevel(k, len(t.ObjExtents[e.ObjectID]))
			obj := t.Scene.Object(e.ObjectID)
			res.Items = append(res.Items, ResultItem{
				ObjectID: e.ObjectID,
				NodeID:   NilNode,
				DoV:      v.DoV,
				Detail:   k,
				Level:    lvl,
				Polygons: obj.LoDs.PolygonsFor(k),
				Extent:   t.ObjExtents[e.ObjectID][lvl],
			})
			continue
		}
		// Line 7: the equation-5 detail k is computed first because the
		// guard compares costs at the internal-LoD level that would
		// actually be retrieved (see TerminateHeuristic).
		k := InternalDetail(v.DoV, eta)
		internalPolys := interpolatePolys(e.LoDPolys, k)
		avgObjPolys := 0.0
		if e.DescCount > 0 {
			avgObjPolys = float64(e.DescPolys) / float64(e.DescCount)
		}
		if len(e.LoDRefs) > 0 && v.DoV <= eta && (t.DisableTerminationHeuristic ||
			TerminateHeuristic(internalPolys, avgObjPolys, t.RhoMeasured, v.NVO)) {
			// Line 8: answer the branch with the child's internal LoD,
			// whose references are co-located in the entry. (An entry
			// without LoD references — possible only for hand-built
			// trees — falls through to recursion.)
			lvl := chooseLevel(k, len(e.LoDRefs))
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1,
				NodeID:   e.ChildID,
				DoV:      v.DoV,
				Detail:   k,
				Level:    lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			})
			res.Stats.EarlyStops++
			continue
		}
		// Shed truncation: at the policy's depth limit the branch answers
		// with the child's internal LoD even though η says descend —
		// recorded as a CauseShed Degradation, never silent.
		if tc.truncate(len(anc)) && len(e.LoDRefs) > 0 {
			lvl := chooseLevel(k, len(e.LoDRefs))
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1, NodeID: e.ChildID, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			})
			res.Stats.EarlyStops++
			res.Degradations = append(res.Degradations, Degradation{
				Cell: res.Cell, Node: e.ChildID, Object: -1,
				Cause: CauseShed, Page: storage.NilPage,
				SubstituteNode: e.ChildID, SubstituteLevel: lvl,
			})
			continue
		}
		// Line 10: recurse. The child's internal-LoD references (already
		// in hand from this entry) extend the substitution ladder.
		childAnc := append(anc, lodSource{node: e.ChildID, refs: e.LoDRefs, polys: e.LoDPolys})
		if err := t.searchNode(tc, e.ChildID, eta, res, childAnc); err != nil {
			cause, page, ok := t.absorbFault(err, e.ChildID)
			if !ok {
				return err
			}
			t.substitute(res, childAnc, e.ChildID, v.DoV, k, cause, page)
		}
	}
	return nil
}

// entryPlan is the per-entry outcome of the planning pass of a parallel
// fan-out: pruned, answered by an early-stop internal LoD, or descended
// into a child subtree whose sub-result merges back in entry order.
type entryPlan struct {
	cut      bool
	item     ResultItem // early-stop item (line 8 of Figure 3)
	hasItem  bool
	recurse  bool
	childAnc []lodSource
	dov, k   float64
	sub      *QueryResult
	err      error
}

// searchEntriesParallel is the bounded-fan-out form of the entry loop of
// searchNode for internal nodes. A planning pass makes the per-entry
// decisions (which need only the already-read node record and V-page),
// then child descents run on up to Parallel workers, then sub-results
// merge serially in entry index order — so the answer set, degradation
// events, and traversal stats are identical to the serial traversal's.
//
// hdov:hot-path
func (t *Tree) searchEntriesParallel(tc travCtx, node *Node, vd []VD, eta float64, res *QueryResult, anc []lodSource) error {
	plans := make([]entryPlan, len(node.Entries))
	for ei, e := range node.Entries {
		v := vd[ei]
		p := &plans[ei]
		if v.DoV <= 0 {
			p.cut = true
			res.Stats.BranchesCut++
			continue
		}
		k := InternalDetail(v.DoV, eta)
		internalPolys := interpolatePolys(e.LoDPolys, k)
		avgObjPolys := 0.0
		if e.DescCount > 0 {
			avgObjPolys = float64(e.DescPolys) / float64(e.DescCount)
		}
		if len(e.LoDRefs) > 0 && v.DoV <= eta && (t.DisableTerminationHeuristic ||
			TerminateHeuristic(internalPolys, avgObjPolys, t.RhoMeasured, v.NVO)) {
			lvl := chooseLevel(k, len(e.LoDRefs))
			p.item = ResultItem{
				ObjectID: -1, NodeID: e.ChildID, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			}
			p.hasItem = true
			res.Stats.EarlyStops++
			continue
		}
		// Shed truncation, mirroring the serial loop (the planning pass
		// runs on one goroutine, so the Degradation order is stable).
		if tc.truncate(len(anc)) && len(e.LoDRefs) > 0 {
			lvl := chooseLevel(k, len(e.LoDRefs))
			p.item = ResultItem{
				ObjectID: -1, NodeID: e.ChildID, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			}
			p.hasItem = true
			res.Stats.EarlyStops++
			res.Degradations = append(res.Degradations, Degradation{
				Cell: res.Cell, Node: e.ChildID, Object: -1,
				Cause: CauseShed, Page: storage.NilPage,
				SubstituteNode: e.ChildID, SubstituteLevel: lvl,
			})
			continue
		}
		p.recurse = true
		p.dov, p.k = v.DoV, k
		// The three-index slice caps capacity so concurrent appends cannot
		// alias one backing array across sibling subtrees.
		p.childAnc = append(anc[:len(anc):len(anc)],
			lodSource{node: e.ChildID, refs: e.LoDRefs, polys: e.LoDPolys})
		p.sub = t.getResult(res.Cell, res.Eta)
	}
	// Fan out: claim a worker slot per descent, or descend inline on this
	// goroutine when all slots are busy (which also bounds recursion depth
	// of waiters — no goroutine ever blocks holding work).
	var wg sync.WaitGroup
	for i := range plans {
		p := &plans[i]
		if !p.recurse {
			continue
		}
		child := node.Entries[i].ChildID
		select {
		case t.parSem <- struct{}{}:
			wg.Add(1)
			//lint:ignore hotalloc one closure per claimed worker slot, amortized by the page reads the descent performs
			go func(p *entryPlan, child NodeID) {
				defer wg.Done()
				defer func() { <-t.parSem }()
				p.err = t.searchNode(tc, child, eta, p.sub, p.childAnc)
			}(p, child)
		default:
			p.err = t.searchNode(tc, child, eta, p.sub, p.childAnc)
		}
	}
	wg.Wait()
	// Merge in entry index order; fault absorption runs here, on one
	// goroutine, so quarantine marks and substitutions land in the same
	// order a serial traversal would produce.
	for i := range plans {
		p := &plans[i]
		if p.hasItem {
			res.Items = append(res.Items, p.item)
			continue
		}
		if !p.recurse {
			continue
		}
		if p.err != nil {
			cause, page, ok := t.absorbFault(p.err, node.Entries[i].ChildID)
			if !ok {
				return p.err
			}
			t.substitute(res, p.childAnc, node.Entries[i].ChildID, p.dov, p.k, cause, page)
			t.Recycle(p.sub)
			continue
		}
		res.absorb(p.sub)
		t.Recycle(p.sub)
	}
	return nil
}

// absorb merges a completed subtree sub-result into res: items and
// degradations append in order, traversal stats sum, and internal-LoD
// substitution stand-ins dedup against the substitutions already merged —
// exactly the answer the serial traversal builds in place.
func (res *QueryResult) absorb(sub *QueryResult) {
	for _, it := range sub.Items {
		if it.IsInternal() && sub.substituted[it.NodeID] {
			if res.substituted[it.NodeID] {
				continue
			}
			if res.substituted == nil {
				res.substituted = make(map[NodeID]bool)
			}
			res.substituted[it.NodeID] = true
		}
		res.Items = append(res.Items, it)
	}
	res.Stats.NodesVisited += sub.Stats.NodesVisited
	res.Stats.BranchesCut += sub.Stats.BranchesCut
	res.Stats.EarlyStops += sub.Stats.EarlyStops
	res.Degradations = append(res.Degradations, sub.Degradations...)
}

// chooseLevel maps a continuous detail k in [0,1] (1 = finest) to a
// discrete level index among n levels, mirroring mesh.LoDChain.LevelFor.
func chooseLevel(k float64, n int) int {
	if n <= 1 {
		return 0
	}
	if k >= 1 {
		return 0
	}
	if k <= 0 {
		return n - 1
	}
	idx := int((1 - k) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// interpolatePolys evaluates the equation-5 polygon interpolation between
// the finest and coarsest internal LoD levels.
func interpolatePolys(polys []int, k float64) float64 {
	if len(polys) == 0 {
		return 0
	}
	hi := float64(polys[0])
	lo := float64(polys[len(polys)-1])
	if k >= 1 {
		return hi
	}
	if k <= 0 {
		return lo
	}
	return k*hi + (1-k)*lo
}

// FetchPayloadsContext charges the heavy-weight I/O of retrieving every
// item's payload extent, skipping items for which skip returns true (the
// delta search of §5.4 passes a cache-hit predicate). It returns the
// number of items actually fetched. The context is checked before each
// item's extent read; an expired deadline aborts with the items fetched
// so far counted.
func (t *Tree) FetchPayloadsContext(ctx context.Context, res *QueryResult, skip func(ResultItem) bool) (int, error) {
	tc, _, done := t.begin(ctx, 0)
	defer done()
	fetched := 0
	for i := range res.Items {
		if err := tc.err(); err != nil {
			return fetched, err
		}
		it := res.Items[i]
		if skip != nil && skip(it) {
			continue
		}
		ext := it.Extent
		err := t.reader().ReadExtent(ext.Start, ext.Pages(t.Disk), storage.ClassHeavy)
		if err == nil {
			fetched++
			continue
		}
		if !t.FaultTolerant || !degradable(err) {
			return fetched, err
		}
		if n, ok := t.degradePayload(res, i); ok {
			fetched += n
		}
	}
	return fetched, nil
}

// degradePayload handles a media fault on res.Items[i]'s extent: the
// failing pages are quarantined, a sibling LoD level of the same object or
// node stands in (coarser preferred), the item is rewritten to the level
// actually fetched, and a CausePayload Degradation is recorded. Returns
// the number of extents fetched (0 when no level was readable — the item's
// geometry is simply absent from the frame).
func (t *Tree) degradePayload(res *QueryResult, i int) (int, bool) {
	it := res.Items[i]
	deg := Degradation{
		Cell: res.Cell, Node: it.NodeID, Object: it.ObjectID,
		Cause: CausePayload, Page: storage.NilPage,
		SubstituteNode: NilNode, SubstituteLevel: -1,
	}
	// Quarantine the failing pages so later frames skip the seek.
	for p, n := 0, it.Extent.Pages(t.Disk); p < n; p++ {
		t.Disk.Quarantine(it.Extent.Start + storage.PageID(p))
	}
	deg.Page = it.Extent.Start
	var refs []Extent
	var polys []int
	if it.ObjectID >= 0 && int(it.ObjectID) < len(t.ObjExtents) {
		refs = t.ObjExtents[it.ObjectID]
	} else if it.NodeID != NilNode && int(it.NodeID) < len(t.Nodes) {
		refs = t.Nodes[it.NodeID].InternalExtents
		polys = t.Nodes[it.NodeID].InternalPolys
	}
	// Prefer the coarser neighbors of the lost level, then finer ones.
	lvl, ok := t.pickReadableLevel(refs, it.Level+1)
	if ok {
		ext := refs[lvl]
		if err := t.reader().ReadExtent(ext.Start, ext.Pages(t.Disk), storage.ClassHeavy); err == nil {
			res.Items[i].Level = lvl
			res.Items[i].Extent = ext
			if lvl < len(polys) {
				res.Items[i].Polygons = float64(polys[lvl])
			}
			if it.NodeID != NilNode {
				deg.SubstituteNode = it.NodeID
			}
			deg.SubstituteLevel = lvl
			res.Degradations = append(res.Degradations, deg)
			return 1, true
		}
		// The fallback level failed too (fresh fault): quarantine it and
		// give up on this item rather than looping.
		for p, n := 0, ext.Pages(t.Disk); p < n; p++ {
			t.Disk.Quarantine(ext.Start + storage.PageID(p))
		}
	}
	res.Degradations = append(res.Degradations, deg)
	return 0, true
}

// LoadMesh decodes the actual mesh payload of a result item (the real
// bytes prefix of its extent), charging heavy I/O for the full nominal
// extent. Examples and the fidelity renderer use this.
func (t *Tree) LoadMesh(it ResultItem) (*mesh.Mesh, error) {
	buf, err := t.reader().ReadBytes(it.Extent.Start, int(it.Extent.RealBytes), storage.ClassHeavy)
	if err != nil {
		return nil, err
	}
	return mesh.Decode(buf)
}

// QueryPrioritizedContext is the DESIGN.md D5 extension (the paper's §6
// future work): identical answer set to QueryContext, but branches
// intersecting the view frustum are traversed first so the renderer
// receives in-view geometry earliest. The result carries, per item, the
// prefix position at which it became available; tests measure
// time-to-first-in-view-item. Context and shed semantics match
// QueryContext's.
func (t *Tree) QueryPrioritizedContext(ctx context.Context, cell cells.CellID, eta float64, f geom.Frustum) (*QueryResult, error) {
	if t.vstore == nil {
		return nil, ErrNoVStore
	}
	if eta < 0 {
		eta = 0
	}
	tc, eff, done := t.begin(ctx, eta)
	defer done()
	before := t.statsNow()
	res := &QueryResult{Cell: cell, Eta: eta}
	if err := t.vstore.SetCell(cell); err != nil {
		if !t.rootFallback(res, err, CauseCellFlip) {
			return nil, err
		}
	} else if err := t.searchNodePrioritized(tc, 0, eff, f, res, nil); err != nil {
		if !t.rootFallback(res, err, CauseNodeRecord) {
			return nil, err
		}
	}
	tc.shedMark(res)
	d := t.statsNow().Sub(before)
	res.Stats.LightIO = d.LightReads
	res.Stats.HeavyIO = d.HeavyReads
	res.Stats.Retries = d.Retries
	res.Stats.SimTime = d.SimTime
	for _, it := range res.Items {
		res.Stats.TotalPolygons += it.Polygons
		res.Stats.TotalBytes += it.Extent.NominalBytes
	}
	return res, nil
}

// searchNodePrioritized is searchNode with a frustum-driven visit order
// (see QueryPrioritizedContext); the answer set is identical, only the
// emission order differs.
//
// hdov:hot-path
func (t *Tree) searchNodePrioritized(tc travCtx, id NodeID, eta float64, f geom.Frustum, res *QueryResult, anc []lodSource) error {
	if err := tc.err(); err != nil {
		return err
	}
	node, err := t.ReadNodeRecord(id)
	if err != nil {
		return err
	}
	res.Stats.NodesVisited++
	if len(anc) == 0 {
		anc = []lodSource{{node: id, refs: node.InternalExtents, polys: node.InternalPolys}}
	}
	vd, ok, err := t.vstore.NodeVD(id)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	// Order entries: frustum-intersecting first, then those whose bulk
	// lies ahead of the viewer (an intersecting box centered behind the
	// eye mostly holds behind-geometry), then nearest first.
	order := make([]int, len(node.Entries))
	for i := range order {
		order[i] = i
	}
	inView := make([]bool, len(node.Entries))
	ahead := make([]bool, len(node.Entries))
	dist := make([]float64, len(node.Entries))
	for i, e := range node.Entries {
		inView[i] = f.IntersectsAABB(e.MBR)
		ahead[i] = e.MBR.Center().Sub(f.Apex).Dot(f.Look) >= 0
		dist[i] = e.MBR.Dist2ToPoint(f.Apex)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if inView[ia] != inView[ib] {
			return inView[ia]
		}
		if ahead[ia] != ahead[ib] {
			return ahead[ia]
		}
		return dist[ia] < dist[ib]
	})
	for _, ei := range order {
		e := node.Entries[ei]
		v := vd[ei]
		if v.DoV <= 0 {
			res.Stats.BranchesCut++
			continue
		}
		if node.Leaf {
			k := LeafDetail(v.DoV)
			lvl := chooseLevel(k, len(t.ObjExtents[e.ObjectID]))
			obj := t.Scene.Object(e.ObjectID)
			res.Items = append(res.Items, ResultItem{
				ObjectID: e.ObjectID, NodeID: NilNode, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: obj.LoDs.PolygonsFor(k),
				Extent:   t.ObjExtents[e.ObjectID][lvl],
			})
			continue
		}
		k := InternalDetail(v.DoV, eta)
		internalPolys := interpolatePolys(e.LoDPolys, k)
		avgObjPolys := 0.0
		if e.DescCount > 0 {
			avgObjPolys = float64(e.DescPolys) / float64(e.DescCount)
		}
		if len(e.LoDRefs) > 0 && v.DoV <= eta && (t.DisableTerminationHeuristic ||
			TerminateHeuristic(internalPolys, avgObjPolys, t.RhoMeasured, v.NVO)) {
			lvl := chooseLevel(k, len(e.LoDRefs))
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1, NodeID: e.ChildID, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			})
			res.Stats.EarlyStops++
			continue
		}
		if tc.truncate(len(anc)) && len(e.LoDRefs) > 0 {
			lvl := chooseLevel(k, len(e.LoDRefs))
			res.Items = append(res.Items, ResultItem{
				ObjectID: -1, NodeID: e.ChildID, DoV: v.DoV,
				Detail: k, Level: lvl,
				Polygons: interpolatePolys(e.LoDPolys, k),
				Extent:   e.LoDRefs[lvl],
			})
			res.Stats.EarlyStops++
			res.Degradations = append(res.Degradations, Degradation{
				Cell: res.Cell, Node: e.ChildID, Object: -1,
				Cause: CauseShed, Page: storage.NilPage,
				SubstituteNode: e.ChildID, SubstituteLevel: lvl,
			})
			continue
		}
		childAnc := append(anc, lodSource{node: e.ChildID, refs: e.LoDRefs, polys: e.LoDPolys})
		if err := t.searchNodePrioritized(tc, e.ChildID, eta, f, res, childAnc); err != nil {
			cause, page, ok := t.absorbFault(err, e.ChildID)
			if !ok {
				return err
			}
			t.substitute(res, childAnc, e.ChildID, v.DoV, k, cause, page)
		}
	}
	return nil
}
