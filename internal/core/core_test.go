package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/scene"
	"repro/internal/storage"
)

var (
	fixOnce sync.Once
	fixTree *Tree
	fixVis  *VisData
)

// fixture builds one small city HDoV-tree shared by the package's tests.
func fixture(t *testing.T) (*Tree, *VisData) {
	t.Helper()
	fixOnce.Do(func() {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 2, 2
		p.BuildingsPerBlock = 4
		p.BlobsPerBlock = 2
		p.BlobDetail = 8
		p.NominalBytes = 32 << 20
		sc := scene.Generate(p)
		d := storage.NewDisk(0, storage.DefaultCostModel())
		bp := DefaultBuildParams()
		bp.Grid = cells.NewGrid(sc.ViewRegion, 4, 4)
		bp.DirsPerViewpoint = 512
		bp.SamplesPerCell = 1
		tr, vis, err := Build(sc, d, bp)
		if err != nil {
			panic(err)
		}
		fixTree, fixVis = tr, vis
	})
	if fixTree == nil {
		t.Fatal("fixture failed")
	}
	return fixTree, fixVis
}

func TestBuildStructure(t *testing.T) {
	tr, _ := fixture(t)
	if tr.NumNodes() < 3 {
		t.Fatalf("only %d nodes", tr.NumNodes())
	}
	root := tr.Root()
	if root.ID != 0 || root.Leaf {
		t.Fatal("root malformed")
	}
	if root.LeafDescendants != len(tr.Scene.Objects) {
		t.Fatalf("root leaf descendants %d, want %d", root.LeafDescendants, len(tr.Scene.Objects))
	}
	// DFS preorder: children have higher IDs than parents; heights
	// decrease down the tree; balanced leaves.
	for _, n := range tr.Nodes {
		if n.Leaf {
			if n.SubtreeHeight != 0 {
				t.Fatalf("leaf %d has height %d", n.ID, n.SubtreeHeight)
			}
			if len(n.Entries) != n.LeafDescendants {
				t.Fatalf("leaf %d entries %d != descendants %d", n.ID, len(n.Entries), n.LeafDescendants)
			}
			continue
		}
		sum := 0
		for _, e := range n.Entries {
			if e.ChildID <= n.ID {
				t.Fatalf("node %d has child %d not in preorder", n.ID, e.ChildID)
			}
			c := tr.Nodes[e.ChildID]
			if c.SubtreeHeight != n.SubtreeHeight-1 {
				t.Fatalf("node %d height %d, child %d height %d (unbalanced)",
					n.ID, n.SubtreeHeight, c.ID, c.SubtreeHeight)
			}
			sum += c.LeafDescendants
		}
		if sum != n.LeafDescendants {
			t.Fatalf("node %d descendants %d != children sum %d", n.ID, n.LeafDescendants, sum)
		}
	}
}

func TestBuildInternalLoDs(t *testing.T) {
	tr, _ := fixture(t)
	if tr.SMeasured <= 0 || tr.SMeasured >= 1 {
		t.Fatalf("measured s = %v, want (0,1)", tr.SMeasured)
	}
	for _, n := range tr.Nodes {
		if n.InternalLoD == nil {
			t.Fatalf("node %d has no internal LoD", n.ID)
		}
		if err := n.InternalLoD.Validate(); err != nil {
			t.Fatalf("node %d: %v", n.ID, err)
		}
		if len(n.InternalExtents) != n.InternalLoD.NumLevels() {
			t.Fatalf("node %d extents/levels mismatch", n.ID)
		}
		for li, ex := range n.InternalExtents {
			if ex.NominalBytes < ex.RealBytes || ex.RealBytes <= 0 {
				t.Fatalf("node %d level %d extent %+v malformed", n.ID, li, ex)
			}
			if n.InternalPolys[li] != n.InternalLoD.Levels[li].NumTriangles() {
				t.Fatalf("node %d level %d poly count mismatch", n.ID, li)
			}
		}
	}
	// The root's internal LoD must be far coarser than the scene.
	rootPolys := tr.Root().InternalPolys[0]
	if rootPolys >= tr.Scene.TotalTriangles()/2 {
		t.Fatalf("root internal LoD has %d polys of %d total", rootPolys, tr.Scene.TotalTriangles())
	}
}

func TestNodeRecordRoundTrip(t *testing.T) {
	tr, _ := fixture(t)
	for _, n := range tr.Nodes {
		got, err := DecodeNodeRecord(n.EncodeRecord())
		if err != nil {
			t.Fatalf("node %d: %v", n.ID, err)
		}
		if got.ID != n.ID || got.Leaf != n.Leaf ||
			got.SubtreeHeight != n.SubtreeHeight ||
			got.LeafDescendants != n.LeafDescendants ||
			len(got.Entries) != len(n.Entries) {
			t.Fatalf("node %d header mismatch", n.ID)
		}
		for i := range n.Entries {
			a, b := got.Entries[i], n.Entries[i]
			if a.MBR != b.MBR || a.ChildID != b.ChildID || a.ObjectID != b.ObjectID {
				t.Fatalf("node %d entry %d mismatch", n.ID, i)
			}
			if len(a.LoDRefs) != len(b.LoDRefs) {
				t.Fatalf("node %d entry %d LoD ref count mismatch", n.ID, i)
			}
			for j := range b.LoDRefs {
				if a.LoDRefs[j] != b.LoDRefs[j] || a.LoDPolys[j] != b.LoDPolys[j] {
					t.Fatalf("node %d entry %d LoD ref %d mismatch", n.ID, i, j)
				}
			}
		}
		for i := range n.InternalExtents {
			if got.InternalExtents[i] != n.InternalExtents[i] ||
				got.InternalPolys[i] != n.InternalPolys[i] {
				t.Fatalf("node %d LoD ref %d mismatch", n.ID, i)
			}
		}
	}
}

func TestNodeRecordDecodeErrors(t *testing.T) {
	tr, _ := fixture(t)
	buf := tr.Root().EncodeRecord()
	if _, err := DecodeNodeRecord(buf[:4]); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := DecodeNodeRecord(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated record accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff
	if _, err := DecodeNodeRecord(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadNodeRecordFromDisk(t *testing.T) {
	tr, _ := fixture(t)
	before := tr.Disk.Stats()
	n, err := tr.ReadNodeRecord(0)
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 0 || len(n.Entries) != len(tr.Root().Entries) {
		t.Fatal("disk root mismatch")
	}
	d := tr.Disk.Stats().Sub(before)
	if d.LightReads != int64(tr.NodeStride()) {
		t.Fatalf("node read charged %d light pages, want %d", d.LightReads, tr.NodeStride())
	}
	if d.HeavyReads != 0 {
		t.Fatal("node read charged heavy I/O")
	}
	if _, err := tr.ReadNodeRecord(NodeID(tr.NumNodes())); err == nil {
		t.Fatal("out-of-range node read accepted")
	}
}

func TestVisDataInvariants(t *testing.T) {
	tr, vis := fixture(t)
	if len(vis.PerCell) != tr.Grid.NumCells() {
		t.Fatalf("vis has %d cells, want %d", len(vis.PerCell), tr.Grid.NumCells())
	}
	if err := tr.CheckVisDataInvariants(vis); err != nil {
		t.Fatal(err)
	}
	// The eye is inside the city: something must be visible everywhere.
	for cell, perNode := range vis.PerCell {
		if perNode[0] == nil {
			t.Fatalf("cell %d: root invisible", cell)
		}
	}
	// N_vnode bound of equation 7: N_vnode <= N_vobj * levels.
	for cell, perNode := range vis.PerCell {
		var nvobj int32
		for _, v := range perNode[0] {
			nvobj += v.NVO
		}
		levels := tr.Root().SubtreeHeight + 1
		if got := vis.VisibleNodes(cell); got > int(nvobj)*levels {
			t.Fatalf("cell %d: N_vnode %d > N_vobj %d * levels %d", cell, got, nvobj, levels)
		}
	}
	if vis.AvgVisibleNodes() <= 0 {
		t.Fatal("average visible nodes zero")
	}
}

func TestLeafAndInternalDetail(t *testing.T) {
	if LeafDetail(0.5) != 1 || LeafDetail(1) != 1 {
		t.Fatal("LeafDetail cap broken")
	}
	if got := LeafDetail(0.25); got != 0.5 {
		t.Fatalf("LeafDetail(0.25) = %v", got)
	}
	if InternalDetail(0.001, 0.002) != 0.5 {
		t.Fatal("InternalDetail ratio broken")
	}
	if InternalDetail(0.01, 0.002) != 1 {
		t.Fatal("InternalDetail cap broken")
	}
	if InternalDetail(0.5, 0) != 1 {
		t.Fatal("InternalDetail zero-eta guard broken")
	}
}

func TestTerminateHeuristic(t *testing.T) {
	// Measured equation-3 guard: terminate iff internalPolys < nvo*rho*f.
	if !TerminateHeuristic(100, 50, 1, 3) { // 100 < 150
		t.Fatal("cheap internal LoD should terminate")
	}
	if TerminateHeuristic(100, 50, 1, 2) { // 100 !< 100
		t.Fatal("equal cost should not terminate")
	}
	// rho scales the visible side down (coarse retrieval).
	if TerminateHeuristic(100, 50, 0.25, 3) { // 100 !< 37.5
		t.Fatal("rho should make termination harder")
	}
	if !TerminateHeuristic(100, 50, 0.25, 9) { // 100 < 112.5
		t.Fatal("many visible objects should overcome rho")
	}
	// Degenerate inputs never terminate.
	if TerminateHeuristic(100, 50, 1, 0) || TerminateHeuristic(0, 50, 1, 5) ||
		TerminateHeuristic(100, 0, 1, 5) {
		t.Fatal("degenerate inputs should not terminate")
	}
	// Out-of-range rho falls back to 1.
	if TerminateHeuristic(100, 50, -3, 3) != TerminateHeuristic(100, 50, 1, 3) {
		t.Fatal("invalid rho fallback broken")
	}
}

func TestHeuristicMatchesEquation4(t *testing.T) {
	// When the internal LoD obeys the paper's m*f*s^h model exactly and
	// rho = 1, the measured guard reproduces equation 4's decision:
	// h(1 + log_M s) < log_M n  <=>  m*f*s^h < f*n with m = M^h.
	M := 8
	s := 0.4
	f := 100.0
	for h := 1; h <= 3; h++ {
		m := 1
		for i := 0; i < h; i++ {
			m *= M
		}
		internal := EstimatedInternalPolys(m, f, s, h)
		for _, nvo := range []int32{1, 2, 5, 10, 11, 50, 100, 500} {
			lhs := float64(h) * (1 + math.Log(s)/math.Log(float64(M)))
			rhs := math.Log(float64(nvo)) / math.Log(float64(M))
			want := lhs < rhs
			got := TerminateHeuristic(internal, f, 1, nvo)
			if got != want {
				t.Fatalf("h=%d nvo=%d: measured %v, equation 4 %v", h, nvo, got, want)
			}
		}
	}
	if EstimatedInternalPolys(8, 100, 0.5, 0) != EstimatedInternalPolys(8, 100, 0.5, 1) {
		t.Fatal("h clamp broken")
	}
}

func TestChooseLevel(t *testing.T) {
	if chooseLevel(1, 4) != 0 || chooseLevel(0.99, 4) != 0 {
		t.Fatal("high detail should pick level 0")
	}
	if chooseLevel(0, 4) != 3 || chooseLevel(-1, 4) != 3 {
		t.Fatal("low detail should pick last level")
	}
	if chooseLevel(0.5, 1) != 0 {
		t.Fatal("single level must be 0")
	}
	prev := 4
	for k := 0.0; k <= 1.0; k += 0.01 {
		l := chooseLevel(k, 4)
		if l > prev {
			t.Fatalf("chooseLevel not monotone at k=%v", k)
		}
		prev = l
	}
}

func TestInterpolatePolys(t *testing.T) {
	polys := []int{1000, 400, 100}
	if got := interpolatePolys(polys, 1); got != 1000 {
		t.Fatalf("k=1: %v", got)
	}
	if got := interpolatePolys(polys, 0); got != 100 {
		t.Fatalf("k=0: %v", got)
	}
	if got := interpolatePolys(polys, 0.5); got != 550 {
		t.Fatalf("k=0.5: %v", got)
	}
	if got := interpolatePolys(nil, 0.5); got != 0 {
		t.Fatalf("empty: %v", got)
	}
}

func TestQueryWithoutVStore(t *testing.T) {
	tr, _ := fixture(t)
	saved := tr.VStoreScheme()
	tr.SetVStore(nil)
	defer tr.SetVStore(saved)
	if _, err := tr.Query(0, 0.001); err != ErrNoVStore {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildWithItemBufferBackend(t *testing.T) {
	// Building with the rasterizing DoV backend must produce a visibility
	// field close to the ray-cast one: identical structure, DoV values
	// within discretization error, and the same §3.2 invariants.
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 2, 2
	p.BuildingsPerBlock = 3
	p.BlobsPerBlock = 1
	p.BlobDetail = 8
	p.NominalBytes = 0
	sc := scene.Generate(p)

	build := func(itemBuffer bool) (*Tree, *VisData) {
		d := storage.NewDisk(0, storage.DefaultCostModel())
		bp := DefaultBuildParams()
		bp.Grid = cells.NewGrid(sc.ViewRegion, 3, 3)
		bp.DirsPerViewpoint = 4096
		bp.SamplesPerCell = 1
		bp.UseItemBuffer = itemBuffer
		bp.ItemBufferRes = 96
		tr, vis, err := Build(sc, d, bp)
		if err != nil {
			t.Fatal(err)
		}
		return tr, vis
	}
	trRays, visRays := build(false)
	trIB, visIB := build(true)

	if err := trIB.CheckVisDataInvariants(visIB); err != nil {
		t.Fatal(err)
	}
	if trRays.NumNodes() != trIB.NumNodes() {
		t.Fatal("backends changed the tree")
	}
	// Compare root-entry DoV sums per cell (total visible mass).
	for c := 0; c < trRays.Grid.NumCells(); c++ {
		var a, b float64
		for _, v := range visRays.PerCell[cells.CellID(c)][0] {
			a += v.DoV
		}
		for _, v := range visIB.PerCell[cells.CellID(c)][0] {
			b += v.DoV
		}
		if diff := a - b; diff > 0.05 || diff < -0.05 {
			t.Fatalf("cell %d: ray mass %v vs item-buffer mass %v", c, a, b)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	d := storage.NewDisk(0, storage.DefaultCostModel())
	if _, _, err := Build(nil, d, DefaultBuildParams()); err == nil {
		t.Fatal("nil scene accepted")
	}
	if _, _, err := Build(&scene.Scene{}, d, DefaultBuildParams()); err == nil {
		t.Fatal("empty scene accepted")
	}
	sc := scene.Generate(func() scene.CityParams {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 1, 1
		p.BuildingsPerBlock = 2
		p.BlobsPerBlock = 0
		p.NominalBytes = 0
		return p
	}())
	if _, _, err := Build(sc, nil, DefaultBuildParams()); err == nil {
		t.Fatal("nil disk accepted")
	}
}
