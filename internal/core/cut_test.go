package core_test

// Differential suite for frame-coherent incremental traversal
// (QueryCoherent): along a walkthrough path the incremental cut must
// answer byte-identically to a from-root Query — per scheme, serial and
// parallel, degraded mode included — while actually reusing retained
// state on the warm path.

import (
	"fmt"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
)

// snakeWalk visits every cell of the grid in boustrophedon row order, so
// each step moves to an adjacent cell — the workload the cut is for.
func snakeWalk(tr *core.Tree) []cells.CellID {
	w, h := tr.Grid.NX, tr.Grid.NY
	var walk []cells.CellID
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			c := col
			if row%2 == 1 {
				c = w - 1 - col
			}
			walk = append(walk, cells.CellID(row*w+c))
		}
	}
	return walk
}

// assertCoherentAgreesWithFull walks the snake path on two fresh sessions
// of the current scheme — one full, one coherent — and asserts every
// answer matches byte for byte.
func assertCoherentAgreesWithFull(t *testing.T, e *diffEnv, walk []cells.CellID, eta float64) *core.Tree {
	t.Helper()
	refSess := e.tree.Session()
	cohSess := e.tree.Session()
	for i, cell := range walk {
		ref, err := refSess.Query(cell, eta)
		if err != nil {
			t.Fatalf("full query step %d cell %d: %v", i, cell, err)
		}
		got, err := cohSess.QueryCoherent(cell, eta)
		if err != nil {
			t.Fatalf("coherent query step %d cell %d: %v", i, cell, err)
		}
		if canon(got) != canon(ref) {
			t.Fatalf("step %d cell %d eta %g: coherent result diverged:\n%s\nvs full\n%s",
				i, cell, eta, canon(got), canon(ref))
		}
		refSess.Recycle(ref)
		cohSess.Recycle(got)
	}
	return cohSess
}

// TestCutDifferential: all three schemes × all etas × serial and parallel
// traversal. Byte-identity is the contract; on the fault-free path the
// warm queries must also actually run incrementally and reuse records.
func TestCutDifferential(t *testing.T) {
	e := diffFixture(t)
	walk := snakeWalk(e.tree)
	for _, parallel := range []int{1, 4} {
		e.tree.SetParallel(parallel)
		for _, s := range e.schemes {
			e.tree.SetVStore(s.vs)
			for _, eta := range diffEtas {
				name := fmt.Sprintf("%s/par%d/eta%g", s.name, parallel, eta)
				t.Run(name, func(t *testing.T) {
					sess := assertCoherentAgreesWithFull(t, e, walk, eta)
					cs := sess.CoherenceStats()
					if cs.Full != 0 {
						t.Fatalf("fault-free walk fell back to full traversal %d times", cs.Full)
					}
					if cs.Incremental != int64(len(walk)) {
						t.Fatalf("Incremental = %d, want %d", cs.Incremental, len(walk))
					}
					if cs.NodesReused == 0 {
						t.Fatal("warm walk reused no node records — the cut is not retaining anything")
					}
				})
			}
		}
	}
	e.tree.SetParallel(1)
}

// TestCutDifferentialDegradations: with a corrupted node record and fault
// tolerance on, the coherent path must fall back to full traversal and
// reproduce its absorbed Degradations exactly, for every scheme.
func TestCutDifferentialDegradations(t *testing.T) {
	e := diffFixture(t)
	walk := snakeWalk(e.tree)

	child := e.tree.Root().Entries[0].ChildID
	page := e.tree.NodePage(child)
	e.disk.CorruptPage(page)
	e.tree.FaultTolerant = true
	defer func() {
		e.tree.FaultTolerant = false
		e.disk.HealPage(page)
		e.disk.ClearQuarantine()
	}()

	for _, s := range e.schemes {
		e.tree.SetVStore(s.vs)
		t.Run(s.name, func(t *testing.T) {
			sess := assertCoherentAgreesWithFull(t, e, walk, 0.001)
			cs := sess.CoherenceStats()
			if cs.Full == 0 {
				t.Fatal("corrupted record never forced a full-traversal fallback")
			}
		})
	}
}

// TestCutQuarantineReexpansionFallback is the satellite scenario: a page
// quarantined *after* the cut cached its record must not be served stale.
// The next coherent query must detect the quarantine, fall back to a full
// traversal, and emit that traversal's degraded answer — byte-identical
// to a fresh session's.
func TestCutQuarantineReexpansionFallback(t *testing.T) {
	e := diffFixture(t)
	e.tree.FaultTolerant = true
	defer func() {
		e.tree.FaultTolerant = false
		e.disk.ClearQuarantine()
	}()

	// The root's record is always interior to the cut, so quarantining it
	// is guaranteed to hit the retained-record path on the next query.
	page := e.tree.NodePage(0)
	eta := 0.001

	for _, s := range e.schemes {
		e.tree.SetVStore(s.vs)
		t.Run(s.name, func(t *testing.T) {
			e.disk.ClearQuarantine()
			sess := e.tree.Session()
			// Healthy warm-up: cell 0 builds the cut, cell 1 proves it.
			for _, cell := range []cells.CellID{0, 1} {
				if _, err := sess.QueryCoherent(cell, eta); err != nil {
					t.Fatal(err)
				}
			}
			warm := sess.CoherenceStats()
			if warm.Full != 0 || warm.NodesReused == 0 {
				t.Fatalf("warm-up did not run incrementally: %+v", warm)
			}

			// The record is now cached inside the cut. Quarantine it, as
			// hdovfsck -repair would after finding damage.
			e.disk.Quarantine(page)

			got, err := sess.QueryCoherent(2, eta)
			if err != nil {
				t.Fatal(err)
			}
			cs := sess.CoherenceStats()
			if cs.Full != 1 {
				t.Fatalf("quarantined record did not force exactly one full fallback: %+v", cs)
			}
			if len(got.Degradations) == 0 {
				t.Fatal("fallback query absorbed no degradation for the quarantined record")
			}
			ref, err := e.tree.Session().Query(2, eta)
			if err != nil {
				t.Fatal(err)
			}
			if canon(got) != canon(ref) {
				t.Fatalf("fallback result differs from fresh full traversal:\n%s\nvs\n%s",
					canon(got), canon(ref))
			}
		})
	}
}

// TestCutEtaChangeRebuilds: changing η mid-session must rebuild the cut,
// not re-evaluate a frontier computed for a different threshold.
func TestCutEtaChangeRebuilds(t *testing.T) {
	e := diffFixture(t)
	e.tree.SetVStore(e.schemes[2].vs)
	sess := e.tree.Session()
	ref := e.tree.Session()
	for i, q := range []struct {
		cell cells.CellID
		eta  float64
	}{{0, 0.001}, {1, 0.001}, {2, 0.008}, {3, 0.008}, {3, 0.001}} {
		want, err := ref.Query(q.cell, q.eta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.QueryCoherent(q.cell, q.eta)
		if err != nil {
			t.Fatal(err)
		}
		if canon(got) != canon(want) {
			t.Fatalf("step %d (cell %d eta %g): mismatch after eta change", i, q.cell, q.eta)
		}
	}
}

// TestResultRecycling: a session's free list must hand the same result
// object back after Recycle, and the base tree must not recycle at all.
func TestResultRecycling(t *testing.T) {
	e := diffFixture(t)
	e.tree.SetVStore(e.schemes[2].vs)
	sess := e.tree.Session()

	r1, err := sess.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	sess.Recycle(r1)
	r2, err := sess.Query(1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("session free list did not reuse the recycled QueryResult")
	}
	if r2.Cell != 1 || len(r2.Items) == 0 {
		t.Fatalf("recycled result not reset: cell=%d items=%d", r2.Cell, len(r2.Items))
	}

	b1, err := e.tree.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	e.tree.Recycle(b1) // no-op on the base tree
	b2, err := e.tree.Query(1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatal("base tree recycled a result; pooling must be per-session")
	}
	if len(b1.Items) == 0 {
		t.Fatal("base-tree result was cleared by Recycle")
	}
}
