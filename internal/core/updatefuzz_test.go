package core_test

// FuzzUpdateDifferential drives the rebuild-differential gate with
// fuzzer-chosen workloads: a seeded op sequence (seed, length, batch
// split) is applied incrementally and compared against the from-scratch
// rebuild. The scene is tiny so each execution stays cheap; the corpus
// seeds cover single-batch, multi-batch and delete-heavy shapes. Any
// divergence — a stale reused LoD chain, a mislocalized cell, a payload
// aliasing bug — fails the round trip.

import (
	"math"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

func fuzzBaseScene() (*scene.Scene, core.BuildParams) {
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 1, 1
	p.BuildingsPerBlock = 3
	p.BlobsPerBlock = 2
	p.BlobDetail = 6
	p.NominalBytes = 4 << 20
	p.Seed = 77
	sc := scene.Generate(p)
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, 2, 2)
	bp.DirsPerViewpoint = 128
	bp.SamplesPerCell = 1
	return sc, bp
}

func FuzzUpdateDifferential(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3))
	f.Add(int64(2), uint8(20), uint8(7))
	f.Add(int64(3), uint8(1), uint8(1))
	f.Add(int64(42), uint8(30), uint8(30))
	f.Add(int64(-9), uint8(12), uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, nOps, batch uint8) {
		n := int(nOps)
		if n < 1 {
			n = 1
		}
		if n > 32 {
			n = 32 // keep each execution bounded
		}
		bs := int(batch)
		if bs < 1 {
			bs = n
		}
		sc, bp := fuzzBaseScene()
		ops := genUpdateOps(seed, sc, n)

		d := storage.NewDisk(0, storage.DefaultCostModel())
		tr, vis, err := core.Build(sc, d, bp)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(ops); i += bs {
			j := i + bs
			if j > len(ops) {
				j = len(ops)
			}
			tr, vis, _, _, err = core.ApplyOps(tr, vis, ops[i:j])
			if err != nil {
				t.Fatal(err)
			}
		}
		ref, refVis, refDisk, err := rebuildReference(sc, bp, ops)
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumNodes() != ref.NumNodes() {
			t.Fatalf("node counts diverge: %d vs %d", tr.NumNodes(), ref.NumNodes())
		}
		if tr.SMeasured != ref.SMeasured || tr.RhoMeasured != ref.RhoMeasured {
			t.Fatalf("constants diverge: s %x vs %x, rho %x vs %x",
				math.Float64bits(tr.SMeasured), math.Float64bits(ref.SMeasured),
				math.Float64bits(tr.RhoMeasured), math.Float64bits(ref.RhoMeasured))
		}
		for c := range refVis.RawDoV {
			for id, v := range refVis.RawDoV[c] {
				if g := vis.RawDoV[c][id]; math.Float64bits(g) != math.Float64bits(v) {
					t.Fatalf("cell %d object %d: raw DoV %x vs %x", c, id, math.Float64bits(g), math.Float64bits(v))
				}
			}
		}
		iv, err := vstore.BuildIndexedVerticalOpts(d, vis, vstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		riv, err := vstore.BuildIndexedVerticalOpts(refDisk, refVis, vstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tr.SetVStore(iv)
		ref.SetVStore(riv)
		got, err := updRunWorkload(tr, false)
		if err != nil {
			t.Fatal(err)
		}
		want, err := updRunWorkload(ref, false)
		if err != nil {
			t.Fatal(err)
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("incremental diverges from rebuild at cell %d eta %g:\n%s\nvs\n%s",
					k.cell, k.eta, got[k], w)
			}
		}
	})
}
