// Package core implements the HDoV-tree, the paper's primary contribution:
// a hierarchical spatial index whose traversal is driven by per-viewing-cell
// degree-of-visibility (DoV) data and which stores internal LoDs — coarse
// aggregate representations of all objects under a node — so that barely
// visible subtrees can be answered with a single coarse mesh instead of
// many detailed objects (§3 of the paper).
//
// The tree's view-invariant part (topology, MBRs, LoD payload locations)
// lives in node records on the simulated disk; the view-variant part (the
// VD = (DoV, NVO) fields of every entry) lives in V-pages managed by one of
// the three storage schemes of §4 (package vstore). Package core defines
// the VStore interface those schemes implement.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/cells"
	"repro/internal/geom"
	"repro/internal/mesh"
	"repro/internal/storage"
)

// VD is the view-variant data of one node entry: the degree of visibility
// of everything the entry bounds, and the number of visible objects (NVO)
// beneath it — the two fields of §3.3's VD = (DoV, NVO).
type VD struct {
	DoV float64
	NVO int32
}

// NodeID indexes nodes in depth-first preorder; the root is 0.
type NodeID int32

// NilNode marks "no node".
const NilNode NodeID = -1

// Extent locates a payload on disk. NominalBytes is the paper-scale size
// used for page accounting; RealBytes is the length of the actually
// written prefix (the encoded mesh).
type Extent struct {
	Start        storage.PageID
	NominalBytes int64
	RealBytes    int64
}

// Pages returns the extent's page count on disk d.
func (e Extent) Pages(d *storage.Disk) int { return d.PagesFor(e.NominalBytes) }

// NodeEntry is one (VD, MBR, Ptr) entry of §3.2 — with VD externalized to
// the V-pages, the persistent entry is (MBR, Ptr), where Ptr is either a
// child node or an object. Internal entries additionally carry the child's
// internal-LoD references, so terminating a branch (line 8 of Figure 3,
// "Add E.ptr→LOD_internal") resolves the coarse mesh without fetching the
// child node record.
//
// hdov:frozen-after-publish — entries live inside published node records
// that query sessions traverse lock-free; updates clone the node and its
// entry slice inside a construction window instead of editing in place.
type NodeEntry struct {
	MBR      geom.AABB
	ChildID  NodeID // valid in internal nodes, else NilNode
	ObjectID int64  // valid in leaf nodes, else -1
	// DescCount is the number of leaf-level objects beneath the entry —
	// the m of equation 3 (1 for leaf entries).
	DescCount int32
	// DescPolys is the total finest-LoD polygon count beneath the entry,
	// so m·f of equation 3 is measured rather than modeled.
	DescPolys int64
	// LoDRefs/LoDPolys mirror the child node's InternalExtents and
	// InternalPolys (empty in leaf entries).
	LoDRefs  []Extent
	LoDPolys []int
}

// Node is an HDoV-tree node: R-tree topology plus internal-LoD metadata.
//
// hdov:frozen-after-publish — once a node is reachable from a published
// epoch, concurrent query sessions traverse it with no locks, so every
// field is immutable; the update path clones (copy-on-write) inside a
// construction window and republishes.
type Node struct {
	ID   NodeID
	Leaf bool
	// SubtreeHeight is the number of edges to the leaf level (0 for a
	// leaf) — the h of equation 4, except measured exactly rather than
	// estimated as log_M m.
	SubtreeHeight int
	// LeafDescendants is m of equation 3: the number of leaf-level
	// objects beneath the node.
	LeafDescendants int
	Entries         []NodeEntry
	// InternalLoD is the in-memory chain of coarse aggregate meshes
	// ("levels of internal LoDs", §3.2). Leaf nodes have them too — the
	// traversal of Figure 3 can terminate on a leaf's parent entry.
	InternalLoD *mesh.LoDChain
	// InternalExtents and InternalPolys mirror InternalLoD on disk.
	InternalExtents []Extent
	InternalPolys   []int
	// Page is where the node record lives.
	Page storage.PageID
}

// VStore serves the view-variant V-pages of §4. Implementations are the
// horizontal, vertical and indexed-vertical schemes (package vstore).
type VStore interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// SetCell makes a viewing cell current, charging whatever "flipping"
	// I/O the scheme needs (§4.2–4.3). It is a no-op if the cell is
	// already current.
	SetCell(cell cells.CellID) error
	// NodeVD returns the VD values for the entries of the given node in
	// the current cell. ok is false if the node is not visible in the
	// cell (every DoV zero). Implementations charge their V-page reads to
	// storage.ClassLight.
	NodeVD(id NodeID) (vd []VD, ok bool, err error)
	// SizeBytes is the scheme's total disk footprint — the Table 2 value.
	SizeBytes() int64
}

// VStoreViewer is implemented by storage schemes that can produce
// per-session views: a view shares the scheme's immutable on-disk layout
// but owns its current-cell cursor and reads through the given client so
// V-page I/O is attributed to the session (see Tree.Session).
type VStoreViewer interface {
	View(io *storage.Client) VStore
}

// CellPager is implemented by storage schemes that can enumerate the disk
// pages holding a cell's visibility data — segment pages first, then
// V-pages — without disturbing the scheme's current-cell cursor. The
// walkthrough prefetcher uses it to warm the buffer pool for a predicted
// cell while queries against the current cell are still running, so
// implementations must be read-only with respect to the receiver and
// charge every lookup read to r, never to the scheme's own handle.
type CellPager interface {
	CellPages(r storage.Reader, cell cells.CellID) ([]storage.PageID, error)
}

// VisData is the precomputed visibility field handed from the build
// pipeline to the storage schemes: for every cell, for every node (indexed
// by NodeID), the VD values aligned with the node's entries, or nil when
// the node is invisible in that cell.
type VisData struct {
	NumNodes int
	Grid     *cells.Grid
	PerCell  map[cells.CellID][][]VD
	// CellShift[cell] is the dyadic quantization grid (fraction bits) the
	// cell's DoV values were snapped to at build time, or QuantShiftRaw
	// when the cell keeps raw float64 values (quantization disabled, or
	// the per-cell η-safety fallback fired — see quant.go). Nil on
	// hand-built fields; consumers must treat absence as raw.
	CellShift []uint8
	// RawDoV[cell][objectID] is the unquantized per-object region DoV the
	// cell's VD rows were derived from. The build pipeline retains it so
	// the incremental-update path can re-quantize and re-aggregate after a
	// topology change without re-casting rays for cells no changed object
	// touches. Nil on reopened databases (and hand-built fields); the
	// first update then recomputes every cell once.
	RawDoV [][]float64
}

// QuantFallbackCells counts cells whose DoV values were left unquantized
// (CellShift == QuantShiftRaw) — the η-collision fallback rate the
// vpagecodec experiment reports.
func (v *VisData) QuantFallbackCells() int {
	n := 0
	for _, s := range v.CellShift {
		if s == QuantShiftRaw {
			n++
		}
	}
	return n
}

// VisibleNodes returns N_vnode for a cell: the number of nodes with stored
// visibility data (§4's storage-cost analyses).
func (v *VisData) VisibleNodes(cell cells.CellID) int {
	n := 0
	for _, vd := range v.PerCell[cell] {
		if vd != nil {
			n++
		}
	}
	return n
}

// AvgVisibleNodes returns the mean N_vnode over all cells.
func (v *VisData) AvgVisibleNodes() float64 {
	if len(v.PerCell) == 0 {
		return 0
	}
	total := 0
	//lint:ignore determinism integer summation over all cells is iteration-order independent
	for cell := range v.PerCell {
		total += v.VisibleNodes(cell)
	}
	return float64(total) / float64(len(v.PerCell))
}

// MaxDoV is the paper's MAXDOV constant of equation 6.
const MaxDoV = 0.5

// LeafDetail implements equation 6: k = min(DoV/MAXDOV, 1), the continuous
// detail at which a visible object is retrieved.
func LeafDetail(dov float64) float64 {
	k := dov / MaxDoV
	if k > 1 {
		return 1
	}
	return k
}

// InternalDetail implements equation 5's interpolation coefficient DoV/η
// (clamped to (0, 1]): the detail at which an internal LoD is retrieved
// when the traversal terminates at an internal node.
func InternalDetail(dov, eta float64) float64 {
	if eta <= 0 {
		return 1
	}
	k := dov / eta
	if k > 1 {
		return 1
	}
	return k
}

// TerminateHeuristic implements equation 3's guard, the second condition
// of line 7 in Figure 3: terminating at a node is only worthwhile when its
// internal LoD carries fewer polygons than rendering the visible leaf
// content would — the paper's m·f·s^h < f·n, with both sides measured
// rather than modeled:
//
//   - internalPolys is the actual polygon count of the internal LoD at
//     the equation-5 level that would be retrieved (the paper estimates
//     this as m·f·s^h; the tree stores real counts per entry).
//   - avgObjectPolys is f, the mean finest-LoD polygon count of the
//     entry's descendants (DescPolys / DescCount).
//   - rho adapts the right side to LoD-selected retrieval: the paper
//     assumes visible objects render at f polygons, but under equation 6
//     a barely visible object renders near its coarsest level (≈ rho·f).
//
// Equation 4 — h(1 + log_M s) < log_M n — is this same inequality after
// substituting the m·f·s^h estimate and taking base-M logarithms; package
// tests verify the two agree when the estimate is exact.
func TerminateHeuristic(internalPolys, avgObjectPolys, rho float64, nvo int32) bool {
	if nvo <= 0 || internalPolys <= 0 || avgObjectPolys <= 0 {
		return false
	}
	if rho <= 0 || rho > 1 {
		rho = 1
	}
	return internalPolys < float64(nvo)*rho*avgObjectPolys
}

// EstimatedInternalPolys is the paper's m·f·s^h model of an internal LoD's
// polygon count (equation 3), exposed for the equivalence tests between
// the measured guard and equations 3/4.
func EstimatedInternalPolys(m int, f, s float64, h int) float64 {
	if h < 1 {
		h = 1
	}
	return float64(m) * f * math.Pow(s, float64(h))
}

// ---- node record serialization ----

const (
	nodeMagic      = 0x564f4448 // "HDOV"
	nodeHeaderSize = 4 + 4 + 1 + 1 + 2 + 4 + 4 + 2
	entrySize      = 48 + 4 + 8 + 4 + 8
	lodRefSize     = 8 + 8 + 8 + 4
)

// RecordSize returns the encoded byte size of the node record.
func (n *Node) RecordSize() int {
	size := nodeHeaderSize + len(n.Entries)*entrySize + len(n.InternalExtents)*lodRefSize
	if !n.Leaf {
		size += len(n.Entries) * len(n.InternalExtents) * lodRefSize
	}
	return size
}

// EncodeRecord serializes the view-invariant node record:
//
//	u32 magic | i32 id | u8 leaf | u8 height | u16 nLoD | i32 leafDesc |
//	i32 nEntries | u16 reserved
//	entries: 6×f64 MBR | i32 child | i64 object
//	lod refs: i64 pageStart | i64 nominalBytes | i64 realBytes | i32 npoly
func (n *Node) EncodeRecord() []byte {
	buf := make([]byte, n.RecordSize())
	le := binary.LittleEndian
	le.PutUint32(buf[0:], nodeMagic)
	le.PutUint32(buf[4:], uint32(n.ID))
	if n.Leaf {
		buf[8] = 1
	}
	buf[9] = uint8(n.SubtreeHeight)
	le.PutUint16(buf[10:], uint16(len(n.InternalExtents)))
	le.PutUint32(buf[12:], uint32(n.LeafDescendants))
	le.PutUint32(buf[16:], uint32(len(n.Entries)))
	off := nodeHeaderSize
	putRef := func(ex Extent, npoly int) {
		le.PutUint64(buf[off+0:], uint64(ex.Start))
		le.PutUint64(buf[off+8:], uint64(ex.NominalBytes))
		le.PutUint64(buf[off+16:], uint64(ex.RealBytes))
		le.PutUint32(buf[off+24:], uint32(npoly))
		off += lodRefSize
	}
	nLoD := len(n.InternalExtents)
	for _, e := range n.Entries {
		le.PutUint64(buf[off+0:], math.Float64bits(e.MBR.Min.X))
		le.PutUint64(buf[off+8:], math.Float64bits(e.MBR.Min.Y))
		le.PutUint64(buf[off+16:], math.Float64bits(e.MBR.Min.Z))
		le.PutUint64(buf[off+24:], math.Float64bits(e.MBR.Max.X))
		le.PutUint64(buf[off+32:], math.Float64bits(e.MBR.Max.Y))
		le.PutUint64(buf[off+40:], math.Float64bits(e.MBR.Max.Z))
		le.PutUint32(buf[off+48:], uint32(e.ChildID))
		le.PutUint64(buf[off+52:], uint64(e.ObjectID))
		le.PutUint32(buf[off+60:], uint32(e.DescCount))
		le.PutUint64(buf[off+64:], uint64(e.DescPolys))
		off += entrySize
		if !n.Leaf {
			for i := 0; i < nLoD; i++ {
				if i < len(e.LoDRefs) {
					putRef(e.LoDRefs[i], e.LoDPolys[i])
				} else {
					putRef(Extent{}, 0)
				}
			}
		}
	}
	for i, ex := range n.InternalExtents {
		putRef(ex, n.InternalPolys[i])
	}
	return buf
}

// DecodeNodeRecord parses a node record. The returned node has no
// in-memory InternalLoD; callers needing meshes read the extents.
func DecodeNodeRecord(buf []byte) (*Node, error) {
	le := binary.LittleEndian
	if len(buf) < nodeHeaderSize {
		return nil, errors.New("core: node record shorter than header")
	}
	if le.Uint32(buf[0:]) != nodeMagic {
		return nil, errors.New("core: bad node magic")
	}
	n := &Node{
		ID:              NodeID(le.Uint32(buf[4:])),
		Leaf:            buf[8] == 1,
		SubtreeHeight:   int(buf[9]),
		LeafDescendants: int(le.Uint32(buf[12:])),
	}
	nLoD := int(le.Uint16(buf[10:]))
	nEnt := int(le.Uint32(buf[16:]))
	want := nodeHeaderSize + nEnt*entrySize + nLoD*lodRefSize
	if !n.Leaf {
		want += nEnt * nLoD * lodRefSize
	}
	if len(buf) < want {
		return nil, fmt.Errorf("core: node record truncated: %d < %d", len(buf), want)
	}
	off := nodeHeaderSize
	getRef := func() (Extent, int) {
		ex := Extent{
			Start:        storage.PageID(le.Uint64(buf[off+0:])),
			NominalBytes: int64(le.Uint64(buf[off+8:])),
			RealBytes:    int64(le.Uint64(buf[off+16:])),
		}
		npoly := int(le.Uint32(buf[off+24:]))
		off += lodRefSize
		return ex, npoly
	}
	n.Entries = make([]NodeEntry, nEnt)
	for i := 0; i < nEnt; i++ {
		n.Entries[i] = NodeEntry{
			MBR: geom.AABB{
				Min: geom.Vec3{
					X: math.Float64frombits(le.Uint64(buf[off+0:])),
					Y: math.Float64frombits(le.Uint64(buf[off+8:])),
					Z: math.Float64frombits(le.Uint64(buf[off+16:])),
				},
				Max: geom.Vec3{
					X: math.Float64frombits(le.Uint64(buf[off+24:])),
					Y: math.Float64frombits(le.Uint64(buf[off+32:])),
					Z: math.Float64frombits(le.Uint64(buf[off+40:])),
				},
			},
			ChildID:   NodeID(int32(le.Uint32(buf[off+48:]))),
			ObjectID:  int64(le.Uint64(buf[off+52:])),
			DescCount: int32(le.Uint32(buf[off+60:])),
			DescPolys: int64(le.Uint64(buf[off+64:])),
		}
		off += entrySize
		if !n.Leaf {
			n.Entries[i].LoDRefs = make([]Extent, nLoD)
			n.Entries[i].LoDPolys = make([]int, nLoD)
			for j := 0; j < nLoD; j++ {
				n.Entries[i].LoDRefs[j], n.Entries[i].LoDPolys[j] = getRef()
			}
		}
	}
	n.InternalExtents = make([]Extent, nLoD)
	n.InternalPolys = make([]int, nLoD)
	for i := 0; i < nLoD; i++ {
		n.InternalExtents[i], n.InternalPolys[i] = getRef()
	}
	return n, nil
}
