package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cells"
)

// cleanShed uninstalls any load-shedding policy after a test: the
// process-cached fixture tree is shared, so a leaked policy would relax
// every later query in the package.
func cleanShed(t *testing.T, tr *Tree) {
	t.Helper()
	t.Cleanup(func() { tr.SetShed(nil) })
}

// stripShedMarks drops CauseShed degradations, leaving the media-fault
// stream (empty on healthy fixtures).
func stripShedMarks(ds []Degradation) []Degradation {
	var out []Degradation
	for _, d := range ds {
		if d.Cause != CauseShed {
			out = append(out, d)
		}
	}
	return out
}

// TestQueryContextBackgroundIdentical: the Context-taking entry points
// with an unbounded context are the plain forms — same items, same
// degradations, same stats, for every cell and eta. This is the PR's
// compatibility invariant: no deadline, no behavior change.
func TestQueryContextBackgroundIdentical(t *testing.T) {
	tr, _ := withMemStore(t)
	for _, eta := range []float64{0, 0.001, 0.05} {
		for c := 0; c < tr.Grid.NumCells(); c++ {
			cell := cells.CellID(c)
			plain, err := tr.Query(cell, eta)
			if err != nil {
				t.Fatal(err)
			}
			ctxed, err := tr.QueryContext(context.Background(), cell, eta)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain.Items, ctxed.Items) {
				t.Fatalf("cell %d eta %v: items differ between Query and QueryContext(Background)", cell, eta)
			}
			if !reflect.DeepEqual(plain.Degradations, ctxed.Degradations) {
				t.Fatalf("cell %d eta %v: degradations differ", cell, eta)
			}
			// SimTime depends on where the previous query parked the disk
			// head, so it legitimately differs between back-to-back runs;
			// every other counter must match exactly.
			ps, cs := plain.Stats, ctxed.Stats
			ps.SimTime, cs.SimTime = 0, 0
			if ps != cs {
				t.Fatalf("cell %d eta %v: stats differ: %+v vs %+v", cell, eta, ps, cs)
			}
		}
	}
}

// TestQueryContextCanceled: an already-canceled context aborts the
// traversal with an error that stays errors.Is-visible as
// context.Canceled — and cancellation is never degradable, even with
// FaultTolerant set.
func TestQueryContextCanceled(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanFaults(t, tr)
	tr.FaultTolerant = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := tr.QueryContext(ctx, 0, 0.001)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("canceled query returned a result: %+v", res)
	}

	// The abort must not poison the session: the very next unbounded
	// query answers normally (the ctx binding was restored).
	if _, err := tr.Query(0, 0.001); err != nil {
		t.Fatalf("query after canceled query failed: %v", err)
	}
}

// TestQueryCoherentContextCanceled: the frame-coherent path honors the
// same contract — a canceled context is an abort, not a fall-back to the
// full traversal.
func TestQueryCoherentContextCanceled(t *testing.T) {
	tr, _ := withMemStore(t)
	s := tr.Session()
	// Prime a cut so the incremental path is actually taken.
	if _, err := s.QueryCoherent(0, 0.001); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryCoherentContext(ctx, 1, 0.001); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The retained cut survives the abort and the session recovers.
	if _, err := s.QueryCoherent(1, 0.001); err != nil {
		t.Fatalf("coherent query after abort failed: %v", err)
	}
}

// TestShedEtaFactor: an EtaFactor policy answers exactly as the relaxed
// η would — same items as Query(cell, eta*factor) — and stamps the
// query-level CauseShed mark so the fidelity loss is visible.
func TestShedEtaFactor(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanShed(t, tr)
	const eta, factor = 0.001, 8.0

	for c := 0; c < tr.Grid.NumCells(); c++ {
		cell := cells.CellID(c)
		tr.SetShed(nil)
		relaxed, err := tr.Query(cell, eta*factor)
		if err != nil {
			t.Fatal(err)
		}
		tr.SetShed(&ShedPolicy{EtaFactor: factor})
		shed, err := tr.Query(cell, eta)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(relaxed.Items, shed.Items) {
			t.Fatalf("cell %d: shed items differ from Query at relaxed eta", cell)
		}
		marks := 0
		for _, d := range shed.Degradations {
			if d.Cause == CauseShed && d.Node == NilNode {
				marks++
			}
		}
		if marks != 1 {
			t.Fatalf("cell %d: %d query-level shed marks, want 1", cell, marks)
		}
	}

	// Removing the policy restores the exact baseline.
	tr.SetShed(nil)
	base, err := tr.Query(0, eta)
	if err != nil {
		t.Fatal(err)
	}
	if len(stripShedMarks(base.Degradations)) != 0 || len(base.Degradations) != 0 {
		t.Fatalf("policy removed but degradations remain: %+v", base.Degradations)
	}
}

// TestShedMaxDepth: a depth limit truncates every branch at that depth,
// answering with the child's internal LoD and recording a per-node
// CauseShed Degradation that names the substitute.
func TestShedMaxDepth(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanShed(t, tr)
	tr.SetShed(&ShedPolicy{MaxDepth: 1})
	res, err := tr.Query(0, 0) // eta 0 would otherwise visit every leaf
	if err != nil {
		t.Fatal(err)
	}
	rootChildren := make(map[NodeID]bool)
	for _, e := range tr.Root().Entries {
		rootChildren[e.ChildID] = true
	}
	for _, it := range res.Items {
		if !it.IsInternal() || !rootChildren[it.NodeID] {
			t.Fatalf("depth-1 item %+v is not a root child's internal LoD", it)
		}
	}
	var truncated int
	for _, d := range res.Degradations {
		if d.Cause != CauseShed {
			t.Fatalf("unexpected degradation cause %v on healthy media", d.Cause)
		}
		if d.Node == NilNode {
			continue // query-level η mark (not present here, but harmless)
		}
		truncated++
		if !rootChildren[d.Node] || d.SubstituteNode != d.Node || d.SubstituteLevel < 0 {
			t.Fatalf("truncation record malformed: %+v", d)
		}
	}
	if truncated == 0 || truncated != len(res.Items) {
		t.Fatalf("%d truncation records for %d items — shedding went silent", truncated, len(res.Items))
	}
}

// TestShedSharedWithSessions: the policy slot installed before sessions
// are derived is shared — flipping it on the base tree changes what live
// sessions answer, and clearing it restores full fidelity everywhere.
func TestShedSharedWithSessions(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanShed(t, tr)
	tr.SetShed(nil) // create the shared slot before deriving
	s := tr.Session()

	base, err := s.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Degradations) != 0 {
		t.Fatalf("baseline query degraded: %+v", base.Degradations)
	}

	tr.SetShed(&ShedPolicy{EtaFactor: 4})
	shed, err := s.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(shed.Degradations) == 0 {
		t.Fatal("session did not see the policy installed on the base tree")
	}

	tr.SetShed(nil)
	after, err := s.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Items, after.Items) || len(after.Degradations) != 0 {
		t.Fatal("clearing the policy did not restore the baseline answer")
	}
}

// TestShedZeroPolicyInert: a policy that relaxes nothing (zero value)
// neither changes the answer nor records any degradation.
func TestShedZeroPolicyInert(t *testing.T) {
	tr, _ := withMemStore(t)
	cleanShed(t, tr)
	tr.SetShed(nil)
	base, err := tr.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetShed(&ShedPolicy{})
	got, err := tr.Query(0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Items, got.Items) || len(got.Degradations) != 0 {
		t.Fatal("zero policy changed the answer")
	}
}
