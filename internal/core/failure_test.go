package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/cells"
	"repro/internal/storage"
)

// TestQueryCorruptNodePage verifies that a bad sector under a node record
// surfaces as an error (never a panic or a silent wrong answer).
func TestQueryCorruptNodePage(t *testing.T) {
	tr, _ := withMemStore(t)
	page := tr.NodePage(0)
	tr.Disk.CorruptPage(page)
	defer tr.Disk.HealPage(page)
	if _, err := tr.Query(0, 0.001); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestQueryCorruptChildPage(t *testing.T) {
	tr, _ := withMemStore(t)
	// Corrupt a non-root node: only queries whose traversal reaches it
	// fail; the root read still succeeds.
	child := tr.Root().Entries[0].ChildID
	page := tr.NodePage(child)
	tr.Disk.CorruptPage(page)
	defer tr.Disk.HealPage(page)
	failed := false
	for c := 0; c < tr.Grid.NumCells(); c++ {
		if _, err := tr.Query(0, 0); err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			failed = true
			break
		}
	}
	if !failed {
		t.Skip("corrupted subtree never visited (fully hidden)")
	}
}

func TestFetchPayloadsCorruptExtent(t *testing.T) {
	tr, _ := withMemStore(t)
	res, err := tr.Query(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Skip("empty cell")
	}
	page := res.Items[0].Extent.Start
	tr.Disk.CorruptPage(page)
	defer tr.Disk.HealPage(page)
	if _, err := tr.FetchPayloads(res, nil); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if _, err := tr.LoadMesh(res.Items[0]); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("LoadMesh err = %v, want ErrCorrupt", err)
	}
}

// TestDecodeNodeRecordNeverPanics feeds structured garbage to the record
// decoder: every outcome must be a clean error or a valid node, never a
// panic or runaway allocation.
func TestDecodeNodeRecordNeverPanics(t *testing.T) {
	tr, _ := fixture(t)
	good := tr.Root().EncodeRecord()
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 2000; i++ {
		buf := append([]byte(nil), good...)
		// Random truncation and byte flips.
		if r.Intn(2) == 0 && len(buf) > 1 {
			buf = buf[:r.Intn(len(buf))]
		}
		for j := 0; j < 1+r.Intn(8); j++ {
			if len(buf) == 0 {
				break
			}
			buf[r.Intn(len(buf))] ^= byte(1 << r.Intn(8))
		}
		n, err := DecodeNodeRecord(buf)
		if err == nil && n == nil {
			t.Fatal("nil node with nil error")
		}
	}
	// Pure random noise.
	for i := 0; i < 500; i++ {
		buf := make([]byte, r.Intn(512))
		r.Read(buf)
		_, _ = DecodeNodeRecord(buf)
	}
}

func TestMemStoreShortVPage(t *testing.T) {
	// A V-page shorter than the node's entry count is a hard error, not
	// an index panic.
	tr, vis := fixture(t)
	short := &shortVStore{vis: vis}
	saved := tr.VStoreScheme()
	tr.SetVStore(short)
	defer tr.SetVStore(saved)
	if _, err := tr.Query(0, 0.001); err == nil {
		t.Fatal("short V-page accepted")
	}
}

// shortVStore truncates every V-page to a single entry, simulating a
// layout/decoding mismatch between node records and visibility data.
type shortVStore struct {
	vis *VisData
	cur cells.CellID
}

func (s *shortVStore) Name() string     { return "short" }
func (s *shortVStore) SizeBytes() int64 { return 0 }
func (s *shortVStore) SetCell(c cells.CellID) error {
	s.cur = c
	return nil
}
func (s *shortVStore) NodeVD(id NodeID) ([]VD, bool, error) {
	vd := s.vis.PerCell[s.cur][id]
	if vd == nil {
		return nil, false, nil
	}
	return vd[:1], true, nil
}
