package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cells"
	"repro/internal/mesh"
	"repro/internal/rtree"
	"repro/internal/scene"
	"repro/internal/simplify"
	"repro/internal/storage"
	"repro/internal/visibility"
)

// BuildParams controls HDoV-tree construction (the preprocessing pipeline
// of §5.1: R-tree insertion with linear splitting, internal-LoD generation
// with qslim, conservative visibility + DoV evaluation per cell).
type BuildParams struct {
	// FanoutMin/FanoutMax are the R-tree m and M.
	FanoutMin, FanoutMax int
	// InternalLoDLevels is the number of "levels of internal LoDs" per
	// node (§3.2).
	InternalLoDLevels int
	// S is the target parent/children polygon ratio s of equation 3:
	// s = npoly(node) / Σ npoly(child_i). Must be in (0, 1) for the
	// termination heuristic to ever fire.
	S float64
	// InternalLoDRatio is the shrink factor between consecutive internal
	// LoD levels of the same node.
	InternalLoDRatio float64
	// Grid partitions the viewpoint space (nil: a default 8×8 grid over
	// the scene's view region).
	Grid *cells.Grid
	// DirsPerViewpoint is the DoV ray count per sample viewpoint.
	DirsPerViewpoint int
	// SamplesPerCell is the per-axis sample density for the region-DoV
	// maximum of equation 2 (n of cells.SamplePoints).
	SamplesPerCell int
	// VPageBytes is the fixed V-page size (§4.1). Zero: one disk page.
	VPageBytes int
	// Workers bounds precompute parallelism (0: GOMAXPROCS).
	Workers int
	// UseItemBuffer selects the cube-map rasterizer (the literal software
	// form of the paper's hardware DoV pass) instead of ray casting for
	// the per-cell precomputation. Both backends measure the same solid
	// angles; see visibility.ItemBuffer.
	UseItemBuffer bool
	// ItemBufferRes is the per-face resolution when UseItemBuffer is set
	// (0: visibility.DefaultItemBufferRes).
	ItemBufferRes int
	// BulkLoad builds the R-tree backbone with STR packing instead of
	// one-by-one insertion: near-full leaves, lower sibling overlap,
	// fewer nodes (ablation D8). The paper inserts incrementally.
	BulkLoad bool
	// DoVQuantBits snaps leaf DoV values onto a dyadic 2^-bits grid at
	// build time (see quant.go), so the codec V-page layer stores them
	// as small fixed-point integers with byte-identical query results.
	// Zero: DefaultDoVQuantBits. Negative: no snapping (raw float64s).
	DoVQuantBits int
	// QuantSafeEtas are the η thresholds snapping is validated against
	// per cell (nil: DefaultQuantSafeEtas). A cell where snapping would
	// move any aggregated DoV across any of these thresholds widens its
	// grid, and falls back to raw values if none is safe.
	QuantSafeEtas []float64
}

// DefaultBuildParams returns parameters mirroring the paper's prototype.
// S is deliberately small: an internal LoD only pays off when it is far
// coarser than the coarse object LoDs it replaces, since the traversal
// terminates exactly where DoV (and hence the equation-6 object detail) is
// tiny.
func DefaultBuildParams() BuildParams {
	return BuildParams{
		FanoutMin:         rtree.DefaultMinEntries,
		FanoutMax:         rtree.DefaultMaxEntries,
		InternalLoDLevels: 3,
		S:                 0.08,
		InternalLoDRatio:  0.25,
		DirsPerViewpoint:  2048,
		SamplesPerCell:    2,
	}
}

// Tree is a built HDoV-tree: the view-invariant structure on disk plus an
// in-memory mirror used by the build pipeline, tests, and the renderer.
// Attach a storage scheme with SetVStore before querying.
type Tree struct {
	Scene  *scene.Scene
	Grid   *cells.Grid
	Disk   *storage.Disk
	Params BuildParams

	Nodes []*Node // by NodeID (depth-first preorder; root is 0)
	// ObjExtents[objID][level] locates each object LoD payload.
	ObjExtents [][]Extent
	// SMeasured is the realized mean polygon ratio s (equation 3's s),
	// which the traversal's termination heuristic uses.
	SMeasured float64
	// RhoMeasured is the mean coarsest/finest polygon ratio of the object
	// LoD chains, used by the equation-3 guard (see TerminateHeuristic).
	RhoMeasured float64

	// DisableTerminationHeuristic drops the equation-4 guard from line 7
	// of Figure 3, terminating on DoV <= eta alone. This is ablation D2
	// (DESIGN.md §6): without the guard the traversal may retrieve
	// internal LoDs carrying more polygons than their visible children.
	DisableTerminationHeuristic bool

	// FaultTolerant enables degraded-mode traversal (degrade.go): media
	// faults during a query substitute ancestor internal LoDs and record
	// Degradation events instead of aborting. Off by default; with no
	// faults firing, results are identical either way.
	FaultTolerant bool

	// IO is the accounting handle the tree's query-path reads go through,
	// so per-query stats stay exact when several sessions share one disk.
	// Build and OpenTree set it; Session gives each session its own.
	IO *storage.Client

	// Parallel bounds the traversal fan-out (see SetParallel); <= 1 keeps
	// the strictly serial Figure 3 traversal.
	Parallel int
	// parSem is the worker-slot semaphore backing Parallel (capacity
	// Parallel-1: the caller's goroutine is the remaining worker).
	parSem chan struct{}

	vstore       VStore
	nodePageBase storage.PageID
	nodeStride   int // pages per node record

	// bb holds the live R-tree backbone the node mirror was derived from,
	// retained so incremental updates (update.go) can evolve it in place.
	// It lives behind a pointer so transferring it to the next epoch never
	// writes a Tree field that a concurrent Session() struct copy could be
	// reading: the holder's contents are only ever touched by the (single)
	// writer, while readers at most copy the pointer. bb.rt is nil on
	// reopened trees until the first update reconstructs it from the
	// mirror; bb.nodes maps each mirrored Node (by NodeID) back to its
	// R-tree node, the identity the internal-LoD cache is keyed on.
	bb *backbone

	// shed is the shared load-shedding policy slot (SetShed): sessions
	// derived after the slot exists see policy flips immediately. Nil
	// until the first SetShed — no shedding, byte-identical traversal.
	shed *shedHolder

	// cut is the session's retained traversal frontier (QueryCoherent);
	// nil until the first coherent query. Sessions never inherit a cut.
	cut *cutState
	// resPool recycles QueryResults within one session (see Recycle);
	// nil on the base tree, so recycling is per-session by construction.
	resPool *resultPool
}

// backbone boxes the live R-tree so epoch transfer mutates holder
// contents, not Tree fields (see the Tree.bb comment).
type backbone struct {
	rt    *rtree.Tree
	nodes []*rtree.Node
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.Nodes[0] }

// NumNodes returns N_node.
func (t *Tree) NumNodes() int { return len(t.Nodes) }

// SetVStore attaches the storage scheme used by Query.
func (t *Tree) SetVStore(v VStore) { t.vstore = v }

// VStoreScheme returns the attached scheme (nil before SetVStore).
func (t *Tree) VStoreScheme() VStore { return t.vstore }

// Build constructs the HDoV-tree over sc on disk d and precomputes the
// visibility data for every cell of the grid. The returned VisData is then
// handed to one of the vstore schemes; the tree is queryable after
// SetVStore.
func Build(sc *scene.Scene, d *storage.Disk, p BuildParams) (*Tree, *VisData, error) {
	if sc == nil || len(sc.Objects) == 0 {
		return nil, nil, fmt.Errorf("core: empty scene")
	}
	p = normalizeBuildParams(sc, p)

	// Step 1: R-tree over object MBRs — linear-split insertion as in
	// §5.1, or STR packing when BulkLoad is set. Tombstoned objects are
	// not indexed.
	var rt *rtree.Tree
	if p.BulkLoad {
		items := make([]rtree.Item, 0, len(sc.Objects))
		for _, o := range sc.Objects {
			if o.Dead {
				continue
			}
			items = append(items, rtree.Item{MBR: o.MBR, ID: o.ID})
		}
		rt = rtree.BulkLoad(items, p.FanoutMin, p.FanoutMax)
	} else {
		rt = rtree.New(p.FanoutMin, p.FanoutMax)
		for _, o := range sc.Objects {
			if o.Dead {
				continue
			}
			rt.Insert(o.MBR, o.ID)
		}
	}
	return BuildFromRTree(sc, d, p, rt)
}

// normalizeBuildParams fills defaults; Build and BuildFromRTree share it.
func normalizeBuildParams(sc *scene.Scene, p BuildParams) BuildParams {
	if p.FanoutMax < 2 {
		p.FanoutMax = rtree.DefaultMaxEntries
	}
	if p.InternalLoDLevels < 1 {
		p.InternalLoDLevels = 1
	}
	if p.S <= 0 || p.S >= 1 {
		p.S = 0.08
	}
	if p.Grid == nil {
		p.Grid = cells.NewGrid(sc.ViewRegion, 8, 8)
	}
	if p.DirsPerViewpoint <= 0 {
		p.DirsPerViewpoint = 2048
	}
	if p.SamplesPerCell <= 0 {
		p.SamplesPerCell = 1
	}
	if p.DoVQuantBits == 0 {
		p.DoVQuantBits = DefaultDoVQuantBits
	}
	if p.QuantSafeEtas == nil {
		p.QuantSafeEtas = DefaultQuantSafeEtas()
	}
	return p
}

// BuildFromRTree runs the HDoV build pipeline over an already-evolved
// R-tree backbone: mirroring, internal LoDs, payload and node records,
// and per-cell DoV precomputation — everything downstream of step 1. The
// incremental-update differential harness uses it to define the
// from-scratch reference: replay the same deterministic R-tree op
// evolution the live tree went through, then rebuild every derived
// artifact fresh. The tree takes ownership of rt.
func BuildFromRTree(sc *scene.Scene, d *storage.Disk, p BuildParams, rt *rtree.Tree) (*Tree, *VisData, error) {
	if sc == nil || len(sc.Objects) == 0 {
		return nil, nil, fmt.Errorf("core: empty scene")
	}
	if d == nil {
		return nil, nil, fmt.Errorf("core: nil disk")
	}
	if rt == nil || rt.Len() == 0 {
		return nil, nil, fmt.Errorf("core: empty R-tree")
	}
	p = normalizeBuildParams(sc, p)

	t := &Tree{Scene: sc, Grid: p.Grid, Disk: d, Params: p, IO: d.NewClient(), bb: &backbone{rt: rt}}

	// Step 2: mirror the R-tree into HDoV nodes in depth-first preorder.
	t.mirror(rt)

	// Step 3: internal LoDs, bottom-up; writes payload extents.
	if err := t.buildInternalLoDs(nil); err != nil {
		return nil, nil, err
	}

	// Measure rho: the mean coarsest/finest polygon ratio of the object
	// chains, the LoD-selected-retrieval correction of the equation-3
	// guard.
	t.RhoMeasured = measureRho(sc)

	// Step 4: object LoD payload extents.
	if err := t.writeObjectPayloads(); err != nil {
		return nil, nil, err
	}

	// Step 5: node records.
	if err := t.writeNodeRecords(); err != nil {
		return nil, nil, err
	}

	// Step 6: per-cell DoV precomputation.
	vis := t.precomputeVisibility()

	return t, vis, nil
}

// mirror copies the R-tree structure into t.Nodes in DFS preorder,
// recording the R-tree node behind each mirrored node in t.bb.nodes.
func (t *Tree) mirror(rt *rtree.Tree) {
	var walk func(rn *rtree.Node) NodeID
	walk = func(rn *rtree.Node) NodeID {
		n := &Node{ID: NodeID(len(t.Nodes)), Leaf: rn.Leaf}
		t.Nodes = append(t.Nodes, n)
		t.bb.nodes = append(t.bb.nodes, rn)
		for _, e := range rn.Entries {
			ne := NodeEntry{MBR: e.MBR, ChildID: NilNode, ObjectID: -1, DescCount: 1}
			if rn.Leaf {
				ne.ObjectID = e.ItemID
				ne.DescPolys = int64(t.Scene.Object(e.ItemID).LoDs.Finest().NumTriangles())
				n.LeafDescendants++
			} else {
				child := walk(e.Child)
				ne.ChildID = child
				cn := t.Nodes[child]
				ne.DescCount = int32(cn.LeafDescendants)
				for _, ce := range cn.Entries {
					ne.DescPolys += ce.DescPolys
				}
				n.LeafDescendants += cn.LeafDescendants
				if h := cn.SubtreeHeight + 1; h > n.SubtreeHeight {
					n.SubtreeHeight = h
				}
			}
			n.Entries = append(n.Entries, ne)
		}
		return n.ID
	}
	walk(rt.Root())
}

// buildInternalLoDs generates the aggregate coarse meshes bottom-up: a
// leaf's internal LoD aggregates its objects' models; an internal node's
// aggregates its children's internal LoDs — "Internal LoDs of nodes at
// higher levels are then generated in a bottom-up order" (§5.1). The
// simplification target enforces npoly(node) ≈ S · Σ npoly(children).
//
// reuse, when non-nil, lets the incremental-update path substitute an
// already-built chain for a node whose subtree is provably unchanged: it
// returns the previous epoch's node (whose chain, extents and polygon
// counts are adopted verbatim — the extents stay valid because committed
// pages are never rewritten) or nil to build fresh. The s-ratio
// accumulation runs identically either way, in the same bottom-up order,
// so SMeasured is bit-identical to a from-scratch rebuild.
//
// hdov:construction-window — runs before the tree is published; the
// nodes it mutates are not yet reachable by readers.
func (t *Tree) buildInternalLoDs(reuse func(n *Node) *Node) error {
	var sSum float64
	var sCnt int
	// DFS preorder guarantees children have higher IDs than parents, so
	// iterate in reverse ID order for bottom-up processing.
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := t.Nodes[i]
		var parts []*mesh.Mesh
		var childPolys int
		if n.Leaf {
			for _, e := range n.Entries {
				obj := t.Scene.Object(e.ObjectID)
				// Aggregate a mid-detail representation: detailed enough
				// to keep silhouettes, cheap enough to merge and simplify.
				lvl := obj.LoDs.NumLevels() / 2
				parts = append(parts, obj.LoDs.Levels[lvl])
				childPolys += obj.LoDs.Finest().NumTriangles()
			}
		} else {
			for _, e := range n.Entries {
				cn := t.Nodes[e.ChildID]
				parts = append(parts, cn.InternalLoD.Finest())
				childPolys += cn.InternalLoD.Finest().NumTriangles()
			}
		}
		if reuse != nil {
			if old := reuse(n); old != nil {
				n.InternalLoD = old.InternalLoD
				n.InternalExtents = old.InternalExtents
				n.InternalPolys = old.InternalPolys
				if childPolys > 0 {
					sSum += float64(n.InternalLoD.Finest().NumTriangles()) / float64(childPolys)
					sCnt++
				}
				continue
			}
		}
		agg := mesh.Merge(parts...)
		target := int(t.Params.S * float64(childPolys))
		if target < 8 {
			target = 8
		}
		top := simplify.Simplify(agg, target)
		n.InternalLoD = simplify.BuildLoDChain(top, t.Params.InternalLoDLevels, t.Params.InternalLoDRatio)
		if childPolys > 0 {
			sSum += float64(top.NumTriangles()) / float64(childPolys)
			sCnt++
		}
		// Write the chain's payload extents now.
		n.InternalExtents = make([]Extent, n.InternalLoD.NumLevels())
		n.InternalPolys = make([]int, n.InternalLoD.NumLevels())
		for li, m := range n.InternalLoD.Levels {
			enc := m.Encode()
			nominal := int64(float64(len(enc)) * t.Scene.PayloadScale)
			if nominal < int64(len(enc)) {
				nominal = int64(len(enc))
			}
			start := t.Disk.AllocPages(t.Disk.PagesFor(nominal))
			// Real bytes are written so the mesh can be reloaded.
			if err := t.Disk.WriteBytes(start, enc); err != nil {
				return fmt.Errorf("core: node %d internal LoD %d: %w", n.ID, li, err)
			}
			n.InternalExtents[li] = Extent{Start: start, NominalBytes: nominal, RealBytes: int64(len(enc))}
			n.InternalPolys[li] = m.NumTriangles()
		}
	}
	if sCnt > 0 {
		t.SMeasured = sSum / float64(sCnt)
	} else {
		t.SMeasured = t.Params.S
	}
	// Mirror each child's internal-LoD references into its parent entry so
	// line 8 of Figure 3 (E.ptr→LOD_internal) needs no child-record fetch.
	for _, n := range t.Nodes {
		if n.Leaf {
			continue
		}
		for ei := range n.Entries {
			c := t.Nodes[n.Entries[ei].ChildID]
			n.Entries[ei].LoDRefs = append([]Extent(nil), c.InternalExtents...)
			n.Entries[ei].LoDPolys = append([]int(nil), c.InternalPolys...)
		}
	}
	return nil
}

// measureRho returns the mean coarsest/finest polygon ratio over the live
// objects, accumulated in object-ID order so the incremental-update path
// reproduces the build value bit for bit.
func measureRho(sc *scene.Scene) float64 {
	var rhoSum float64
	alive := 0
	for _, o := range sc.Objects {
		if o.Dead {
			continue
		}
		alive++
		hi := o.LoDs.Finest().NumTriangles()
		lo := o.LoDs.Coarsest().NumTriangles()
		if hi > 0 {
			rhoSum += float64(lo) / float64(hi)
		}
	}
	if alive == 0 {
		return 0
	}
	return rhoSum / float64(alive)
}

// writeObjectPayload allocates and writes one object's LoD payload chain.
func (t *Tree) writeObjectPayload(o *scene.Object) ([]Extent, error) {
	exts := make([]Extent, o.LoDs.NumLevels())
	for li, m := range o.LoDs.Levels {
		nominal := o.LoDBytes[li]
		enc := m.Encode()
		if nominal < int64(len(enc)) {
			nominal = int64(len(enc))
		}
		start := t.Disk.AllocPages(t.Disk.PagesFor(nominal))
		if err := t.Disk.WriteBytes(start, enc); err != nil {
			return nil, fmt.Errorf("core: object %d LoD %d: %w", o.ID, li, err)
		}
		exts[li] = Extent{Start: start, NominalBytes: nominal, RealBytes: int64(len(enc))}
	}
	return exts, nil
}

// writeObjectPayloads allocates and writes the object LoD payload extents.
func (t *Tree) writeObjectPayloads() error {
	t.ObjExtents = make([][]Extent, len(t.Scene.Objects))
	for _, o := range t.Scene.Objects {
		exts, err := t.writeObjectPayload(o)
		if err != nil {
			return err
		}
		t.ObjExtents[o.ID] = exts
	}
	return nil
}

// writeNodeRecords lays the node records out contiguously in ID order with
// a uniform page stride, so node I/O is addressable as base + id*stride.
//
// hdov:construction-window — assigns page numbers during build, before
// the tree is published.
func (t *Tree) writeNodeRecords() error {
	maxRec := 0
	for _, n := range t.Nodes {
		if s := n.RecordSize(); s > maxRec {
			maxRec = s
		}
	}
	t.nodeStride = t.Disk.PagesFor(int64(maxRec))
	t.nodePageBase = t.Disk.AllocPages(t.nodeStride * len(t.Nodes))
	for _, n := range t.Nodes {
		n.Page = t.nodePageBase + storage.PageID(int(n.ID)*t.nodeStride)
		if err := t.Disk.WriteBytes(n.Page, n.EncodeRecord()); err != nil {
			return fmt.Errorf("core: writing node %d: %w", n.ID, err)
		}
	}
	return nil
}

// DescendantObjects calls fn for every object beneath the given node. The
// fidelity metrics use it to expand internal-LoD items into the objects
// they represent.
func (t *Tree) DescendantObjects(id NodeID, fn func(objID int64)) {
	if int(id) < 0 || int(id) >= len(t.Nodes) {
		return
	}
	n := t.Nodes[id]
	for _, e := range n.Entries {
		if n.Leaf {
			fn(e.ObjectID)
		} else {
			t.DescendantObjects(e.ChildID, fn)
		}
	}
}

// NodePage returns the disk page of a node record.
func (t *Tree) NodePage(id NodeID) storage.PageID {
	return t.nodePageBase + storage.PageID(int(id)*t.nodeStride)
}

// NodeStride returns pages per node record.
func (t *Tree) NodeStride() int { return t.nodeStride }

// ReadNodeRecord fetches and decodes a node record from disk, charging
// light I/O — the "tree node" component of Figure 8(b).
func (t *Tree) ReadNodeRecord(id NodeID) (*Node, error) {
	if int(id) < 0 || int(id) >= len(t.Nodes) {
		return nil, fmt.Errorf("core: node %d out of range", id)
	}
	buf, err := t.reader().ReadBytes(t.NodePage(id), t.Nodes[id].RecordSize(), storage.ClassLight)
	if err != nil {
		return nil, err
	}
	n, err := DecodeNodeRecord(buf)
	if err != nil {
		// The pages read back but the record does not parse: silent
		// corruption, distinguishable (ErrBadRecord) so fault-tolerant
		// traversal can degrade on it.
		return nil, fmt.Errorf("%w: node %d: %v", ErrBadRecord, id, err)
	}
	return n, nil
}

// precomputeVisibility evaluates per-cell, per-object region DoV and
// aggregates it to per-node entry VD values (DoV sums per §3.2 attribute
// 2, NVO counts). Cells are processed in parallel; the visibility engine
// is read-only after construction.
func (t *Tree) precomputeVisibility() *VisData {
	grid := t.Grid
	vis := &VisData{
		NumNodes:  len(t.Nodes),
		Grid:      grid,
		PerCell:   make(map[cells.CellID][][]VD, grid.NumCells()),
		CellShift: make([]uint8, grid.NumCells()),
		RawDoV:    make([][]float64, grid.NumCells()),
	}

	workers := t.Params.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Backend selection: the ray engine is safe to share across workers;
	// the item buffer holds raster state, so each worker gets a clone.
	var sharedRays *visibility.Engine
	var protoIB *visibility.ItemBuffer
	if t.Params.UseItemBuffer {
		protoIB = visibility.NewItemBuffer(t.Scene, t.Params.ItemBufferRes)
	} else {
		sharedRays = visibility.NewEngine(t.Scene, t.Params.DirsPerViewpoint)
	}
	type cellResult struct {
		cell  cells.CellID
		vd    [][]VD
		shift uint8
		raw   []float64
	}
	jobs := make(chan cells.CellID)
	results := make(chan cellResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var field visibility.Field
			if protoIB != nil {
				field = protoIB.Clone()
			} else {
				field = sharedRays
			}
			for cell := range jobs {
				samples := grid.SamplePoints(cell, t.Params.SamplesPerCell)
				objDoV := field.RegionDoV(samples)
				vd, shift := t.quantizeCell(objDoV, t.Params.DoVQuantBits, t.Params.QuantSafeEtas)
				results <- cellResult{cell: cell, vd: vd, shift: shift, raw: objDoV}
			}
		}()
	}
	go func() {
		for c := 0; c < grid.NumCells(); c++ {
			jobs <- cells.CellID(c)
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		vis.PerCell[r.cell] = r.vd
		vis.CellShift[r.cell] = r.shift
		vis.RawDoV[r.cell] = r.raw
	}
	return vis
}

// aggregate rolls a per-object DoV field up the tree: leaf entry VD is the
// object's (DoV, 0/1); internal entry VD sums the child node's entries
// (attribute 2 of §3.2) and counts visible objects (NVO).
func (t *Tree) aggregate(objDoV []float64) [][]VD {
	perNode := make([][]VD, len(t.Nodes))
	// Bottom-up: children have higher IDs (preorder).
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		n := t.Nodes[i]
		vd := make([]VD, len(n.Entries))
		visible := false
		for ei, e := range n.Entries {
			if n.Leaf {
				d := objDoV[e.ObjectID]
				vd[ei].DoV = d
				if d > 0 {
					vd[ei].NVO = 1
					visible = true
				}
			} else {
				cvd := perNode[e.ChildID]
				if cvd == nil {
					continue // invisible child: DoV 0, NVO 0
				}
				var sum float64
				var nvo int32
				for _, c := range cvd {
					sum += c.DoV
					nvo += c.NVO
				}
				vd[ei].DoV = sum
				vd[ei].NVO = nvo
				if sum > 0 {
					visible = true
				}
			}
		}
		if visible {
			perNode[i] = vd
		}
	}
	return perNode
}

// CheckVisDataInvariants verifies the three DoV attributes of §3.2 on a
// VisData field: non-negativity, the parent-sum property, and the
// visible-child property. Returns the first violation.
func (t *Tree) CheckVisDataInvariants(vis *VisData) error {
	// Walk cells in ID order, not map order, so which violation is
	// reported first is the same on every run.
	for c := 0; c < vis.Grid.NumCells(); c++ {
		cell := cells.CellID(c)
		perNode := vis.PerCell[cell]
		for id, vd := range perNode {
			if vd == nil {
				continue
			}
			n := t.Nodes[id]
			nodeVisible := false
			for ei, v := range vd {
				if v.DoV < 0 {
					return fmt.Errorf("cell %d node %d entry %d: negative DoV %v", cell, id, ei, v.DoV)
				}
				if v.DoV > 0 {
					nodeVisible = true
				}
				if n.Leaf {
					continue
				}
				cvd := perNode[n.Entries[ei].ChildID]
				var sum float64
				var nvo int32
				for _, c := range cvd {
					sum += c.DoV
					nvo += c.NVO
				}
				if diff := v.DoV - sum; diff > 1e-9 || diff < -1e-9 {
					return fmt.Errorf("cell %d node %d entry %d: DoV %v != child sum %v", cell, id, ei, v.DoV, sum)
				}
				if v.NVO != nvo {
					return fmt.Errorf("cell %d node %d entry %d: NVO %d != child sum %d", cell, id, ei, v.NVO, nvo)
				}
				if v.DoV > 0 && cvd == nil {
					return fmt.Errorf("cell %d node %d entry %d: visible entry with invisible child", cell, id, ei)
				}
			}
			if !nodeVisible {
				return fmt.Errorf("cell %d node %d: stored but entirely invisible", cell, id)
			}
		}
	}
	return nil
}
