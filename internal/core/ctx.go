package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/cells"
	"repro/internal/geom"
	"repro/internal/storage"
)

// Deadline, cancellation, and fidelity-aware shedding (DESIGN.md §14).
//
// Every query entry point has a Context-taking form; the plain forms are
// thin wrappers over an unbounded background context, so the ~hundred
// existing call sites (and the paper-faithful experiments, which have no
// notion of time) keep their exact behavior. A context flows two ways:
//
//   - cooperatively, as a checkpoint polled at every node expansion — the
//     traversal notices cancellation within one node visit; and
//   - through the session's storage.Client (BindContext), so a read that
//     would start after the deadline fails fast before paying seek,
//     transfer, retry, or backoff cost.
//
// A context error is never degradable: fault-tolerant traversal absorbs
// bad media, not abandoned queries, so cancellation aborts cleanly with
// no substitution and no quarantine side effects.
//
// Shedding is the overload half: under pressure a serving stack installs
// a ShedPolicy (SetShed) and queries answer at relaxed fidelity —
// exactly the trade the HDoV-tree's internal LoDs exist for. Shedding is
// never silent: every shed query carries CauseShed Degradation records.

// bgContext is the unbounded context behind the non-Context wrappers.
//
//lint:ignore ctxflow compat wrappers deliberately run unbounded
var bgContext = context.Background()

// ShedPolicy relaxes query fidelity under overload. The zero policy (or
// a nil policy pointer) sheds nothing.
type ShedPolicy struct {
	// EtaFactor > 1 multiplies the query's DoV threshold η, terminating
	// branches earlier at internal LoDs (values <= 1 leave η alone). The
	// answer is the one the relaxed η would produce.
	EtaFactor float64
	// MaxDepth > 0 truncates the traversal below that depth: entries at
	// the limit answer with their child's internal LoD regardless of η
	// (0 means unlimited). Depth 1 reduces every query to the root's
	// children's internal LoDs.
	MaxDepth int
}

// active reports whether the policy changes anything.
func (p *ShedPolicy) active() bool {
	return p != nil && (p.EtaFactor > 1 || p.MaxDepth > 0)
}

// shedHolder shares one mutable policy slot between a tree and every
// session derived from it, so a serving stack can turn shedding on and
// off while sessions are live.
type shedHolder struct{ p atomic.Pointer[ShedPolicy] }

// SetShed installs (nil: removes) the load-shedding policy. The slot is
// shared with sessions derived from this tree *after* the first SetShed
// call — serving stacks call SetShed(nil) once before creating sessions,
// then flip the policy under pressure and every live session sees it on
// its next query.
func (t *Tree) SetShed(p *ShedPolicy) {
	if t.shed == nil {
		t.shed = &shedHolder{}
	}
	t.shed.p.Store(p)
}

// Shed returns the currently installed policy (nil when none).
func (t *Tree) Shed() *ShedPolicy {
	if t.shed == nil {
		return nil
	}
	return t.shed.p.Load()
}

// travCtx carries the per-query control state — the caller's context and
// the shed policy snapshot — through the traversal recursion.
type travCtx struct {
	ctx  context.Context
	shed *ShedPolicy
}

// err is the cooperative cancellation checkpoint, polled at every node
// expansion. The wrapped error stays errors.Is-visible as
// context.Canceled / context.DeadlineExceeded and is not degradable.
func (tc travCtx) err() error {
	if err := tc.ctx.Err(); err != nil {
		return fmt.Errorf("core: traversal aborted: %w", err)
	}
	return nil
}

// truncate reports whether the shed policy cuts the traversal at depth
// (the length of the ancestor ladder above the entry being considered).
func (tc travCtx) truncate(depth int) bool {
	return tc.shed != nil && tc.shed.MaxDepth > 0 && depth >= tc.shed.MaxDepth
}

// begin snapshots the query-scoped control state and binds ctx to the
// session's I/O client; the returned func restores the unbounded binding
// so later non-Context calls on the session are unaffected. It also
// returns the effective (possibly relaxed) η.
func (t *Tree) begin(ctx context.Context, eta float64) (travCtx, float64, func()) {
	tc := travCtx{ctx: ctx, shed: t.Shed()}
	if !tc.shed.active() {
		tc.shed = nil
	}
	eff := eta
	if tc.shed != nil && tc.shed.EtaFactor > 1 {
		eff = eta * tc.shed.EtaFactor
	}
	if t.IO == nil || ctx == bgContext {
		return tc, eff, func() {}
	}
	t.IO.BindContext(ctx)
	return tc, eff, func() { t.IO.BindContext(bgContext) }
}

// shedMark records the query-level CauseShed Degradation for an η
// relaxation, so shed fidelity is visible in the same stream as absorbed
// media faults.
func (tc travCtx) shedMark(res *QueryResult) {
	if tc.shed == nil || tc.shed.EtaFactor <= 1 {
		return
	}
	res.Degradations = append(res.Degradations, Degradation{
		Cell: res.Cell, Node: NilNode, Object: -1,
		Cause: CauseShed, Page: storage.NilPage,
		SubstituteNode: NilNode, SubstituteLevel: -1,
	})
}

// Query runs the threshold-based traversal of Figure 3 unbounded — no
// deadline, no shedding beyond the installed policy. See QueryContext.
func (t *Tree) Query(cell cells.CellID, eta float64) (*QueryResult, error) {
	return t.QueryContext(bgContext, cell, eta)
}

// QueryCoherent is the unbounded form of QueryCoherentContext.
func (t *Tree) QueryCoherent(cell cells.CellID, eta float64) (*QueryResult, error) {
	return t.QueryCoherentContext(bgContext, cell, eta)
}

// QueryPrioritized is the unbounded form of QueryPrioritizedContext.
func (t *Tree) QueryPrioritized(cell cells.CellID, eta float64, f geom.Frustum) (*QueryResult, error) {
	return t.QueryPrioritizedContext(bgContext, cell, eta, f)
}

// FetchPayloads is the unbounded form of FetchPayloadsContext.
func (t *Tree) FetchPayloads(res *QueryResult, skip func(ResultItem) bool) (int, error) {
	return t.FetchPayloadsContext(bgContext, res, skip)
}
