package core_test

// Differential suite: the three V-page storage schemes of §4 hold the
// same visibility data, so for any (cell, eta) they must produce
// byte-identical answer sets — and so must every concurrent client, with
// serial or parallel traversal. A disagreement anywhere is a lost-update
// or ordering bug in the storage schemes, the session machinery, or the
// parallel fan-out merge.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

// diffScheme pairs a scheme with a label that distinguishes the codec
// layout variants (Name() alone reports only the §4 scheme family).
type diffScheme struct {
	name string
	vs   core.VStore
}

type diffEnv struct {
	tree    *core.Tree
	disk    *storage.Disk
	schemes []diffScheme
}

var (
	diffOnce sync.Once
	diffVal  *diffEnv
)

func diffFixture(t *testing.T) *diffEnv {
	t.Helper()
	diffOnce.Do(func() {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 2, 2
		p.BuildingsPerBlock = 4
		p.BlobsPerBlock = 2
		p.BlobDetail = 8
		p.NominalBytes = 32 << 20
		p.Seed = 7
		sc := scene.Generate(p)
		d := storage.NewDisk(0, storage.DefaultCostModel())
		bp := core.DefaultBuildParams()
		bp.Grid = cells.NewGrid(sc.ViewRegion, 4, 4)
		bp.DirsPerViewpoint = 512
		bp.SamplesPerCell = 1
		tr, vis, err := core.Build(sc, d, bp)
		if err != nil {
			panic(err)
		}
		h, err := vstore.BuildHorizontal(d, vis, 0)
		if err != nil {
			panic(err)
		}
		v, err := vstore.BuildVertical(d, vis, 0)
		if err != nil {
			panic(err)
		}
		iv, err := vstore.BuildIndexedVertical(d, vis, 0)
		if err != nil {
			panic(err)
		}
		// Codec layout variants of the same visibility data: every answer
		// below must be byte-identical with the codec on or off.
		copts := vstore.Options{Codec: true}
		ch, err := vstore.BuildHorizontalOpts(d, vis, copts)
		if err != nil {
			panic(err)
		}
		cv, err := vstore.BuildVerticalOpts(d, vis, copts)
		if err != nil {
			panic(err)
		}
		civ, err := vstore.BuildIndexedVerticalOpts(d, vis, copts)
		if err != nil {
			panic(err)
		}
		diffVal = &diffEnv{tree: tr, disk: d, schemes: []diffScheme{
			{"horizontal", h}, {"vertical", v}, {"indexed", iv},
			{"horizontal+codec", ch}, {"vertical+codec", cv}, {"indexed+codec", civ},
		}}
	})
	if diffVal == nil {
		t.Fatal("differential fixture failed")
	}
	return diffVal
}

var diffEtas = []float64{0, 0.001, 0.008}

// canon renders a query answer into a canonical byte string: every item
// and degradation, floats as exact bit patterns. Two results compare
// equal iff they are byte-identical.
func canon(r *core.QueryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell=%d eta=%x items=%d\n", r.Cell, math.Float64bits(r.Eta), len(r.Items))
	for _, it := range r.Items {
		fmt.Fprintf(&b, "item obj=%d node=%d lvl=%d dov=%x det=%x poly=%x ext=%d/%d/%d\n",
			it.ObjectID, it.NodeID, it.Level,
			math.Float64bits(it.DoV), math.Float64bits(it.Detail), math.Float64bits(it.Polygons),
			it.Extent.Start, it.Extent.NominalBytes, it.Extent.RealBytes)
	}
	for _, d := range r.Degradations {
		fmt.Fprintf(&b, "degr cell=%d node=%d obj=%d cause=%s page=%d sub=%d sublvl=%d\n",
			d.Cell, d.Node, d.Object, d.Cause, d.Page, d.SubstituteNode, d.SubstituteLevel)
	}
	return b.String()
}

// workloadKey identifies one query of the differential workload.
type workloadKey struct {
	cell cells.CellID
	eta  float64
}

func diffWorkload(tr *core.Tree) []workloadKey {
	var ws []workloadKey
	for c := 0; c < tr.Grid.NumCells(); c++ {
		for _, eta := range diffEtas {
			ws = append(ws, workloadKey{cells.CellID(c), eta})
		}
	}
	return ws
}

// runWorkload answers the whole workload on one tree handle.
func runWorkload(tr *core.Tree, ws []workloadKey) (map[workloadKey]string, error) {
	out := make(map[workloadKey]string, len(ws))
	for _, k := range ws {
		r, err := tr.Query(k.cell, k.eta)
		if err != nil {
			return nil, fmt.Errorf("cell %d eta %g: %w", k.cell, k.eta, err)
		}
		out[k] = canon(r)
	}
	return out, nil
}

// diffReference answers the workload serially per scheme and asserts the
// three schemes agree byte for byte, returning the agreed reference.
func diffReference(t *testing.T, e *diffEnv, ws []workloadKey) map[workloadKey]string {
	t.Helper()
	var ref map[workloadKey]string
	var refName string
	for _, s := range e.schemes {
		e.tree.SetVStore(s.vs)
		got, err := runWorkload(e.tree, ws)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if ref == nil {
			ref, refName = got, s.name
			continue
		}
		for _, k := range ws {
			if got[k] != ref[k] {
				t.Fatalf("scheme %s disagrees with %s at cell %d eta %g:\n%s\nvs\n%s",
					s.name, refName, k.cell, k.eta, got[k], ref[k])
			}
		}
	}
	return ref
}

// assertConcurrentAgreement runs clients concurrent sessions per scheme
// over the full workload and asserts every client reproduces ref exactly.
func assertConcurrentAgreement(t *testing.T, e *diffEnv, ws []workloadKey, ref map[workloadKey]string, clients int) {
	t.Helper()
	for _, s := range e.schemes {
		e.tree.SetVStore(s.vs)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sess := e.tree.Session()
				got, err := runWorkload(sess, ws)
				if err != nil {
					errs[i] = err
					return
				}
				for _, k := range ws {
					if got[k] != ref[k] {
						errs[i] = fmt.Errorf("client %d cell %d eta %g:\n%s\nvs reference\n%s",
							i, k.cell, k.eta, got[k], ref[k])
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("scheme %s: %v", s.name, err)
			}
		}
	}
}

// TestDifferentialSchemes: all three schemes, 1 and 8 concurrent clients,
// serial and parallel traversal — one byte-identical answer per query.
func TestDifferentialSchemes(t *testing.T) {
	e := diffFixture(t)
	ws := diffWorkload(e.tree)
	ref := diffReference(t, e, ws)

	t.Run("concurrent-8", func(t *testing.T) {
		assertConcurrentAgreement(t, e, ws, ref, 8)
	})
	t.Run("parallel-traversal", func(t *testing.T) {
		e.tree.SetParallel(4)
		defer e.tree.SetParallel(1)
		// Parallel fan-out must not change a single answer byte, serially
		// or under concurrency.
		par := diffReference(t, e, ws)
		for _, k := range ws {
			if par[k] != ref[k] {
				t.Fatalf("parallel traversal changed the answer at cell %d eta %g:\n%s\nvs\n%s",
					k.cell, k.eta, par[k], ref[k])
			}
		}
		assertConcurrentAgreement(t, e, ws, ref, 8)
	})
}

// TestDifferentialDegradations: with an explicitly corrupted node page
// and fault tolerance on, the absorbed Degradation events must also be
// identical across schemes, client counts, and traversal modes. (The
// corrupt page holds a node record, which every scheme shares.)
func TestDifferentialDegradations(t *testing.T) {
	e := diffFixture(t)
	ws := diffWorkload(e.tree)

	child := e.tree.Root().Entries[0].ChildID
	page := e.tree.NodePage(child)
	e.disk.CorruptPage(page)
	e.tree.FaultTolerant = true
	defer func() {
		e.tree.FaultTolerant = false
		e.disk.HealPage(page)
		e.disk.ClearQuarantine()
	}()

	ref := diffReference(t, e, ws)
	degraded := 0
	for _, k := range ws {
		if strings.Contains(ref[k], "degr ") {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatalf("corrupting node %d produced no degradations anywhere in the workload", child)
	}

	t.Run("concurrent-8", func(t *testing.T) {
		assertConcurrentAgreement(t, e, ws, ref, 8)
	})
	t.Run("parallel-traversal", func(t *testing.T) {
		e.tree.SetParallel(4)
		defer e.tree.SetParallel(1)
		par := diffReference(t, e, ws)
		for _, k := range ws {
			if par[k] != ref[k] {
				t.Fatalf("parallel degraded traversal changed the answer at cell %d eta %g:\n%s\nvs\n%s",
					k.cell, k.eta, par[k], ref[k])
			}
		}
		assertConcurrentAgreement(t, e, ws, ref, 8)
	})
}
