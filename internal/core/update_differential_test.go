package core_test

// Rebuild-differential suite for incremental scene maintenance: after any
// sequence of insert/delete/move operations, the incrementally maintained
// tree must answer every query byte-identically (modulo on-disk
// addresses) to a tree rebuilt from scratch over the replayed scene.
//
// The two paths deliberately share only the deterministic R-tree op
// evolution — Guttman insertion with the Ang–Tan split applies the same
// op sequence to the same base tree and produces the same topology, so
// the reference replays it independently and rebuilds every derived
// artifact (internal LoDs, visibility fields, payloads, node records)
// fresh on a fresh disk. Any divergence pins a bug in the incremental
// machinery: the LoD reuse cache, the touched-cell localization, the
// copy-on-write payload path, or the retained raw DoV.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/cells"
	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/scene"
	"repro/internal/storage"
	"repro/internal/vstore"
)

// genUpdateOps generates a seeded, deterministic update workload over the
// scene: ~35% inserts (procedural blobs dropped inside the view region),
// ~25% deletes and ~40% moves of live objects. The alive-set bookkeeping
// mirrors the scene's dense-ID discipline, so every generated op is valid
// when applied in order. Zero-delta moves are never generated (they would
// be no-ops that still exercise -0.0 bit hazards).
func genUpdateOps(seed int64, sc *scene.Scene, n int) []scene.Op {
	rng := rand.New(rand.NewSource(seed))
	alive := make([]int64, 0, len(sc.Objects))
	for _, o := range sc.Objects {
		if !o.Dead {
			alive = append(alive, o.ID)
		}
	}
	nextID := int64(len(sc.Objects))
	lo, hi := sc.ViewRegion.Min, sc.ViewRegion.Max
	ops := make([]scene.Op, 0, n)
	for len(ops) < n {
		r := rng.Float64()
		switch {
		case r < 0.35 || len(alive) <= 4:
			ops = append(ops, scene.Op{Kind: scene.OpInsert, Insert: &scene.InsertSpec{
				Seed:   rng.Int63(),
				X:      lo.X + 2 + rng.Float64()*(hi.X-lo.X-4),
				Y:      lo.Y + 2 + rng.Float64()*(hi.Y-lo.Y-4),
				Radius: 1 + 2*rng.Float64(),
			}})
			alive = append(alive, nextID)
			nextID++
		case r < 0.60:
			i := rng.Intn(len(alive))
			ops = append(ops, scene.Op{Kind: scene.OpDelete, ID: alive[i]})
			alive[i] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		default:
			dx := (rng.Float64()*2 - 1) * 8
			dy := (rng.Float64()*2 - 1) * 8
			if dx == 0 && dy == 0 {
				dx = 1
			}
			ops = append(ops, scene.Op{Kind: scene.OpMove, ID: alive[rng.Intn(len(alive))], DX: dx, DY: dy})
		}
	}
	return ops
}

// rebuildReference constructs the from-scratch reference for an op
// sequence: replay the scene, replay the R-tree op evolution on an
// independent backbone, and build everything downstream fresh on a fresh
// disk.
func rebuildReference(baseSc *scene.Scene, bp core.BuildParams, ops []scene.Op) (*core.Tree, *core.VisData, *storage.Disk, error) {
	sc2 := baseSc.CloneShell()
	rt := rtree.New(bp.FanoutMin, bp.FanoutMax)
	for _, o := range baseSc.Objects {
		if !o.Dead {
			rt.Insert(o.MBR, o.ID)
		}
	}
	for i, op := range ops {
		eff, err := sc2.ApplyOp(op)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("replay op %d: %w", i, err)
		}
		switch eff.Kind {
		case scene.OpInsert:
			rt.Insert(eff.NewMBR, eff.ObjectID)
		case scene.OpDelete:
			if !rt.Delete(eff.OldMBR, eff.ObjectID) {
				return nil, nil, nil, fmt.Errorf("replay op %d: object %d not in R-tree", i, eff.ObjectID)
			}
		case scene.OpMove:
			if !rt.Delete(eff.OldMBR, eff.ObjectID) {
				return nil, nil, nil, fmt.Errorf("replay op %d: object %d not in R-tree", i, eff.ObjectID)
			}
			rt.Insert(eff.NewMBR, eff.ObjectID)
		}
	}
	d2 := storage.NewDisk(0, storage.DefaultCostModel())
	tr2, vis2, err := core.BuildFromRTree(sc2, d2, bp, rt)
	return tr2, vis2, d2, err
}

// canonAddrFree renders a query answer canonically like canon, but
// address-free: on-disk extent starts and fault page IDs are the only
// fields allowed to differ between the incremental tree and the rebuilt
// reference (they live on different disks with different allocation
// histories), so they are omitted. Every semantic field — objects, nodes,
// levels, exact DoV/detail/polygon bit patterns, payload sizes,
// degradation causes and substitutes — still compares bit for bit.
func canonAddrFree(r *core.QueryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell=%d eta=%x items=%d\n", r.Cell, math.Float64bits(r.Eta), len(r.Items))
	for _, it := range r.Items {
		fmt.Fprintf(&b, "item obj=%d node=%d lvl=%d dov=%x det=%x poly=%x bytes=%d/%d\n",
			it.ObjectID, it.NodeID, it.Level,
			math.Float64bits(it.DoV), math.Float64bits(it.Detail), math.Float64bits(it.Polygons),
			it.Extent.NominalBytes, it.Extent.RealBytes)
	}
	for _, d := range r.Degradations {
		fmt.Fprintf(&b, "degr cell=%d node=%d obj=%d cause=%s sub=%d sublvl=%d\n",
			d.Cell, d.Node, d.Object, d.Cause, d.SubstituteNode, d.SubstituteLevel)
	}
	return b.String()
}

// updEnv holds the incremental tree (evolved through batched ApplyOps)
// and the from-scratch reference, with all six scheme variants built over
// each.
type updEnv struct {
	bp    core.BuildParams
	ops   []scene.Op
	stats []*core.UpdateStats

	inc     *core.Tree
	incVis  *core.VisData
	incDisk *storage.Disk
	incSch  []diffScheme

	ref     *core.Tree
	refVis  *core.VisData
	refDisk *storage.Disk
	refSch  []diffScheme
}

var (
	updOnce sync.Once
	updVal  *updEnv
)

const (
	updWorkloadOps  = 120
	updBatchSize    = 17
	updWorkloadSeed = 42
)

func updSchemes(d *storage.Disk, vis *core.VisData) ([]diffScheme, error) {
	var out []diffScheme
	for _, codec := range []bool{false, true} {
		opts := vstore.Options{Codec: codec}
		suffix := ""
		if codec {
			suffix = "+codec"
		}
		h, err := vstore.BuildHorizontalOpts(d, vis, opts)
		if err != nil {
			return nil, err
		}
		v, err := vstore.BuildVerticalOpts(d, vis, opts)
		if err != nil {
			return nil, err
		}
		iv, err := vstore.BuildIndexedVerticalOpts(d, vis, opts)
		if err != nil {
			return nil, err
		}
		out = append(out,
			diffScheme{"horizontal" + suffix, h},
			diffScheme{"vertical" + suffix, v},
			diffScheme{"indexed" + suffix, iv})
	}
	return out, nil
}

func updFixture(t *testing.T) *updEnv {
	t.Helper()
	updOnce.Do(func() {
		p := scene.DefaultCityParams()
		p.BlocksX, p.BlocksY = 2, 2
		p.BuildingsPerBlock = 4
		p.BlobsPerBlock = 2
		p.BlobDetail = 8
		p.NominalBytes = 32 << 20
		p.Seed = 11
		sc := scene.Generate(p)
		bp := core.DefaultBuildParams()
		bp.Grid = cells.NewGrid(sc.ViewRegion, 4, 4)
		bp.DirsPerViewpoint = 512
		bp.SamplesPerCell = 1

		d := storage.NewDisk(0, storage.DefaultCostModel())
		tr, vis, err := core.Build(sc, d, bp)
		if err != nil {
			panic(err)
		}
		e := &updEnv{bp: bp, incDisk: d}
		e.ops = genUpdateOps(updWorkloadSeed, sc, updWorkloadOps)

		// Incremental path: the op sequence applied in several batches, so
		// inter-batch state (retained raw DoV, reused LoD chains, reused
		// payload extents) is exercised, not just one update.
		for i := 0; i < len(e.ops); i += updBatchSize {
			j := i + updBatchSize
			if j > len(e.ops) {
				j = len(e.ops)
			}
			var st *core.UpdateStats
			tr, vis, _, st, err = core.ApplyOps(tr, vis, e.ops[i:j])
			if err != nil {
				panic(err)
			}
			e.stats = append(e.stats, st)
		}
		e.inc, e.incVis = tr, vis

		e.ref, e.refVis, e.refDisk, err = rebuildReference(sc, bp, e.ops)
		if err != nil {
			panic(err)
		}

		if e.incSch, err = updSchemes(e.incDisk, e.incVis); err != nil {
			panic(err)
		}
		if e.refSch, err = updSchemes(e.refDisk, e.refVis); err != nil {
			panic(err)
		}
		updVal = e
	})
	if updVal == nil {
		t.Fatal("update differential fixture failed")
	}
	return updVal
}

// updRunWorkload answers every (cell, eta) on one tree handle, with the
// plain or frame-coherent traversal.
func updRunWorkload(tr *core.Tree, coherent bool) (map[workloadKey]string, error) {
	out := make(map[workloadKey]string)
	for c := 0; c < tr.Grid.NumCells(); c++ {
		for _, eta := range diffEtas {
			var r *core.QueryResult
			var err error
			if coherent {
				r, err = tr.QueryCoherent(cells.CellID(c), eta)
			} else {
				r, err = tr.Query(cells.CellID(c), eta)
			}
			if err != nil {
				return nil, fmt.Errorf("cell %d eta %g: %w", c, eta, err)
			}
			out[workloadKey{cells.CellID(c), eta}] = canonAddrFree(r)
		}
	}
	return out, nil
}

// assertTreesAgree runs the full workload on the incremental tree and the
// rebuilt reference under every scheme × codec variant and fails on the
// first non-identical answer.
func assertTreesAgree(t *testing.T, e *updEnv, coherent bool) {
	t.Helper()
	for si := range e.incSch {
		e.inc.SetVStore(e.incSch[si].vs)
		e.ref.SetVStore(e.refSch[si].vs)
		// Coherent traversal carries per-handle cut state: run it on fresh
		// sessions so scheme variants do not contaminate each other.
		ti, tr := e.inc, e.ref
		if coherent {
			ti, tr = e.inc.Session(), e.ref.Session()
		}
		got, err := updRunWorkload(ti, coherent)
		if err != nil {
			t.Fatalf("%s: incremental: %v", e.incSch[si].name, err)
		}
		want, err := updRunWorkload(tr, coherent)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", e.refSch[si].name, err)
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("scheme %s: incremental diverges from rebuild at cell %d eta %g:\n--- incremental\n%s--- rebuild\n%s",
					e.incSch[si].name, k.cell, k.eta, got[k], w)
			}
		}
	}
}

// TestUpdateDifferential is the main gate: a 120-op seeded workload
// applied in batches must leave the tree answering byte-identically to a
// from-scratch rebuild, across all three schemes, codec on and off,
// serial and parallel traversal.
func TestUpdateDifferential(t *testing.T) {
	e := updFixture(t)

	// Structural invariants first: identical topology and constants.
	if e.inc.NumNodes() != e.ref.NumNodes() {
		t.Fatalf("node counts diverge: incremental %d, rebuild %d", e.inc.NumNodes(), e.ref.NumNodes())
	}
	if e.inc.SMeasured != e.ref.SMeasured {
		t.Fatalf("SMeasured diverges: %x vs %x",
			math.Float64bits(e.inc.SMeasured), math.Float64bits(e.ref.SMeasured))
	}
	if e.inc.RhoMeasured != e.ref.RhoMeasured {
		t.Fatalf("RhoMeasured diverges: %x vs %x",
			math.Float64bits(e.inc.RhoMeasured), math.Float64bits(e.ref.RhoMeasured))
	}
	// The retained raw DoV fields must be bit-identical to a fresh
	// precompute — this is the strongest form of the localization claim:
	// cells served from the previous epoch's rays are indistinguishable
	// from re-cast ones.
	for c := range e.refVis.RawDoV {
		if len(e.incVis.RawDoV[c]) != len(e.refVis.RawDoV[c]) {
			t.Fatalf("cell %d: raw DoV length %d vs %d", c, len(e.incVis.RawDoV[c]), len(e.refVis.RawDoV[c]))
		}
		for id, v := range e.refVis.RawDoV[c] {
			if g := e.incVis.RawDoV[c][id]; math.Float64bits(g) != math.Float64bits(v) {
				t.Fatalf("cell %d object %d: raw DoV %x vs %x", c, id, math.Float64bits(g), math.Float64bits(v))
			}
		}
	}

	t.Run("serial", func(t *testing.T) { assertTreesAgree(t, e, false) })
	t.Run("parallel", func(t *testing.T) {
		e.inc.SetParallel(4)
		e.ref.SetParallel(4)
		defer func() {
			e.inc.SetParallel(1)
			e.ref.SetParallel(1)
		}()
		assertTreesAgree(t, e, false)
	})
	t.Run("coherent", func(t *testing.T) { assertTreesAgree(t, e, true) })
}

// TestUpdateStatsLocalize asserts the incremental machinery actually
// localizes — across the batched workload some internal-LoD chains and
// some cells must have been reused, and the bookkeeping must be sane.
func TestUpdateStatsLocalize(t *testing.T) {
	e := updFixture(t)
	reused, rebuilt, touched, total := 0, 0, 0, 0
	var pages int64
	for i, st := range e.stats {
		if st.Ops <= 0 || st.TotalCells != e.inc.Grid.NumCells() {
			t.Fatalf("batch %d: malformed stats %+v", i, st)
		}
		if st.TouchedCells < 0 || st.TouchedCells > st.TotalCells {
			t.Fatalf("batch %d: touched cells %d out of range [0,%d]", i, st.TouchedCells, st.TotalCells)
		}
		if st.PagesAppended <= 0 {
			t.Fatalf("batch %d: no pages appended", i)
		}
		reused += st.LoDReused
		rebuilt += st.LoDRebuilt
		touched += st.TouchedCells
		total += st.TotalCells
		pages += st.PagesAppended
	}
	if reused == 0 {
		t.Fatalf("no internal LoD chain was ever reused across %d batches (reused=%d rebuilt=%d)",
			len(e.stats), reused, rebuilt)
	}
	if rebuilt == 0 {
		t.Fatal("no internal LoD chain was ever rebuilt — the workload changed nothing?")
	}
	t.Logf("batches=%d ops=%d LoD reused/rebuilt=%d/%d cells touched=%d/%d pages appended=%d",
		len(e.stats), len(e.ops), reused, rebuilt, touched, total, pages)
}

// TestUpdateDifferentialDegradations corrupts the same (by node ID) node
// page on both disks and asserts the degraded answers — substitutions
// included — still match address-free, fault-tolerant traversal on.
func TestUpdateDifferentialDegradations(t *testing.T) {
	e := updFixture(t)
	if e.inc.NumNodes() < 2 {
		t.Skip("tree too small to corrupt a child")
	}
	child := e.inc.Root().Entries[0].ChildID
	incPage := e.inc.NodePage(child)
	refPage := e.ref.NodePage(child)
	e.incDisk.CorruptPage(incPage)
	e.refDisk.CorruptPage(refPage)
	e.inc.FaultTolerant = true
	e.ref.FaultTolerant = true
	defer func() {
		e.inc.FaultTolerant = false
		e.ref.FaultTolerant = false
		e.incDisk.HealPage(incPage)
		e.refDisk.HealPage(refPage)
		e.incDisk.ClearQuarantine()
		e.refDisk.ClearQuarantine()
	}()

	assertTreesAgree(t, e, false)

	// And the degradations must actually fire somewhere.
	e.inc.SetVStore(e.incSch[0].vs)
	got, err := updRunWorkload(e.inc, false)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for _, v := range got {
		if strings.Contains(v, "degr ") {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatalf("corrupting node %d produced no degradations anywhere in the workload", child)
	}
}

// TestUpdateAtomicFailure: a batch that fails mid-way (deleting a dead
// object) must leave the tree unchanged and still updatable — the next
// valid batch applies cleanly and the differential gate still holds.
func TestUpdateAtomicFailure(t *testing.T) {
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 1, 1
	p.BuildingsPerBlock = 3
	p.BlobsPerBlock = 2
	p.BlobDetail = 8
	p.NominalBytes = 8 << 20
	p.Seed = 5
	sc := scene.Generate(p)
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, 2, 2)
	bp.DirsPerViewpoint = 256
	bp.SamplesPerCell = 1
	d := storage.NewDisk(0, storage.DefaultCostModel())
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		t.Fatal(err)
	}

	good := genUpdateOps(3, sc, 10)
	bad := append(append([]scene.Op(nil), good[:3]...), scene.Op{Kind: scene.OpDelete, ID: 10_000})
	if _, _, _, _, err := core.ApplyOps(tr, vis, bad); err == nil {
		t.Fatal("batch deleting a nonexistent object succeeded")
	}
	// The tree must still be intact and updatable after the failed batch.
	tr2, vis2, _, _, err := core.ApplyOps(tr, vis, good)
	if err != nil {
		t.Fatalf("update after failed batch: %v", err)
	}
	ref, refVis, refDisk, err := rebuildReference(sc, bp, good)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := vstore.BuildIndexedVerticalOpts(d, vis2, vstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	riv, err := vstore.BuildIndexedVerticalOpts(refDisk, refVis, vstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr2.SetVStore(iv)
	ref.SetVStore(riv)
	got, err := updRunWorkload(tr2, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := updRunWorkload(ref, false)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("after failed batch, incremental diverges at cell %d eta %g:\n%s\nvs\n%s",
				k.cell, k.eta, got[k], w)
		}
	}
}

// TestUpdateReopenedTree: ApplyOps on a tree whose backbone was adopted
// from the node mirror (the reopened-database path, simulated by
// OpenTree) must evolve identically to the tree that stayed live.
func TestUpdateReopenedTree(t *testing.T) {
	p := scene.DefaultCityParams()
	p.BlocksX, p.BlocksY = 1, 1
	p.BuildingsPerBlock = 3
	p.BlobsPerBlock = 2
	p.BlobDetail = 8
	p.NominalBytes = 8 << 20
	p.Seed = 6
	sc := scene.Generate(p)
	bp := core.DefaultBuildParams()
	bp.Grid = cells.NewGrid(sc.ViewRegion, 2, 2)
	bp.DirsPerViewpoint = 256
	bp.SamplesPerCell = 1
	d := storage.NewDisk(0, storage.DefaultCostModel())
	tr, vis, err := core.Build(sc, d, bp)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := core.OpenTree(sc, d, tr.Manifest())
	if err != nil {
		t.Fatal(err)
	}

	ops := genUpdateOps(9, sc, 12)
	live, liveVis, _, _, err := core.ApplyOps(tr, vis, ops)
	if err != nil {
		t.Fatal(err)
	}
	// The reopened tree has no retained visibility: it recomputes every
	// cell once, which must land on the same bits.
	reTree, reVis, _, st, err := core.ApplyOps(reopened, nil, ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.TouchedCells != st.TotalCells {
		t.Fatalf("reopened update touched %d/%d cells, want full recompute", st.TouchedCells, st.TotalCells)
	}
	if live.NumNodes() != reTree.NumNodes() {
		t.Fatalf("node counts diverge: live %d, reopened %d", live.NumNodes(), reTree.NumNodes())
	}
	for c := range liveVis.RawDoV {
		for id, v := range liveVis.RawDoV[c] {
			if g := reVis.RawDoV[c][id]; math.Float64bits(g) != math.Float64bits(v) {
				t.Fatalf("cell %d object %d: raw DoV %x vs %x", c, id, math.Float64bits(g), math.Float64bits(v))
			}
		}
	}
}
