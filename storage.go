package hdov

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dbfile"
	"repro/internal/storage"
	"repro/internal/storage/filestore"
)

// BackendKind selects the storage media the database's paged disk runs
// on. The simulated backend is the default and keeps every historical
// behavior: in-memory pages, deterministic seek/transfer cost accounting,
// zero wall-clock I/O. The file backend stores pages in a real OS file
// and serves reads through an mmap window and vectored preads, charging
// measured wall-clock latency alongside the simulated costs (see
// DiskStats.MeasuredTime).
type BackendKind int

const (
	// BackendSim is the simulated in-memory disk (the default).
	BackendSim BackendKind = iota
	// BackendFile is the real-file backend: a page-granular OS file with
	// an mmap read path, single-syscall multi-page reads, and
	// fsync-on-commit durability for Save/CommitEpoch.
	BackendFile
)

func (k BackendKind) String() string {
	switch k {
	case BackendSim:
		return "sim"
	case BackendFile:
		return "file"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// StorageConfig selects and shapes the storage backend.
type StorageConfig struct {
	// Backend picks the media; the zero value is the simulated disk.
	Backend BackendKind
	// Dir is where a file backend built by Build keeps its page file.
	// Empty means a private temporary directory, removed by DB.Close.
	// OpenWith ignores Dir: a file-backed reopen always materializes its
	// page file inside the database directory itself.
	Dir string
	// NoMmap disables the file backend's mmap read window (pure pread).
	NoMmap bool
	// OSync opens the page file O_SYNC, making every page write durable
	// when it returns (normally durability comes from the fsync at the
	// Save/CommitEpoch commit point).
	OSync bool
}

// newDisk builds the disk Build lays the database out on, honoring the
// storage configuration. It returns the disk plus the temporary directory
// owning an unnamed file backend's page file ("" otherwise).
func newDisk(st StorageConfig) (*storage.Disk, string, error) {
	if st.Backend != BackendFile {
		return storage.NewDisk(0, storage.DefaultCostModel()), "", nil
	}
	dir, tmp := st.Dir, ""
	if dir == "" {
		t, err := os.MkdirTemp("", "hdov-pages-")
		if err != nil {
			return nil, "", fmt.Errorf("hdov: storage: %w", err)
		}
		dir, tmp = t, t
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, "", fmt.Errorf("hdov: storage: %w", err)
	}
	fs, err := filestore.Create(filepath.Join(dir, dbfile.PagesFileName), 0,
		filestore.Options{NoMmap: st.NoMmap, OSync: st.OSync})
	if err != nil {
		if tmp != "" {
			_ = os.RemoveAll(tmp)
		}
		return nil, "", fmt.Errorf("hdov: storage: %w", err)
	}
	return storage.NewDiskOn(fs, storage.DefaultCostModel()), tmp, nil
}

// OpenWith is Open with explicit storage media: the same validation and
// reattachment, onto either the simulated disk or a real page file
// materialized inside the database directory (see BackendFile). Queries
// answer byte-identically on either backend; only DiskStats.MeasuredTime
// differs.
func OpenWith(dir string, st StorageConfig) (*DB, error) {
	d, err := dbfile.OpenWith(dir, dbfile.OpenOptions{
		FileBacked: st.Backend == BackendFile,
		NoMmap:     st.NoMmap,
		OSync:      st.OSync,
	})
	if err != nil {
		return nil, err
	}
	db := fromDatabase(d)
	db.cfg.Storage = st
	return db, nil
}

// Close releases the database's storage media: the page file handle and
// mmap window of a file backend, every shard store's cloned media when
// sharding is enabled, and the temporary directory of an unnamed
// file-backed Build. On the simulated backend it is a cheap no-op, so
// defer db.Close() is always safe. The DB must not be used afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	r := db.router
	db.router = nil
	tmp := db.tmpDir
	db.tmpDir = ""
	db.mu.Unlock()
	var first error
	if r != nil {
		if err := r.Close(); err != nil {
			first = err
		}
	}
	if err := db.disk.Close(); err != nil && first == nil {
		first = err
	}
	if tmp != "" {
		if err := os.RemoveAll(tmp); err != nil && first == nil {
			first = err
		}
	}
	return first
}
