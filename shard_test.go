package hdov

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// shardTestDB builds a private database for the sharding tests — the
// shared fixture stays unsharded for everything else.
func shardTestDB(t *testing.T) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Scene.Blocks = 2
	cfg.GridCells = 4
	cfg.DoVRays = 256
	cfg.Scene.NominalBytes = 8 << 20
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// publicFingerprint renders a public Result's answer bytes.
func publicFingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cell=%d eta=%g\n", r.Cell, r.Eta)
	for _, it := range r.Items {
		fmt.Fprintf(&b, "%d %d %x %x %d %x %d\n",
			it.ObjectID, it.NodeID, it.DoV, it.Detail, it.Level, it.Polygons, it.Bytes)
	}
	for _, dg := range r.Degradations {
		fmt.Fprintf(&b, "deg %d %d %s\n", dg.Node, dg.Object, dg.Cause)
	}
	return b.String()
}

func TestShardingAPI(t *testing.T) {
	db := shardTestDB(t)
	n := db.NumCells()
	const eta = 0.003

	// Unsharded baseline, one answer per cell.
	base := make([]string, n)
	s := db.NewSession()
	for c := 0; c < n; c++ {
		res, err := s.QueryCell(c, eta)
		if err != nil {
			t.Fatal(err)
		}
		base[c] = publicFingerprint(res)
	}

	if got := db.Sharded(); got != 0 {
		t.Fatalf("Sharded before enable = %d", got)
	}
	if err := db.EnableSharding(ShardConfig{Shards: 3}); err != nil {
		t.Fatal(err)
	}
	if got := db.Sharded(); got != 3 {
		t.Fatalf("Sharded = %d, want 3", got)
	}

	// Routed sessions answer byte-identically, serially and scattered.
	rs := db.NewSession()
	allCells := make([]int, n)
	for c := 0; c < n; c++ {
		allCells[c] = c
		res, err := rs.QueryCell(c, eta)
		if err != nil {
			t.Fatal(err)
		}
		if publicFingerprint(res) != base[c] {
			t.Fatalf("routed cell %d diverged from unsharded baseline", c)
		}
	}
	batch, err := rs.QueryMany(allCells, eta)
	if err != nil {
		t.Fatal(err)
	}
	for c, res := range batch {
		if publicFingerprint(res) != base[c] {
			t.Fatalf("scattered cell %d diverged from unsharded baseline", c)
		}
	}
	if _, err := rs.QueryMany([]int{n}, eta); err == nil {
		t.Fatal("out-of-range scatter accepted")
	}

	// Fetch routes by the result's cell.
	res, err := rs.QueryCell(n-1, eta)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Fetch(res); err != nil {
		t.Fatal(err)
	}
	if res.HeavyIO == 0 {
		t.Fatal("no heavy I/O after routed Fetch")
	}

	// Per-shard accounting partitions the grid and sums to the aggregate.
	br := db.ShardDiskStats()
	if len(br) != 3 {
		t.Fatalf("ShardDiskStats len = %d", len(br))
	}
	covered := 0
	var shardReads int64
	for i, ss := range br {
		if ss.Shard != i || ss.Hi <= ss.Lo {
			t.Fatalf("bad shard range %+v", ss)
		}
		covered += ss.Hi - ss.Lo
		shardReads += ss.Disk.Reads + ss.Replica.Reads
	}
	if covered != n {
		t.Fatalf("shard ranges cover %d cells, grid has %d", covered, n)
	}
	if shardReads == 0 {
		t.Fatal("routed queries charged no shard store")
	}
	if agg := db.DiskStats(); agg.Reads < shardReads {
		t.Fatalf("aggregate DiskStats reads %d < shard sum %d", agg.Reads, shardReads)
	}

	// Session-side split: the routed session saw at least one shard.
	if rs.ShardStatsOf(0).Reads+rs.ShardStatsOf(1).Reads+rs.ShardStatsOf(2).Reads == 0 {
		t.Fatal("session per-shard stats all zero")
	}

	// SetCacheSize splits the aggregate budget; PoolStats sums it back.
	db.SetCacheSize(30)
	if ps := db.PoolStats(); ps.Capacity != 30 {
		t.Fatalf("sharded pool capacity = %d, want 30", ps.Capacity)
	}
	db.SetCacheSize(0)

	// Hot-range promotion after traffic, then teardown.
	promoted, err := db.RebalanceHotCells(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(promoted) != 1 {
		t.Fatalf("promoted %v, want one shard", promoted)
	}
	reps := 0
	for _, ss := range db.ShardDiskStats() {
		reps += ss.Replicas
	}
	if reps != 1 {
		t.Fatalf("replica count = %d", reps)
	}
	// A post-promotion session still answers identically.
	for pass := 0; pass < 2; pass++ {
		ps := db.NewSession()
		for c := 0; c < n; c++ {
			r2, err := ps.QueryCell(c, eta)
			if err != nil {
				t.Fatal(err)
			}
			if publicFingerprint(r2) != base[c] {
				t.Fatalf("post-promotion cell %d diverged", c)
			}
		}
	}
	db.DecayHeat()
	db.DropReplicas()
	db.DisableSharding()
	if got := db.Sharded(); got != 0 {
		t.Fatalf("Sharded after disable = %d", got)
	}
}

func TestShardedWalkthroughAndServe(t *testing.T) {
	db := shardTestDB(t)
	opts := WalkOptions{Eta: 0.003, Frames: 120, Delta: true, Coherent: true}
	ref, err := db.Walkthrough(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.EnableSharding(ShardConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := db.Walkthrough(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same recorded path, same answers: the routed walk issues the same
	// queries and fetches the same payload bytes.
	if got.Queries != ref.Queries || got.Frames != ref.Frames {
		t.Fatalf("routed walk: %d queries/%d frames, unsharded %d/%d",
			got.Queries, got.Frames, ref.Queries, ref.Frames)
	}
	if got.TotalHeavyIO != ref.TotalHeavyIO {
		t.Fatalf("routed walk heavy I/O %d, unsharded %d", got.TotalHeavyIO, ref.TotalHeavyIO)
	}
	if got.Coherence.Incremental+got.Coherence.Full == 0 {
		t.Fatal("routed coherent walk recorded no cut activity")
	}

	sv, err := db.Serve(WalkOptions{Eta: 0.003, Frames: 60, Delta: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Errors != 0 || sv.Queries == 0 {
		t.Fatalf("sharded serve: %d errors, %d queries", sv.Errors, sv.Queries)
	}
	for i, cs := range sv.PerClient {
		if cs.Err != "" {
			t.Fatalf("client %d: %s", i, cs.Err)
		}
		if cs.Reads == 0 {
			t.Fatalf("client %d charged no routed reads", i)
		}
	}
}

func TestSaveShardedRejectsTrimmed(t *testing.T) {
	db := shardTestDB(t)
	if err := db.SaveSharded(t.TempDir()); err == nil {
		t.Fatal("SaveSharded accepted an unsharded database")
	}
	if err := db.EnableSharding(ShardConfig{Shards: 2, TrimVPages: true}); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSharded(t.TempDir()); err == nil {
		t.Fatal("SaveSharded accepted a trimmed topology")
	}
	// Untrimmed topologies persist; each shard dir reopens on its own.
	if err := db.EnableSharding(ShardConfig{Shards: 2}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "sharded")
	if err := db.SaveSharded(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shardmap.json")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
		sdb, err := Open(sub)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if sdb.NumCells() != db.NumCells() {
			t.Fatalf("shard %d reopened with %d cells, want %d", i, sdb.NumCells(), db.NumCells())
		}
	}
}
