package hdov

import (
	"repro/internal/dbfile"
	"repro/internal/visibility"
)

// Save persists the database to a directory (manifest.json + disk.img).
// The expensive precomputation — R-tree construction, internal-LoD
// generation, per-cell DoV evaluation, V-page layout — is all captured, so
// Open is fast. The write is crash-safe: the image is committed (fsync +
// atomic rename) before the checksummed manifest, whose rename is the
// commit point — a Save killed at any boundary leaves either the previous
// committed version or a directory Open cleanly rejects.
//
// Save compacts: the full disk (base pages plus every epoch's appends) is
// rewritten as one image and the delta chain in the directory is
// superseded. The op log still rides along in the manifest, because the
// scene is always reconstructed as generate + replay.
func (db *DB) Save(dir string) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return dbfile.Save(dir, db.database())
}

// CommitEpoch durably commits the database's current epoch into a
// directory previously written by Save (or by an earlier CommitEpoch):
// only the pages appended since the directory's committed allocation
// watermark are written, as an epoch delta image, and the manifest —
// carrying the full op log and delta chain — is atomically replaced. The
// manifest rename is the commit point: a crash at any step leaves the
// directory opening as either the previous epoch or the new one, never a
// torn mix (hdovfsck verifies this, and quarantines leftovers).
//
// It returns the committed epoch number. Committing a database whose op
// log is not a superset of the directory's fails without touching
// anything — CommitEpoch appends history, Save rewrites it.
func (db *DB) CommitEpoch(dir string) (int, error) {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return dbfile.CommitEpoch(dir, db.database())
}

// database assembles the dbfile view of the current epoch. Callers hold
// writeMu, so the field reads are stable.
func (db *DB) database() *dbfile.Database {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return &dbfile.Database{
		Scene:      db.scene,
		Disk:       db.disk,
		Tree:       db.tree,
		Horizontal: db.h,
		Vertical:   db.v,
		Indexed:    db.iv,
		Naive:      db.naive,
		Epoch:      db.epoch,
		Ops:        db.ops,
	}
}

// Open reopens a database saved with Save (plus any epochs committed with
// CommitEpoch — the base image, delta chain and op log are replayed). The
// disk image is checksum-verified and the tree structure revalidated;
// queries on the reopened database return byte-identical answers.
func Open(dir string) (*DB, error) {
	d, err := dbfile.Open(dir)
	if err != nil {
		return nil, err
	}
	return fromDatabase(d), nil
}

// fromDatabase wraps a reopened dbfile database into a DB handle,
// reconstructing the build configuration from the manifest-backed state.
func fromDatabase(d *dbfile.Database) *DB {
	cfg := Config{
		Scene: SceneConfig{
			Blocks:            d.Scene.Params.BlocksX,
			BuildingsPerBlock: d.Scene.Params.BuildingsPerBlock,
			BlobsPerBlock:     d.Scene.Params.BlobsPerBlock,
			NominalBytes:      d.Scene.Params.NominalBytes,
			Seed:              d.Scene.Params.Seed,
		},
		GridCells:      d.Tree.Grid.NX,
		DoVRays:        d.Tree.Params.DirsPerViewpoint,
		SamplesPerCell: d.Tree.Params.SamplesPerCell,
		Scheme:         SchemeIndexedVertical,
		Codec:          d.Indexed.Manifest().Codec,
	}
	db := &DB{
		cfg:    cfg,
		scene:  d.Scene,
		disk:   d.Disk,
		tree:   d.Tree,
		h:      d.Horizontal,
		v:      d.Vertical,
		iv:     d.Indexed,
		naive:  d.Naive,
		engine: visibility.NewEngine(d.Scene, d.Tree.Params.DirsPerViewpoint),
		epoch:  d.Epoch,
		ops:    d.Ops,
	}
	db.SetScheme(SchemeIndexedVertical)
	return db
}
