package hdov

import (
	"repro/internal/dbfile"
	"repro/internal/visibility"
)

// Save persists the database to a directory (manifest.json + disk.img).
// The expensive precomputation — R-tree construction, internal-LoD
// generation, per-cell DoV evaluation, V-page layout — is all captured, so
// Open is fast. The write is crash-safe: the image is committed (fsync +
// atomic rename) before the checksummed manifest, whose rename is the
// commit point — a Save killed at any boundary leaves either the previous
// committed version or a directory Open cleanly rejects.
func (db *DB) Save(dir string) error {
	return dbfile.Save(dir, &dbfile.Database{
		Scene:      db.scene,
		Disk:       db.disk,
		Tree:       db.tree,
		Horizontal: db.h,
		Vertical:   db.v,
		Indexed:    db.iv,
		Naive:      db.naive,
	})
}

// Open reopens a database saved with Save. The disk image is checksum-
// verified and the tree structure revalidated; queries on the reopened
// database return byte-identical answers.
func Open(dir string) (*DB, error) {
	d, err := dbfile.Open(dir)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		Scene: SceneConfig{
			Blocks:            d.Scene.Params.BlocksX,
			BuildingsPerBlock: d.Scene.Params.BuildingsPerBlock,
			BlobsPerBlock:     d.Scene.Params.BlobsPerBlock,
			NominalBytes:      d.Scene.Params.NominalBytes,
			Seed:              d.Scene.Params.Seed,
		},
		GridCells:      d.Tree.Grid.NX,
		DoVRays:        d.Tree.Params.DirsPerViewpoint,
		SamplesPerCell: d.Tree.Params.SamplesPerCell,
		Scheme:         SchemeIndexedVertical,
	}
	db := &DB{
		cfg:    cfg,
		scene:  d.Scene,
		disk:   d.Disk,
		tree:   d.Tree,
		h:      d.Horizontal,
		v:      d.Vertical,
		iv:     d.Indexed,
		naive:  d.Naive,
		engine: visibility.NewEngine(d.Scene, d.Tree.Params.DirsPerViewpoint),
	}
	db.SetScheme(SchemeIndexedVertical)
	return db, nil
}
