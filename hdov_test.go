package hdov

import (
	"sync"
	"testing"
)

var (
	dbOnce sync.Once
	dbFix  *DB
)

func testDB(t *testing.T) *DB {
	t.Helper()
	dbOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Scene.Blocks = 2
		cfg.GridCells = 6
		cfg.DoVRays = 256
		cfg.Scene.NominalBytes = 16 << 20
		db, err := Build(cfg)
		if err != nil {
			panic(err)
		}
		dbFix = db
	})
	if dbFix == nil {
		t.Fatal("fixture failed")
	}
	return dbFix
}

func centerPoint(db *DB) Point {
	min, max := db.ViewRegion()
	return Pt((min.X+max.X)/2, (min.Y+max.Y)/2, (min.Z+max.Z)/2)
}

func TestBuildShape(t *testing.T) {
	db := testDB(t)
	if db.NumObjects() == 0 || db.NumNodes() == 0 || db.NumCells() != 36 {
		t.Fatalf("shape: %d objects %d nodes %d cells", db.NumObjects(), db.NumNodes(), db.NumCells())
	}
	if db.NominalBytes() < 15<<20 {
		t.Fatalf("nominal = %d", db.NominalBytes())
	}
	min, max := db.Bounds()
	if !(max.X > min.X && max.Y > min.Y && max.Z > min.Z) {
		t.Fatal("degenerate bounds")
	}
	sz := db.StorageSizes()
	if !(sz.Horizontal > sz.Vertical && sz.Vertical > 0 && sz.IndexedVertical > 0) {
		t.Fatalf("sizes: %+v", sz)
	}
}

func TestQueryAndFetch(t *testing.T) {
	db := testDB(t)
	p := centerPoint(db)
	res, err := db.Query(p, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("no items at city center")
	}
	if res.LightIO == 0 || res.SimTime == 0 {
		t.Fatal("no light I/O charged")
	}
	if res.HeavyIO != 0 {
		t.Fatal("heavy I/O before Fetch")
	}
	if err := db.Fetch(res); err != nil {
		t.Fatal(err)
	}
	if res.HeavyIO == 0 {
		t.Fatal("no heavy I/O after Fetch")
	}
	// Outside the grid.
	if _, err := db.Query(Pt(-1000, 0, 0), 0.001); err != ErrOutsideCells {
		t.Fatalf("outside error = %v", err)
	}
	if _, err := db.QueryCell(-1, 0.001); err == nil {
		t.Fatal("negative cell accepted")
	}
	if _, err := db.QueryCell(db.NumCells(), 0.001); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if got := db.CellOf(p); got != res.Cell {
		t.Fatalf("CellOf = %d, result cell %d", got, res.Cell)
	}
}

func TestQueryNaiveMatchesEtaZero(t *testing.T) {
	db := testDB(t)
	p := centerPoint(db)
	nres, err := db.QueryNaive(p)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := db.Query(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(nres.Items) != len(hres.Items) {
		t.Fatalf("naive %d items, eta=0 %d", len(nres.Items), len(hres.Items))
	}
	if _, err := db.QueryNaive(Pt(-999, 0, 0)); err != ErrOutsideCells {
		t.Fatal("naive outside error wrong")
	}
}

func TestSchemesAgreeThroughAPI(t *testing.T) {
	db := testDB(t)
	defer db.SetScheme(SchemeIndexedVertical)
	p := centerPoint(db)
	var counts [3]int
	for i, s := range []Scheme{SchemeIndexedVertical, SchemeVertical, SchemeHorizontal} {
		db.SetScheme(s)
		if db.Scheme() != s {
			t.Fatalf("scheme not set: %v", db.Scheme())
		}
		res, err := db.Query(p, 0.002)
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = len(res.Items)
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("schemes disagree: %v", counts)
	}
}

func TestLoadMeshAPI(t *testing.T) {
	db := testDB(t)
	res, err := db.Query(centerPoint(db), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Items[:minInt(len(res.Items), 5)] {
		m, err := db.LoadMesh(it)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Vertices) == 0 || len(m.Triangles) == 0 {
			t.Fatal("empty mesh")
		}
		for _, tri := range m.Triangles {
			for _, idx := range tri {
				if idx < 0 || idx >= len(m.Vertices) {
					t.Fatal("index out of range")
				}
			}
		}
	}
	if _, err := db.LoadMesh(Item{ObjectID: -1, NodeID: -1}); err == nil {
		t.Fatal("invalid item accepted")
	}
	if _, err := db.LoadMesh(Item{ObjectID: 0, Level: 99}); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestFidelityAPI(t *testing.T) {
	db := testDB(t)
	p := centerPoint(db)
	res, err := db.Query(p, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	f := db.Fidelity(p, res)
	if f.VisibleObjects == 0 {
		t.Fatal("nothing visible at center")
	}
	if f.Coverage < 0 || f.Coverage > 1 || f.DetailFidelity < 0 || f.DetailFidelity > 1 {
		t.Fatalf("fidelity out of range: %+v", f)
	}
	if f.CoveredObjects+f.MissedObjects != f.VisibleObjects {
		t.Fatalf("counts inconsistent: %+v", f)
	}
}

func TestWalkthroughAPI(t *testing.T) {
	db := testDB(t)
	for _, kind := range []SessionKind{SessionNormal, SessionTurning, SessionBackForward} {
		ws, err := db.Walkthrough(WalkOptions{Session: kind, Frames: 120, Eta: 0.001, Delta: true})
		if err != nil {
			t.Fatal(err)
		}
		if ws.Frames != 120 || len(ws.FrameTimesMS) != 120 {
			t.Fatalf("%v: frames %d", kind, ws.Frames)
		}
		if ws.AvgFrameMS <= 0 {
			t.Fatalf("%v: avg frame %v", kind, ws.AvgFrameMS)
		}
	}
	// REVIEW playback via the API.
	rs, err := db.Walkthrough(WalkOptions{Session: SessionNormal, Frames: 120, UseREVIEW: true, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	vs, err := db.Walkthrough(WalkOptions{Session: SessionNormal, Frames: 120, Eta: 0.001, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	if vs.AvgFrameMS >= rs.AvgFrameMS {
		t.Fatalf("VISUAL %v not faster than REVIEW %v", vs.AvgFrameMS, rs.AvgFrameMS)
	}
}

func TestDiskStatsAPI(t *testing.T) {
	db := testDB(t)
	db.ResetDiskStats()
	if s := db.DiskStats(); s.Reads != 0 {
		t.Fatal("reset failed")
	}
	if _, err := db.Query(centerPoint(db), 0.001); err != nil {
		t.Fatal(err)
	}
	s := db.DiskStats()
	if s.Reads == 0 || s.LightReads == 0 || s.SimTime == 0 {
		t.Fatalf("stats empty: %+v", s)
	}
}

func TestStringers(t *testing.T) {
	if SchemeHorizontal.String() != "horizontal" || Scheme(99).String() == "" {
		t.Fatal("scheme stringer")
	}
	if SessionNormal.String() != "normal" || SessionKind(99).String() == "" {
		t.Fatal("session stringer")
	}
	if Pt(1, 2, 3).String() == "" {
		t.Fatal("point stringer")
	}
	if Pt(1, 2, 3).Dist(Pt(1, 2, 8)) != 5 {
		t.Fatal("point dist")
	}
	if Pt(3, 2, 1).Sub(Pt(1, 1, 1)) != Pt(2, 1, 0) {
		t.Fatal("point sub")
	}
}

func TestBuildVariantsAPI(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scene.Blocks = 2
	cfg.GridCells = 4
	cfg.DoVRays = 256
	cfg.ItemBufferRes = 48
	cfg.Scene.NominalBytes = 8 << 20

	cfg.UseItemBuffer = true
	cfg.BulkLoad = true
	db, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(db.DefaultViewpoint(), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) == 0 {
		t.Fatal("item-buffer + bulk-load build returned nothing")
	}
	// Bulk-loaded tree is typically smaller than an inserted one.
	cfg2 := cfg
	cfg2.UseItemBuffer = false
	cfg2.BulkLoad = false
	db2, err := Build(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumNodes() > db2.NumNodes() {
		t.Fatalf("bulk-load produced more nodes: %d vs %d", db.NumNodes(), db2.NumNodes())
	}
	// Both cover the same visible objects from the same viewpoint.
	f := db.Fidelity(db.CellViewpoint(db.CellOf(db.DefaultViewpoint())), mustQuery(t, db, db.CellViewpoint(db.CellOf(db.DefaultViewpoint())), 0))
	if f.MissedObjects != 0 {
		t.Fatalf("item-buffer build missed %d objects at its own sample point", f.MissedObjects)
	}
}

func mustQuery(t *testing.T, db *DB, p Point, eta float64) *Result {
	t.Helper()
	res, err := db.Query(p, eta)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSaveOpenAPI(t *testing.T) {
	db := testDB(t)
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumObjects() != db.NumObjects() || got.NumNodes() != db.NumNodes() ||
		got.NumCells() != db.NumCells() {
		t.Fatal("reopened shape differs")
	}
	p := centerPoint(db)
	want, err := db.Query(p, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Query(p, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Items) != len(have.Items) {
		t.Fatalf("reopened query: %d vs %d items", len(have.Items), len(want.Items))
	}
	for i := range want.Items {
		if want.Items[i] != have.Items[i] {
			t.Fatalf("item %d differs after reopen", i)
		}
	}
	if err := got.Fetch(have); err != nil {
		t.Fatal(err)
	}
	// Walkthrough works on a reopened database.
	ws, err := got.Walkthrough(WalkOptions{Session: SessionNormal, Frames: 60, Eta: 0.001, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Frames != 60 {
		t.Fatal("reopened walkthrough truncated")
	}
	// Opening garbage fails cleanly.
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("empty dir opened")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
