package hdov_test

import (
	"fmt"
	"os"

	hdov "repro"
)

func tempDir() (string, error) {
	return os.MkdirTemp("", "hdov-example-*")
}

// The examples build a tiny database so they run in testing time; real
// deployments use DefaultConfig or larger.
func exampleConfig() hdov.Config {
	cfg := hdov.DefaultConfig()
	cfg.Scene.Blocks = 2
	cfg.GridCells = 4
	cfg.DoVRays = 256
	cfg.Scene.NominalBytes = 8 << 20
	return cfg
}

// Example shows the minimal end-to-end flow: build, query, fetch.
func Example() {
	db, err := hdov.Build(exampleConfig())
	if err != nil {
		panic(err)
	}
	res, err := db.Query(db.DefaultViewpoint(), 0.001)
	if err != nil {
		panic(err)
	}
	fmt.Println("answered:", len(res.Items) > 0)
	fmt.Println("charged index I/O:", res.LightIO > 0)
	if err := db.Fetch(res); err != nil {
		panic(err)
	}
	fmt.Println("charged payload I/O:", res.HeavyIO > 0)
	// Output:
	// answered: true
	// charged index I/O: true
	// charged payload I/O: true
}

// ExampleDB_Query demonstrates the η knob: a larger threshold answers with
// coarser data and less I/O, never losing a visible object.
func ExampleDB_Query() {
	db, err := hdov.Build(exampleConfig())
	if err != nil {
		panic(err)
	}
	eye := db.CellViewpoint(db.CellOf(db.DefaultViewpoint()))
	fine, _ := db.Query(eye, 0)
	coarse, _ := db.Query(eye, 0.01)
	fmt.Println("coarser answer not bigger:", len(coarse.Items) <= len(fine.Items))
	fmt.Println("coarser answer lighter:", coarse.LightIO <= fine.LightIO)
	f := db.Fidelity(eye, coarse)
	fmt.Println("still covers everything:", f.MissedObjects == 0)
	// Output:
	// coarser answer not bigger: true
	// coarser answer lighter: true
	// still covers everything: true
}

// ExampleDB_Walkthrough plays a recorded session and reads the Table 3
// style metrics.
func ExampleDB_Walkthrough() {
	db, err := hdov.Build(exampleConfig())
	if err != nil {
		panic(err)
	}
	ws, err := db.Walkthrough(hdov.WalkOptions{
		Session: hdov.SessionNormal,
		Frames:  100,
		Eta:     0.001,
		Delta:   true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("frames:", ws.Frames)
	fmt.Println("ran queries:", ws.Queries > 0)
	fmt.Println("positive frame time:", ws.AvgFrameMS > 0)
	// Output:
	// frames: 100
	// ran queries: true
	// positive frame time: true
}

// ExampleDB_Save shows persistence: save, reopen, identical answers.
func ExampleDB_Save() {
	db, err := hdov.Build(exampleConfig())
	if err != nil {
		panic(err)
	}
	dir, err := tempDir()
	if err != nil {
		panic(err)
	}
	if err := db.Save(dir); err != nil {
		panic(err)
	}
	db2, err := hdov.Open(dir)
	if err != nil {
		panic(err)
	}
	a, _ := db.Query(db.DefaultViewpoint(), 0.001)
	b, _ := db2.Query(db2.DefaultViewpoint(), 0.001)
	fmt.Println("same answer set:", len(a.Items) == len(b.Items))
	// Output:
	// same answer set: true
}
